//! A deterministic discrete-event queue.
//!
//! The queue is the single hottest structure in the simulator: every
//! message delivery, server completion and processor step goes through
//! one `push` and one `pop`. It is implemented as a bucketed time wheel
//! — a ring of per-cycle FIFO buckets covering the near future, which
//! turns the common case (events scheduled a few tens of cycles ahead)
//! into O(1) deque operations — with a binary-heap fallback for events
//! beyond the wheel horizon (long compute phases, backoff waits).

use crate::hash::StableHasher;
use crate::time::Cycle;
use std::cmp::Reverse;
use std::collections::{BinaryHeap, VecDeque};

/// Cycles covered by the near-future wheel. Must be a power of two.
/// Network and memory latencies are tens of cycles, so virtually all
/// protocol traffic lands in the wheel; only long compute delays and
/// pathological backoffs spill to the far heap.
const WHEEL_SIZE: usize = 1024;
const WHEEL_MASK: usize = WHEEL_SIZE - 1;

/// A priority queue of timestamped events with deterministic ordering.
///
/// Events are returned in nondecreasing time order; events scheduled for
/// the same cycle are returned in ascending **key** order. Callers that
/// use plain [`EventQueue::push`] get an auto-incremented insertion
/// sequence as the key, i.e. FIFO within a cycle — the historical
/// behaviour. Callers that need an ordering reproducible across
/// differently-partitioned producers (the PDES engine) stamp their own
/// canonical keys via [`EventQueue::push_keyed`]. Either way the total
/// order makes every simulation run reproducible bit-for-bit from its
/// inputs, which the experiment harness relies on.
///
/// Internally both the wheel buckets (kept sorted ascending by key, so
/// peeking and popping the next key are O(1); pushes append in O(1) in
/// the common case of ascending same-cycle arrivals and binary-insert
/// otherwise) and the far heap (ordered by `(cycle, key)`) respect the
/// key, so the wheel/heap split is invisible to callers: the pop order
/// is identical to a single `(cycle, key)`-ordered heap.
///
/// # Example
///
/// ```
/// use dsm_sim::{Cycle, EventQueue};
///
/// let mut q = EventQueue::new();
/// q.push(Cycle::new(3), 'b');
/// q.push(Cycle::new(1), 'a');
/// assert_eq!(q.len(), 2);
/// assert_eq!(q.pop(), Some((Cycle::new(1), 'a')));
/// assert_eq!(q.pop(), Some((Cycle::new(3), 'b')));
/// assert_eq!(q.pop(), None);
/// ```
#[derive(Debug, Clone)]
pub struct EventQueue<E> {
    /// Near-future buckets; the bucket for cycle `t` (when `t` is within
    /// `[base, base + WHEEL_SIZE)`) is `wheel[t & WHEEL_MASK]`. Each
    /// bucket holds events of a single cycle sorted ascending by
    /// tie-break key, so the front is always the next event to pop.
    wheel: Vec<VecDeque<(u128, E)>>,
    /// The earliest cycle the wheel can currently hold. Only moves
    /// forward.
    base: u64,
    /// Number of events stored in wheel buckets (the rest are in `far`).
    wheel_len: usize,
    /// Events at or beyond the wheel horizon (and, for API generality,
    /// events pushed before `base`, which cannot happen in a forward-
    /// running simulation but is still handled correctly).
    far: BinaryHeap<Entry<E>>,
    next_seq: u64,
}

#[derive(Debug, Clone)]
struct Entry<E> {
    key: Reverse<(Cycle, u128)>,
    event: E,
}

impl<E> PartialEq for Entry<E> {
    fn eq(&self, other: &Self) -> bool {
        self.key == other.key
    }
}
impl<E> Eq for Entry<E> {}
impl<E> PartialOrd for Entry<E> {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}
impl<E> Ord for Entry<E> {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        self.key.cmp(&other.key)
    }
}

impl<E> EventQueue<E> {
    /// Creates an empty queue.
    pub fn new() -> Self {
        EventQueue {
            wheel: (0..WHEEL_SIZE).map(|_| VecDeque::new()).collect(),
            base: 0,
            wheel_len: 0,
            far: BinaryHeap::new(),
            next_seq: 0,
        }
    }

    /// Creates an empty queue pre-sized for `capacity` concurrently
    /// pending events (the wheel buckets still grow on demand; the
    /// far-heap allocation is reserved up front).
    pub fn with_capacity(capacity: usize) -> Self {
        let mut q = Self::new();
        q.far.reserve(capacity);
        q
    }

    /// Schedules `event` to fire at time `at`, tie-broken within the
    /// cycle by the auto-incremented insertion sequence (FIFO).
    pub fn push(&mut self, at: Cycle, event: E) {
        let seq = self.next_seq;
        self.next_seq += 1;
        self.push_keyed(at, seq as u128, event);
    }

    /// Schedules `event` to fire at time `at` with an explicit same-cycle
    /// tie-break `key`. Events sharing a cycle pop in ascending key
    /// order; keys must be unique within a cycle for the order to be
    /// total. The PDES engine stamps canonical keys so that the pop
    /// order is a pure function of simulated causality, independent of
    /// how pushes were distributed across shards.
    pub fn push_keyed(&mut self, at: Cycle, key: u128, event: E) {
        let t = at.as_u64();
        if self.wheel_len == 0 && t >= self.base {
            // Empty wheel: slide the window so it starts at `t`.
            self.base = t;
        }
        if t >= self.base && t - self.base < WHEEL_SIZE as u64 {
            let bucket = &mut self.wheel[t as usize & WHEEL_MASK];
            // Follow-on events are pushed while draining events in
            // ascending key order, so same-cycle arrivals are usually
            // ascending too: appending keeps the bucket sorted for
            // free. Out-of-order arrivals binary-insert.
            if bucket.back().is_none_or(|&(k, _)| k < key) {
                bucket.push_back((key, event));
            } else {
                let pos = bucket.partition_point(|&(k, _)| k < key);
                bucket.insert(pos, (key, event));
            }
            self.wheel_len += 1;
        } else {
            self.far.push(Entry {
                key: Reverse((at, key)),
                event,
            });
        }
    }

    /// Removes and returns the earliest event, or `None` if empty.
    pub fn pop(&mut self) -> Option<(Cycle, E)> {
        self.pop_keyed().map(|(at, _, e)| (at, e))
    }

    /// Like [`EventQueue::pop`], but also returns the event's tie-break
    /// key. The PDES engine uses the key to derive follow-on event keys
    /// (e.g. a wire arrival's key seeds its delivery's key).
    pub fn pop_keyed(&mut self) -> Option<(Cycle, u128, E)> {
        let wheel_key = self.earliest_wheel_key();
        let far_key = self.far.peek().map(|e| ((e.key.0 .0).as_u64(), e.key.0 .1));
        let take_wheel = match (wheel_key, far_key) {
            (None, None) => return None,
            (Some(_), None) => true,
            (None, Some(_)) => false,
            (Some(w), Some(f)) => w < f,
        };
        if take_wheel {
            Some(self.take_wheel_min())
        } else {
            let e = self.far.pop().expect("nonempty far heap");
            let at = e.key.0 .0;
            if self.wheel_len == 0 {
                // Keep the (empty) wheel window from falling behind
                // simulated time, so future near-term pushes use it.
                self.base = self.base.max(at.as_u64());
            }
            Some((at, e.key.0 .1, e.event))
        }
    }

    /// Removes and returns the minimum-key event of the bucket `base`
    /// currently rests on — the sorted bucket's front, O(1).
    fn take_wheel_min(&mut self) -> (Cycle, u128, E) {
        let bucket = &mut self.wheel[self.base as usize & WHEEL_MASK];
        let (key, event) = bucket.pop_front().expect("nonempty bucket");
        self.wheel_len -= 1;
        (Cycle::new(self.base), key, event)
    }

    /// Advances the wheel window over leading empty buckets until it
    /// rests on the earliest wheel event, and returns that event's
    /// `(cycle, key)`. Advancing is amortized O(1) (each bucket is
    /// skipped at most once per run); the minimum key is the resting
    /// sorted bucket's front, O(1).
    fn earliest_wheel_key(&mut self) -> Option<(u64, u128)> {
        if self.wheel_len == 0 {
            return None;
        }
        loop {
            let bucket = &self.wheel[self.base as usize & WHEEL_MASK];
            if let Some(&(key, _)) = bucket.front() {
                return Some((self.base, key));
            }
            self.base += 1;
        }
    }

    /// Returns the time of the earliest pending event without removing
    /// it, advancing the wheel window so repeated calls are amortized
    /// O(1). This is the cheap bound the PDES scheduler publishes as its
    /// local clock; see [`EventQueue::pop_before`] for the matching
    /// bounded drain.
    pub fn peek_horizon(&mut self) -> Option<Cycle> {
        let wheel = self.earliest_wheel_key();
        let far = self.far.peek().map(|e| ((e.key.0 .0).as_u64(), e.key.0 .1));
        match (wheel, far) {
            (Some(w), Some(f)) => Some(Cycle::new(w.min(f).0)),
            (Some(w), None) => Some(Cycle::new(w.0)),
            (None, Some(f)) => Some(Cycle::new(f.0)),
            (None, None) => None,
        }
    }

    /// Removes and returns the earliest event **strictly before**
    /// `horizon`, or `None` if the queue is empty or its earliest event
    /// is at or past the horizon. Events at or beyond the horizon are
    /// left untouched (no pop-and-push-back), so a conservative PDES
    /// worker can drain its safe window directly against the wheel.
    ///
    /// `pop_before(Cycle::MAX)`-style calls with a far horizon behave
    /// exactly like [`EventQueue::pop`].
    pub fn pop_before(&mut self, horizon: Cycle) -> Option<(Cycle, E)> {
        self.pop_before_keyed(horizon).map(|(at, _, e)| (at, e))
    }

    /// Like [`EventQueue::pop_before`], but also returns the tie-break
    /// key — the bounded drain used by PDES shard loops.
    pub fn pop_before_keyed(&mut self, horizon: Cycle) -> Option<(Cycle, u128, E)> {
        let wheel_key = self.earliest_wheel_key();
        let far_key = self.far.peek().map(|e| ((e.key.0 .0).as_u64(), e.key.0 .1));
        let take_wheel = match (wheel_key, far_key) {
            (None, None) => return None,
            (Some(w), None) => {
                if w.0 >= horizon.as_u64() {
                    return None;
                }
                true
            }
            (None, Some(f)) => {
                if f.0 >= horizon.as_u64() {
                    return None;
                }
                false
            }
            (Some(w), Some(f)) => {
                if w.min(f).0 >= horizon.as_u64() {
                    return None;
                }
                w < f
            }
        };
        if take_wheel {
            Some(self.take_wheel_min())
        } else {
            let e = self.far.pop().expect("nonempty far heap");
            let at = e.key.0 .0;
            if self.wheel_len == 0 {
                self.base = self.base.max(at.as_u64());
            }
            Some((at, e.key.0 .1, e.event))
        }
    }

    /// Returns the time of the earliest pending event, if any.
    pub fn peek_time(&self) -> Option<Cycle> {
        let mut earliest: Option<u64> = None;
        if self.wheel_len > 0 {
            for i in 0..WHEEL_SIZE as u64 {
                let t = self.base + i;
                if !self.wheel[t as usize & WHEEL_MASK].is_empty() {
                    earliest = Some(t);
                    break;
                }
            }
        }
        match (earliest, self.far.peek().map(|e| (e.key.0 .0).as_u64())) {
            (Some(w), Some(f)) => Some(Cycle::new(w.min(f))),
            (Some(w), None) => Some(Cycle::new(w)),
            (None, Some(f)) => Some(Cycle::new(f)),
            (None, None) => None,
        }
    }

    /// Returns the number of pending events.
    pub fn len(&self) -> usize {
        self.wheel_len + self.far.len()
    }

    /// Returns `true` if no events are pending.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Feeds the queue's complete pending-event state into `h`, using
    /// `f` to hash each event payload.
    ///
    /// Events are visited in pop order — `(cycle, key)` — and each is
    /// hashed together with its cycle and key, so two queues digest
    /// equal iff they would pop the identical timestamped event stream.
    /// The wheel/heap split, the window base and bucket layout are
    /// implementation details and do not enter the digest. The
    /// insertion counter *is* included: it determines the tie-break
    /// order of future auto-keyed pushes.
    pub fn digest_with(&self, h: &mut StableHasher, mut f: impl FnMut(&E, &mut StableHasher)) {
        h.write_u64(self.next_seq);
        h.write_usize(self.len());
        if self.wheel_len > 0 {
            // The window is exactly WHEEL_SIZE cycles wide, so each
            // bucket holds events of a single cycle; walk the window in
            // time order and each bucket in key order to visit wheel
            // events in pop order.
            for i in 0..WHEEL_SIZE as u64 {
                let t = self.base + i;
                let bucket = &self.wheel[t as usize & WHEEL_MASK];
                for (key, event) in bucket.iter() {
                    h.write_u64(t);
                    h.write_u64((*key >> 64) as u64);
                    h.write_u64(*key as u64);
                    f(event, h);
                }
            }
        }
        let mut far: Vec<&Entry<E>> = self.far.iter().collect();
        far.sort_by_key(|e| e.key.0);
        for e in far {
            h.write_u64(e.key.0 .0.as_u64());
            h.write_u64((e.key.0 .1 >> 64) as u64);
            h.write_u64(e.key.0 .1 as u64);
            f(&e.event, h);
        }
    }

    /// Visits every pending event in pop order — `(cycle, key)` —
    /// without consuming the queue.
    ///
    /// Unlike [`EventQueue::digest_with`] this exposes neither the
    /// insertion counter nor the wheel layout, so two queues that hold
    /// the same timestamped pending events visit identically even when
    /// their push histories differ. The partitioned machine's
    /// canonical state digest is built on this: at quiescence every
    /// shard's queue is empty and visits nothing, regardless of how
    /// many shards the run used.
    pub fn visit_pending(&self, mut f: impl FnMut(Cycle, &E)) {
        if self.wheel_len > 0 {
            for i in 0..WHEEL_SIZE as u64 {
                let t = self.base + i;
                let bucket = &self.wheel[t as usize & WHEEL_MASK];
                for (_, event) in bucket.iter() {
                    f(Cycle::new(t), event);
                }
            }
        }
        let mut far: Vec<&Entry<E>> = self.far.iter().collect();
        far.sort_by_key(|e| e.key.0);
        for e in far {
            f(e.key.0 .0, &e.event);
        }
    }

    /// Removes all pending events.
    pub fn clear(&mut self) {
        if self.wheel_len > 0 {
            for bucket in &mut self.wheel {
                bucket.clear();
            }
            self.wheel_len = 0;
        }
        self.far.clear();
    }
}

impl<E> Default for EventQueue<E> {
    fn default() -> Self {
        Self::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::hash::StableHasher;
    use crate::rng::SimRng;

    #[test]
    fn pops_in_time_order() {
        let mut q = EventQueue::new();
        for &t in &[9u64, 2, 7, 2, 0, 11] {
            q.push(Cycle::new(t), t);
        }
        let mut out = Vec::new();
        while let Some((t, e)) = q.pop() {
            assert_eq!(t.as_u64(), e);
            out.push(e);
        }
        assert_eq!(out, vec![0, 2, 2, 7, 9, 11]);
    }

    #[test]
    fn fifo_within_same_cycle() {
        let mut q = EventQueue::new();
        for i in 0..100 {
            q.push(Cycle::new(5), i);
        }
        for i in 0..100 {
            assert_eq!(q.pop().unwrap().1, i);
        }
    }

    #[test]
    fn keyed_pushes_pop_in_key_order_regardless_of_insertion() {
        let mut q = EventQueue::new();
        // Same cycle, keys inserted out of order: pop order follows keys.
        q.push_keyed(Cycle::new(5), 30, "c");
        q.push_keyed(Cycle::new(5), 10, "a");
        q.push_keyed(Cycle::new(5), 20, "b");
        // A far-future keyed event plus a same-cycle wheel/far mix.
        q.push_keyed(Cycle::new(5000), 1, "far-b");
        q.push_keyed(Cycle::new(5000), 0, "far-a");
        assert_eq!(q.pop_keyed(), Some((Cycle::new(5), 10, "a")));
        assert_eq!(q.pop_keyed(), Some((Cycle::new(5), 20, "b")));
        assert_eq!(q.pop_keyed(), Some((Cycle::new(5), 30, "c")));
        assert_eq!(q.pop_keyed(), Some((Cycle::new(5000), 0, "far-a")));
        assert_eq!(q.pop_keyed(), Some((Cycle::new(5000), 1, "far-b")));
        assert_eq!(q.pop_keyed(), None);
    }

    #[test]
    fn keyed_digest_independent_of_insertion_order() {
        let digest = |pushes: &[(u64, u128)]| {
            let mut q = EventQueue::new();
            for &(t, k) in pushes {
                q.push_keyed(Cycle::new(t), k, k as u64);
            }
            let mut h = StableHasher::new();
            q.digest_with(&mut h, |e, h| h.write_u64(*e));
            h.finish()
        };
        let a = digest(&[(7, 3), (7, 1), (9, 2), (7, 2)]);
        let b = digest(&[(7, 1), (7, 2), (7, 3), (9, 2)]);
        assert_eq!(a, b);
    }

    #[test]
    fn peek_len_clear() {
        let mut q = EventQueue::with_capacity(4);
        assert!(q.is_empty());
        assert_eq!(q.peek_time(), None);
        q.push(Cycle::new(8), ());
        q.push(Cycle::new(3), ());
        assert_eq!(q.peek_time(), Some(Cycle::new(3)));
        assert_eq!(q.len(), 2);
        q.clear();
        assert!(q.is_empty());
    }

    #[test]
    fn interleaved_push_pop_preserves_order() {
        let mut q = EventQueue::new();
        q.push(Cycle::new(10), "a");
        q.push(Cycle::new(20), "b");
        assert_eq!(q.pop().unwrap().1, "a");
        // Push an earlier event after popping; it must come out first.
        q.push(Cycle::new(15), "c");
        assert_eq!(q.pop().unwrap().1, "c");
        assert_eq!(q.pop().unwrap().1, "b");
    }

    #[test]
    fn far_future_events_cross_the_horizon() {
        let mut q = EventQueue::new();
        // Far beyond the wheel window, then near-term.
        q.push(Cycle::new(1_000_000), "far");
        q.push(Cycle::new(3), "near");
        assert_eq!(q.pop().unwrap(), (Cycle::new(3), "near"));
        assert_eq!(q.pop().unwrap(), (Cycle::new(1_000_000), "far"));
        // After the far pop the window has caught up.
        q.push(Cycle::new(1_000_001), "next");
        assert_eq!(q.pop().unwrap(), (Cycle::new(1_000_001), "next"));
    }

    #[test]
    fn same_cycle_fifo_across_wheel_and_far() {
        let mut q = EventQueue::new();
        // "a" lands beyond the horizon (far heap); after the window
        // advances, "b" at the same cycle lands in the wheel. FIFO
        // order must still hold.
        q.push(Cycle::new(5000), "a");
        q.push(Cycle::new(0), "warm");
        assert_eq!(q.pop().unwrap().1, "warm");
        q.push(Cycle::new(4500), "advance");
        assert_eq!(q.pop().unwrap().1, "advance");
        q.push(Cycle::new(5000), "b"); // now within the window
        assert_eq!(q.pop().unwrap(), (Cycle::new(5000), "a"));
        assert_eq!(q.pop().unwrap(), (Cycle::new(5000), "b"));
    }

    /// The original heap-only queue, kept as the ordering oracle.
    struct HeapQueue<E> {
        heap: BinaryHeap<Reverse<(Cycle, u64, usize)>>,
        events: Vec<Option<E>>,
    }

    impl<E> HeapQueue<E> {
        fn new() -> Self {
            HeapQueue {
                heap: BinaryHeap::new(),
                events: Vec::new(),
            }
        }

        fn push(&mut self, at: Cycle, event: E) {
            let seq = self.events.len() as u64;
            self.events.push(Some(event));
            self.heap.push(Reverse((at, seq, seq as usize)));
        }

        fn pop(&mut self) -> Option<(Cycle, E)> {
            let Reverse((at, _, idx)) = self.heap.pop()?;
            Some((at, self.events[idx].take().expect("popped once")))
        }

        fn pop_before(&mut self, horizon: Cycle) -> Option<(Cycle, E)> {
            if self
                .heap
                .peek()
                .is_some_and(|Reverse((at, _, _))| *at < horizon)
            {
                self.pop()
            } else {
                None
            }
        }

        fn peek_horizon(&self) -> Option<Cycle> {
            self.heap.peek().map(|Reverse((at, _, _))| *at)
        }
    }

    #[test]
    fn equivalent_to_reference_heap_on_randomized_schedule() {
        // Drive the time wheel and the pre-wheel heap implementation
        // with an identical randomized push/pop schedule and demand
        // identical pop sequences. The schedule mixes same-cycle
        // bursts, near-future deltas, far-future spills past the wheel
        // horizon, and pops, with the RNG seeded through StableHasher
        // so the schedule itself is pinned forever.
        let mut h = StableHasher::new();
        h.write_str("event-queue-equivalence");
        h.write_u64(4);
        let mut rng = SimRng::new(h.finish());

        let mut wheel: EventQueue<u64> = EventQueue::new();
        let mut heap: HeapQueue<u64> = HeapQueue::new();
        let mut now = 0u64;
        let mut next_id = 0u64;
        let mut pops = 0usize;
        for step in 0..50_000u64 {
            let roll = rng.range(10);
            if roll < 6 {
                // Push at a mostly-near, sometimes-far future time.
                let delta = match rng.range(20) {
                    0 => rng.range(10_000), // far beyond the horizon
                    1..=4 => 0,             // same-cycle burst
                    _ => rng.range(200),    // typical protocol latency
                };
                let at = Cycle::new(now + delta);
                wheel.push(at, next_id);
                heap.push(at, next_id);
                next_id += 1;
            } else {
                let a = wheel.pop();
                let b = heap.pop();
                assert_eq!(a, b, "divergence at step {step}");
                if let Some((at, _)) = a {
                    now = at.as_u64(); // simulated time only moves forward
                    pops += 1;
                }
            }
            assert_eq!(wheel.len(), next_id as usize - pops);
        }
        // Drain the remainder.
        loop {
            let a = wheel.pop();
            let b = heap.pop();
            assert_eq!(a, b, "divergence during drain");
            if a.is_none() {
                break;
            }
        }
    }

    #[test]
    fn pop_before_respects_horizon_boundary() {
        let mut q = EventQueue::new();
        q.push(Cycle::new(5), "at5");
        q.push(Cycle::new(7), "at7");
        // Horizon is exclusive: an event at the horizon stays queued.
        assert_eq!(q.pop_before(Cycle::new(5)), None);
        assert_eq!(q.peek_horizon(), Some(Cycle::new(5)));
        assert_eq!(q.pop_before(Cycle::new(6)), Some((Cycle::new(5), "at5")));
        assert_eq!(q.pop_before(Cycle::new(6)), None);
        assert_eq!(q.len(), 1);
        // A far-future horizon behaves like pop().
        assert_eq!(
            q.pop_before(Cycle::new(u64::MAX)),
            Some((Cycle::new(7), "at7"))
        );
        assert_eq!(q.peek_horizon(), None);
    }

    /// Wheel-vs-heap equivalence for the bounded-drain API: drive both
    /// implementations with an identical randomized schedule of pushes
    /// and horizon-bounded pops (horizons chosen to land before,
    /// between, at, and beyond pending events, including past the wheel
    /// window so the far heap participates) and demand identical
    /// observable behaviour. This pins the PDES-facing guarantee that
    /// `pop_before`/`peek_horizon` never reorder or lose events
    /// relative to a plain `(cycle, seq)` heap.
    #[test]
    fn bounded_drain_equivalent_to_reference_heap() {
        let mut h = StableHasher::new();
        h.write_str("event-queue-bounded-drain");
        h.write_u64(9);
        let mut rng = SimRng::new(h.finish());

        let mut wheel: EventQueue<u64> = EventQueue::new();
        let mut heap: HeapQueue<u64> = HeapQueue::new();
        let mut now = 0u64;
        let mut next_id = 0u64;
        for step in 0..50_000u64 {
            match rng.range(10) {
                0..=4 => {
                    let delta = match rng.range(20) {
                        0 => rng.range(10_000), // past the wheel horizon
                        1..=4 => 0,             // same-cycle burst
                        _ => rng.range(200),
                    };
                    let at = Cycle::new(now + delta);
                    wheel.push(at, next_id);
                    heap.push(at, next_id);
                    next_id += 1;
                }
                5..=8 => {
                    // A PDES-style safe window: drain everything before
                    // a horizon a few cycles ahead of the current time.
                    let horizon = Cycle::new(now + rng.range(64));
                    loop {
                        let a = wheel.pop_before(horizon);
                        let b = heap.pop_before(horizon);
                        assert_eq!(a, b, "bounded divergence at step {step}");
                        match a {
                            Some((at, _)) => now = at.as_u64(),
                            None => break,
                        }
                    }
                    assert_eq!(wheel.peek_horizon(), heap.peek_horizon());
                }
                _ => {
                    let a = wheel.pop();
                    let b = heap.pop();
                    assert_eq!(a, b, "unbounded divergence at step {step}");
                    if let Some((at, _)) = a {
                        now = at.as_u64();
                    }
                }
            }
        }
        loop {
            let a = wheel.pop_before(Cycle::new(u64::MAX));
            let b = heap.pop();
            assert_eq!(a, b, "divergence during drain");
            if a.is_none() {
                break;
            }
        }
    }
}
