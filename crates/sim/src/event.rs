//! A deterministic discrete-event queue.

use crate::time::Cycle;
use std::cmp::Reverse;
use std::collections::BinaryHeap;

/// A priority queue of timestamped events with deterministic ordering.
///
/// Events are returned in nondecreasing time order; events scheduled for
/// the same cycle are returned in the order they were inserted. This
/// total order makes every simulation run reproducible bit-for-bit from
/// its inputs, which the experiment harness relies on.
///
/// # Example
///
/// ```
/// use dsm_sim::{Cycle, EventQueue};
///
/// let mut q = EventQueue::new();
/// q.push(Cycle::new(3), 'b');
/// q.push(Cycle::new(1), 'a');
/// assert_eq!(q.len(), 2);
/// assert_eq!(q.pop(), Some((Cycle::new(1), 'a')));
/// assert_eq!(q.pop(), Some((Cycle::new(3), 'b')));
/// assert_eq!(q.pop(), None);
/// ```
#[derive(Debug, Clone)]
pub struct EventQueue<E> {
    heap: BinaryHeap<Entry<E>>,
    next_seq: u64,
}

#[derive(Debug, Clone)]
struct Entry<E> {
    key: Reverse<(Cycle, u64)>,
    event: E,
}

impl<E> PartialEq for Entry<E> {
    fn eq(&self, other: &Self) -> bool {
        self.key == other.key
    }
}
impl<E> Eq for Entry<E> {}
impl<E> PartialOrd for Entry<E> {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}
impl<E> Ord for Entry<E> {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        self.key.cmp(&other.key)
    }
}

impl<E> EventQueue<E> {
    /// Creates an empty queue.
    pub fn new() -> Self {
        EventQueue {
            heap: BinaryHeap::new(),
            next_seq: 0,
        }
    }

    /// Creates an empty queue with room for `capacity` events.
    pub fn with_capacity(capacity: usize) -> Self {
        EventQueue {
            heap: BinaryHeap::with_capacity(capacity),
            next_seq: 0,
        }
    }

    /// Schedules `event` to fire at time `at`.
    pub fn push(&mut self, at: Cycle, event: E) {
        let seq = self.next_seq;
        self.next_seq += 1;
        self.heap.push(Entry {
            key: Reverse((at, seq)),
            event,
        });
    }

    /// Removes and returns the earliest event, or `None` if empty.
    pub fn pop(&mut self) -> Option<(Cycle, E)> {
        self.heap.pop().map(|e| (e.key.0 .0, e.event))
    }

    /// Returns the time of the earliest pending event, if any.
    pub fn peek_time(&self) -> Option<Cycle> {
        self.heap.peek().map(|e| e.key.0 .0)
    }

    /// Returns the number of pending events.
    pub fn len(&self) -> usize {
        self.heap.len()
    }

    /// Returns `true` if no events are pending.
    pub fn is_empty(&self) -> bool {
        self.heap.is_empty()
    }

    /// Removes all pending events.
    pub fn clear(&mut self) {
        self.heap.clear();
    }
}

impl<E> Default for EventQueue<E> {
    fn default() -> Self {
        Self::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pops_in_time_order() {
        let mut q = EventQueue::new();
        for &t in &[9u64, 2, 7, 2, 0, 11] {
            q.push(Cycle::new(t), t);
        }
        let mut out = Vec::new();
        while let Some((t, e)) = q.pop() {
            assert_eq!(t.as_u64(), e);
            out.push(e);
        }
        assert_eq!(out, vec![0, 2, 2, 7, 9, 11]);
    }

    #[test]
    fn fifo_within_same_cycle() {
        let mut q = EventQueue::new();
        for i in 0..100 {
            q.push(Cycle::new(5), i);
        }
        for i in 0..100 {
            assert_eq!(q.pop().unwrap().1, i);
        }
    }

    #[test]
    fn peek_len_clear() {
        let mut q = EventQueue::with_capacity(4);
        assert!(q.is_empty());
        assert_eq!(q.peek_time(), None);
        q.push(Cycle::new(8), ());
        q.push(Cycle::new(3), ());
        assert_eq!(q.peek_time(), Some(Cycle::new(3)));
        assert_eq!(q.len(), 2);
        q.clear();
        assert!(q.is_empty());
    }

    #[test]
    fn interleaved_push_pop_preserves_order() {
        let mut q = EventQueue::new();
        q.push(Cycle::new(10), "a");
        q.push(Cycle::new(20), "b");
        assert_eq!(q.pop().unwrap().1, "a");
        // Push an earlier event after popping; it must come out first.
        q.push(Cycle::new(15), "c");
        assert_eq!(q.pop().unwrap().1, "c");
        assert_eq!(q.pop().unwrap().1, "b");
    }
}
