//! A deterministic discrete-event queue.
//!
//! The queue is the single hottest structure in the simulator: every
//! message delivery, server completion and processor step goes through
//! one `push` and one `pop`. It is implemented as a bucketed time wheel
//! — a ring of per-cycle FIFO buckets covering the near future, which
//! turns the common case (events scheduled a few tens of cycles ahead)
//! into O(1) deque operations — with a binary-heap fallback for events
//! beyond the wheel horizon (long compute phases, backoff waits).

use crate::hash::StableHasher;
use crate::time::Cycle;
use std::cmp::Reverse;
use std::collections::{BinaryHeap, VecDeque};

/// Cycles covered by the near-future wheel. Must be a power of two.
/// Network and memory latencies are tens of cycles, so virtually all
/// protocol traffic lands in the wheel; only long compute delays and
/// pathological backoffs spill to the far heap.
const WHEEL_SIZE: usize = 1024;
const WHEEL_MASK: usize = WHEEL_SIZE - 1;

/// A priority queue of timestamped events with deterministic ordering.
///
/// Events are returned in nondecreasing time order; events scheduled for
/// the same cycle are returned in the order they were inserted. This
/// total order makes every simulation run reproducible bit-for-bit from
/// its inputs, which the experiment harness relies on.
///
/// Internally every event carries a global insertion sequence number,
/// and both the wheel buckets (FIFO deques, so bucket order *is*
/// sequence order) and the far heap (ordered by `(cycle, seq)`) respect
/// it, so the wheel/heap split is invisible to callers: the pop order is
/// identical to a single `(cycle, seq)`-ordered heap.
///
/// # Example
///
/// ```
/// use dsm_sim::{Cycle, EventQueue};
///
/// let mut q = EventQueue::new();
/// q.push(Cycle::new(3), 'b');
/// q.push(Cycle::new(1), 'a');
/// assert_eq!(q.len(), 2);
/// assert_eq!(q.pop(), Some((Cycle::new(1), 'a')));
/// assert_eq!(q.pop(), Some((Cycle::new(3), 'b')));
/// assert_eq!(q.pop(), None);
/// ```
#[derive(Debug, Clone)]
pub struct EventQueue<E> {
    /// Near-future buckets; the bucket for cycle `t` (when `t` is within
    /// `[base, base + WHEEL_SIZE)`) is `wheel[t & WHEEL_MASK]`.
    wheel: Vec<VecDeque<(u64, E)>>,
    /// The earliest cycle the wheel can currently hold. Only moves
    /// forward.
    base: u64,
    /// Number of events stored in wheel buckets (the rest are in `far`).
    wheel_len: usize,
    /// Events at or beyond the wheel horizon (and, for API generality,
    /// events pushed before `base`, which cannot happen in a forward-
    /// running simulation but is still handled correctly).
    far: BinaryHeap<Entry<E>>,
    next_seq: u64,
}

#[derive(Debug, Clone)]
struct Entry<E> {
    key: Reverse<(Cycle, u64)>,
    event: E,
}

impl<E> PartialEq for Entry<E> {
    fn eq(&self, other: &Self) -> bool {
        self.key == other.key
    }
}
impl<E> Eq for Entry<E> {}
impl<E> PartialOrd for Entry<E> {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}
impl<E> Ord for Entry<E> {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        self.key.cmp(&other.key)
    }
}

impl<E> EventQueue<E> {
    /// Creates an empty queue.
    pub fn new() -> Self {
        EventQueue {
            wheel: (0..WHEEL_SIZE).map(|_| VecDeque::new()).collect(),
            base: 0,
            wheel_len: 0,
            far: BinaryHeap::new(),
            next_seq: 0,
        }
    }

    /// Creates an empty queue pre-sized for `capacity` concurrently
    /// pending events (the wheel buckets still grow on demand; the
    /// far-heap allocation is reserved up front).
    pub fn with_capacity(capacity: usize) -> Self {
        let mut q = Self::new();
        q.far.reserve(capacity);
        q
    }

    /// Schedules `event` to fire at time `at`.
    pub fn push(&mut self, at: Cycle, event: E) {
        let seq = self.next_seq;
        self.next_seq += 1;
        let t = at.as_u64();
        if self.wheel_len == 0 && t >= self.base {
            // Empty wheel: slide the window so it starts at `t`.
            self.base = t;
        }
        if t >= self.base && t - self.base < WHEEL_SIZE as u64 {
            self.wheel[t as usize & WHEEL_MASK].push_back((seq, event));
            self.wheel_len += 1;
        } else {
            self.far.push(Entry {
                key: Reverse((at, seq)),
                event,
            });
        }
    }

    /// Removes and returns the earliest event, or `None` if empty.
    pub fn pop(&mut self) -> Option<(Cycle, E)> {
        // Earliest wheel event: advance `base` over empty buckets (each
        // bucket is passed at most once per run, so this is amortized
        // O(1)) until the first nonempty one.
        let wheel_key = if self.wheel_len > 0 {
            loop {
                if let Some(&(seq, _)) = self.wheel[self.base as usize & WHEEL_MASK].front() {
                    break Some((self.base, seq));
                }
                self.base += 1;
            }
        } else {
            None
        };
        let far_key = self.far.peek().map(|e| ((e.key.0 .0).as_u64(), e.key.0 .1));
        let take_wheel = match (wheel_key, far_key) {
            (None, None) => return None,
            (Some(_), None) => true,
            (None, Some(_)) => false,
            (Some(w), Some(f)) => w < f,
        };
        if take_wheel {
            let (_, event) = self.wheel[self.base as usize & WHEEL_MASK]
                .pop_front()
                .expect("nonempty bucket");
            self.wheel_len -= 1;
            Some((Cycle::new(self.base), event))
        } else {
            let e = self.far.pop().expect("nonempty far heap");
            let at = e.key.0 .0;
            if self.wheel_len == 0 {
                // Keep the (empty) wheel window from falling behind
                // simulated time, so future near-term pushes use it.
                self.base = self.base.max(at.as_u64());
            }
            Some((at, e.event))
        }
    }

    /// Returns the time of the earliest pending event, if any.
    pub fn peek_time(&self) -> Option<Cycle> {
        let mut earliest: Option<u64> = None;
        if self.wheel_len > 0 {
            for i in 0..WHEEL_SIZE as u64 {
                let t = self.base + i;
                if !self.wheel[t as usize & WHEEL_MASK].is_empty() {
                    earliest = Some(t);
                    break;
                }
            }
        }
        match (earliest, self.far.peek().map(|e| (e.key.0 .0).as_u64())) {
            (Some(w), Some(f)) => Some(Cycle::new(w.min(f))),
            (Some(w), None) => Some(Cycle::new(w)),
            (None, Some(f)) => Some(Cycle::new(f)),
            (None, None) => None,
        }
    }

    /// Returns the number of pending events.
    pub fn len(&self) -> usize {
        self.wheel_len + self.far.len()
    }

    /// Returns `true` if no events are pending.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Feeds the queue's complete pending-event state into `h`, using
    /// `f` to hash each event payload.
    ///
    /// Events are visited in pop order — `(cycle, insertion sequence)`
    /// — and each is hashed together with its cycle and sequence
    /// number, so two queues digest equal iff they would pop the
    /// identical timestamped event stream. The wheel/heap split, the
    /// window base and bucket layout are implementation details and do
    /// not enter the digest. The insertion counter *is* included: it
    /// determines the tie-break order of all future pushes.
    pub fn digest_with(&self, h: &mut StableHasher, mut f: impl FnMut(&E, &mut StableHasher)) {
        h.write_u64(self.next_seq);
        h.write_usize(self.len());
        if self.wheel_len > 0 {
            // The window is exactly WHEEL_SIZE cycles wide, so each
            // bucket holds events of a single cycle and walking the
            // window in time order visits wheel events in pop order.
            for i in 0..WHEEL_SIZE as u64 {
                let t = self.base + i;
                for (seq, event) in &self.wheel[t as usize & WHEEL_MASK] {
                    h.write_u64(t);
                    h.write_u64(*seq);
                    f(event, h);
                }
            }
        }
        let mut far: Vec<&Entry<E>> = self.far.iter().collect();
        far.sort_by_key(|e| e.key.0);
        for e in far {
            h.write_u64(e.key.0 .0.as_u64());
            h.write_u64(e.key.0 .1);
            f(&e.event, h);
        }
    }

    /// Removes all pending events.
    pub fn clear(&mut self) {
        if self.wheel_len > 0 {
            for bucket in &mut self.wheel {
                bucket.clear();
            }
            self.wheel_len = 0;
        }
        self.far.clear();
    }
}

impl<E> Default for EventQueue<E> {
    fn default() -> Self {
        Self::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::hash::StableHasher;
    use crate::rng::SimRng;

    #[test]
    fn pops_in_time_order() {
        let mut q = EventQueue::new();
        for &t in &[9u64, 2, 7, 2, 0, 11] {
            q.push(Cycle::new(t), t);
        }
        let mut out = Vec::new();
        while let Some((t, e)) = q.pop() {
            assert_eq!(t.as_u64(), e);
            out.push(e);
        }
        assert_eq!(out, vec![0, 2, 2, 7, 9, 11]);
    }

    #[test]
    fn fifo_within_same_cycle() {
        let mut q = EventQueue::new();
        for i in 0..100 {
            q.push(Cycle::new(5), i);
        }
        for i in 0..100 {
            assert_eq!(q.pop().unwrap().1, i);
        }
    }

    #[test]
    fn peek_len_clear() {
        let mut q = EventQueue::with_capacity(4);
        assert!(q.is_empty());
        assert_eq!(q.peek_time(), None);
        q.push(Cycle::new(8), ());
        q.push(Cycle::new(3), ());
        assert_eq!(q.peek_time(), Some(Cycle::new(3)));
        assert_eq!(q.len(), 2);
        q.clear();
        assert!(q.is_empty());
    }

    #[test]
    fn interleaved_push_pop_preserves_order() {
        let mut q = EventQueue::new();
        q.push(Cycle::new(10), "a");
        q.push(Cycle::new(20), "b");
        assert_eq!(q.pop().unwrap().1, "a");
        // Push an earlier event after popping; it must come out first.
        q.push(Cycle::new(15), "c");
        assert_eq!(q.pop().unwrap().1, "c");
        assert_eq!(q.pop().unwrap().1, "b");
    }

    #[test]
    fn far_future_events_cross_the_horizon() {
        let mut q = EventQueue::new();
        // Far beyond the wheel window, then near-term.
        q.push(Cycle::new(1_000_000), "far");
        q.push(Cycle::new(3), "near");
        assert_eq!(q.pop().unwrap(), (Cycle::new(3), "near"));
        assert_eq!(q.pop().unwrap(), (Cycle::new(1_000_000), "far"));
        // After the far pop the window has caught up.
        q.push(Cycle::new(1_000_001), "next");
        assert_eq!(q.pop().unwrap(), (Cycle::new(1_000_001), "next"));
    }

    #[test]
    fn same_cycle_fifo_across_wheel_and_far() {
        let mut q = EventQueue::new();
        // "a" lands beyond the horizon (far heap); after the window
        // advances, "b" at the same cycle lands in the wheel. FIFO
        // order must still hold.
        q.push(Cycle::new(5000), "a");
        q.push(Cycle::new(0), "warm");
        assert_eq!(q.pop().unwrap().1, "warm");
        q.push(Cycle::new(4500), "advance");
        assert_eq!(q.pop().unwrap().1, "advance");
        q.push(Cycle::new(5000), "b"); // now within the window
        assert_eq!(q.pop().unwrap(), (Cycle::new(5000), "a"));
        assert_eq!(q.pop().unwrap(), (Cycle::new(5000), "b"));
    }

    /// The original heap-only queue, kept as the ordering oracle.
    struct HeapQueue<E> {
        heap: BinaryHeap<Reverse<(Cycle, u64, usize)>>,
        events: Vec<Option<E>>,
    }

    impl<E> HeapQueue<E> {
        fn new() -> Self {
            HeapQueue {
                heap: BinaryHeap::new(),
                events: Vec::new(),
            }
        }

        fn push(&mut self, at: Cycle, event: E) {
            let seq = self.events.len() as u64;
            self.events.push(Some(event));
            self.heap.push(Reverse((at, seq, seq as usize)));
        }

        fn pop(&mut self) -> Option<(Cycle, E)> {
            let Reverse((at, _, idx)) = self.heap.pop()?;
            Some((at, self.events[idx].take().expect("popped once")))
        }
    }

    #[test]
    fn equivalent_to_reference_heap_on_randomized_schedule() {
        // Drive the time wheel and the pre-wheel heap implementation
        // with an identical randomized push/pop schedule and demand
        // identical pop sequences. The schedule mixes same-cycle
        // bursts, near-future deltas, far-future spills past the wheel
        // horizon, and pops, with the RNG seeded through StableHasher
        // so the schedule itself is pinned forever.
        let mut h = StableHasher::new();
        h.write_str("event-queue-equivalence");
        h.write_u64(4);
        let mut rng = SimRng::new(h.finish());

        let mut wheel: EventQueue<u64> = EventQueue::new();
        let mut heap: HeapQueue<u64> = HeapQueue::new();
        let mut now = 0u64;
        let mut next_id = 0u64;
        let mut pops = 0usize;
        for step in 0..50_000u64 {
            let roll = rng.range(10);
            if roll < 6 {
                // Push at a mostly-near, sometimes-far future time.
                let delta = match rng.range(20) {
                    0 => rng.range(10_000), // far beyond the horizon
                    1..=4 => 0,             // same-cycle burst
                    _ => rng.range(200),    // typical protocol latency
                };
                let at = Cycle::new(now + delta);
                wheel.push(at, next_id);
                heap.push(at, next_id);
                next_id += 1;
            } else {
                let a = wheel.pop();
                let b = heap.pop();
                assert_eq!(a, b, "divergence at step {step}");
                if let Some((at, _)) = a {
                    now = at.as_u64(); // simulated time only moves forward
                    pops += 1;
                }
            }
            assert_eq!(wheel.len(), next_id as usize - pops);
        }
        // Drain the remainder.
        loop {
            let a = wheel.pop();
            let b = heap.pop();
            assert_eq!(a, b, "divergence during drain");
            if a.is_none() {
                break;
            }
        }
    }
}
