//! Deterministic fault injection.
//!
//! The robustness harness perturbs a run with *protocol-legal* events —
//! extra network delay, forced capacity evictions (whose writebacks race
//! with forwarded interventions and provoke NACK storms), and forced
//! reservation invalidations — so every synchronization algorithm can be
//! stress-tested without changing the semantics of its reference stream.
//! One deliberately *illegal* fault (directory corruption, off in every
//! preset) exists so the invariant checker and the reproducer shrinker
//! have a guaranteed failure to exercise.
//!
//! Two rules keep runs reproducible and paper artifacts intact:
//!
//! * every fault decision is drawn from a dedicated [`SimRng`] stream
//!   forked off the machine seed with a distinct salt, so workload and
//!   backoff streams never observe the injector;
//! * with [`FaultConfig::default()`] (everything off) the simulator takes
//!   exactly the code paths it takes without this module, so results are
//!   byte-identical to a faults-free build.
//!
//! # Replay and shrinking
//!
//! Every fault the injector *draws* gets a monotonically increasing
//! candidate index, and the applied schedule is recorded in a
//! [`FaultRecord`]. A [`FaultFilter`] restricts which candidate indices
//! are *applied* without changing what is *drawn*: a filtered replay
//! consumes the RNG stream byte-for-byte identically to the original
//! run, so suppressing a fault never perturbs the timing of the ones
//! that remain. This is what makes delta-debugging over fault schedules
//! sound — see the experiment runner's reproducer shrinker.
//!
//! # Example
//!
//! ```
//! use dsm_sim::{FaultConfig, FaultInjector, SimRng};
//!
//! let cfg = FaultConfig::light();
//! let mut inj = FaultInjector::new(cfg, SimRng::new(7));
//! let extra = inj.jitter(0); // deterministic: same seed, same stream
//! assert!(extra <= FaultConfig::light().jitter_max);
//! ```

use crate::ids::NodeId;
use crate::rng::SimRng;

/// Probabilities and windows for deterministic fault injection.
///
/// Rates are expressed per ten thousand (basis points) so the config
/// stays `Eq + Hash` and can live inside `MachineConfig`. The default is
/// everything off: no jitter, no forced evictions, no reservation wipes,
/// no corruption, paranoid checking disabled, watchdog disabled.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct FaultConfig {
    /// Chance (per 10 000 messages) that a message is delayed extra cycles.
    pub jitter_per_10k: u32,
    /// Maximum extra delay, in cycles, when jitter fires.
    pub jitter_max: u64,
    /// Chance (per 10 000 windows) of forcing a capacity eviction at a
    /// random node. Evicting an exclusive line emits a writeback that
    /// races with in-flight interventions — the protocol's NAK path.
    pub evict_per_10k: u32,
    /// Chance (per 10 000 windows) of wiping all memory-side LL/SC
    /// reservations at a random home node (a forced invalidation storm).
    pub wipe_per_10k: u32,
    /// Chance (per 10 000 windows) of corrupting coherence state at a
    /// random node: a shared cached line is illegally promoted to
    /// exclusive, manufacturing a two-owners violation. Unlike every
    /// other fault this is **not** protocol-legal — it exists to give
    /// the paranoid invariant checker and the reproducer shrinker a
    /// deterministic failure to find, and is off in every preset.
    pub corrupt_per_10k: u32,
    /// Cycles between fault windows (eviction/wipe opportunities).
    pub period: u64,
    /// Run the protocol invariant checker after every transition.
    pub paranoid: bool,
    /// Livelock watchdog: fail the run if events keep firing but no
    /// processor retires an operation for this many cycles (0 = off).
    pub watchdog: u64,
}

impl Default for FaultConfig {
    fn default() -> Self {
        FaultConfig {
            jitter_per_10k: 0,
            jitter_max: 0,
            evict_per_10k: 0,
            wipe_per_10k: 0,
            corrupt_per_10k: 0,
            period: 1024,
            paranoid: false,
            watchdog: 0,
        }
    }
}

impl FaultConfig {
    /// A mild preset: occasional jitter, rare evictions and wipes.
    pub fn light() -> Self {
        FaultConfig {
            jitter_per_10k: 300,
            jitter_max: 32,
            evict_per_10k: 2_000,
            wipe_per_10k: 1_000,
            period: 2048,
            ..FaultConfig::default()
        }
    }

    /// An aggressive preset: frequent jitter, evictions and wipes.
    pub fn heavy() -> Self {
        FaultConfig {
            jitter_per_10k: 2_000,
            jitter_max: 128,
            evict_per_10k: 8_000,
            wipe_per_10k: 5_000,
            period: 512,
            ..FaultConfig::default()
        }
    }

    /// True if any fault (jitter, eviction, wipe or corruption) can fire.
    pub fn any_faults(&self) -> bool {
        self.jitter_per_10k > 0
            || self.evict_per_10k > 0
            || self.wipe_per_10k > 0
            || self.corrupt_per_10k > 0
    }

    /// True if the config changes machine behaviour in any way
    /// (faults, paranoid checking, or the watchdog).
    pub fn is_active(&self) -> bool {
        self.any_faults() || self.paranoid || self.watchdog > 0
    }

    /// Validates internal consistency.
    ///
    /// # Errors
    ///
    /// Returns a description of the first violated constraint, e.g. a
    /// rate above 10 000 or a zero window period with faults enabled.
    pub fn validate(&self) -> Result<(), String> {
        for (name, rate) in [
            ("jitter_per_10k", self.jitter_per_10k),
            ("evict_per_10k", self.evict_per_10k),
            ("wipe_per_10k", self.wipe_per_10k),
            ("corrupt_per_10k", self.corrupt_per_10k),
        ] {
            if rate > 10_000 {
                return Err(format!("{name} is {rate}, max is 10000"));
            }
        }
        if self.period == 0
            && (self.evict_per_10k > 0 || self.wipe_per_10k > 0 || self.corrupt_per_10k > 0)
        {
            return Err("fault period must be positive when window faults are enabled".into());
        }
        if self.jitter_per_10k > 0 && self.jitter_max == 0 {
            return Err("jitter enabled but jitter_max is 0 cycles".into());
        }
        Ok(())
    }

    /// Parses a spec string: a preset name (`light`, `heavy`) or a
    /// comma-separated key list — `jitter=300`, `jmax=32`, `evict=2000`,
    /// `wipe=1000`, `corrupt=50`, `period=2048`, `watchdog=2000000`
    /// (rates per 10 000).
    ///
    /// # Errors
    ///
    /// Returns a message naming the unknown key or unparsable value.
    pub fn from_spec(spec: &str) -> Result<Self, String> {
        match spec {
            "" | "light" => return Ok(FaultConfig::light()),
            "heavy" => return Ok(FaultConfig::heavy()),
            _ => {}
        }
        let mut cfg = FaultConfig {
            jitter_max: 32,
            ..FaultConfig::default()
        };
        for part in spec.split(',') {
            let (key, value) = part
                .split_once('=')
                .ok_or_else(|| format!("fault spec item `{part}` is not key=value"))?;
            let v: u64 = value
                .parse()
                .map_err(|_| format!("fault spec value `{value}` for `{key}` is not a number"))?;
            match key {
                "jitter" => cfg.jitter_per_10k = v as u32,
                "jmax" => cfg.jitter_max = v,
                "evict" => cfg.evict_per_10k = v as u32,
                "wipe" => cfg.wipe_per_10k = v as u32,
                "corrupt" => cfg.corrupt_per_10k = v as u32,
                "period" => cfg.period = v,
                "watchdog" => cfg.watchdog = v,
                other => {
                    return Err(format!(
                        "unknown fault spec key `{other}` \
                         (try jitter/jmax/evict/wipe/corrupt/period/watchdog)"
                    ))
                }
            }
        }
        cfg.validate()?;
        Ok(cfg)
    }

    /// Renders the config back into [`FaultConfig::from_spec`] grammar (used by
    /// reproducer artifacts, which must carry the exact fault settings).
    pub fn to_spec(&self) -> String {
        let mut parts = Vec::new();
        for (key, v) in [
            ("jitter", u64::from(self.jitter_per_10k)),
            ("jmax", self.jitter_max),
            ("evict", u64::from(self.evict_per_10k)),
            ("wipe", u64::from(self.wipe_per_10k)),
            ("corrupt", u64::from(self.corrupt_per_10k)),
            ("period", self.period),
            ("watchdog", self.watchdog),
        ] {
            parts.push(format!("{key}={v}"));
        }
        parts.join(",")
    }
}

/// A window fault the injector asks the machine to apply.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FaultEvent {
    /// Force a capacity eviction of one resident line at `node`'s cache.
    EvictLine {
        /// The cache to pressure.
        node: NodeId,
    },
    /// Invalidate every memory-side LL/SC reservation held at `node`.
    WipeReservations {
        /// The home node whose reservation store is wiped.
        node: NodeId,
    },
    /// Illegally promote one shared resident line at `node` to
    /// exclusive (adversarial, invariant-violating — see
    /// [`FaultConfig::corrupt_per_10k`]).
    CorruptLine {
        /// The cache whose line is promoted.
        node: NodeId,
    },
}

/// One applied fault, as recorded in a [`FaultRecord`] schedule.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum InjectedFault {
    /// A message was delayed by `extra` cycles.
    Jitter {
        /// The extra delay applied.
        extra: u64,
    },
    /// A window fault (eviction, wipe, or corruption).
    Window(FaultEvent),
}

/// Upper bound on recorded schedule entries. The candidate/applied
/// *counts* stay exact beyond the cap; only the per-entry detail is
/// dropped (a heavy multi-billion-cycle run would otherwise hold the
/// whole schedule in memory).
pub const FAULT_SCHEDULE_CAP: usize = 65_536;

/// The fault history of one run: how many candidates were drawn, how
/// many were applied, and the applied schedule (capped at
/// [`FAULT_SCHEDULE_CAP`] entries).
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct FaultRecord {
    /// Fault candidates drawn from the RNG (filter-independent: a
    /// replay of the same seed and config always draws the same
    /// candidates in the same order).
    pub candidates: u64,
    /// Candidates actually applied (equals `candidates` when no filter
    /// is installed).
    pub applied: u64,
    /// The applied schedule: `(candidate index, cycle, fault)`.
    pub schedule: Vec<(u64, u64, InjectedFault)>,
}

impl FaultRecord {
    fn note(&mut self, index: u64, cycle: u64, fault: InjectedFault) {
        self.applied += 1;
        if self.schedule.len() < FAULT_SCHEDULE_CAP {
            self.schedule.push((index, cycle, fault));
        }
    }
}

/// An allow-list over fault candidate indices, kept as sorted disjoint
/// half-open ranges.
///
/// The filter gates which drawn candidates are *applied*; the RNG
/// stream is untouched either way. Queries must come in nondecreasing
/// index order (they do: the index is a monotone counter), which makes
/// each query amortized O(1) via a cursor.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct FaultFilter {
    /// Sorted, disjoint, half-open `[start, end)` index ranges.
    ranges: Vec<(u64, u64)>,
    cursor: usize,
}

impl FaultFilter {
    /// Builds a filter from half-open `[start, end)` ranges. Ranges are
    /// sorted, merged and empties dropped, so any input is canonicalized.
    pub fn from_ranges(mut ranges: Vec<(u64, u64)>) -> Self {
        ranges.retain(|&(s, e)| s < e);
        ranges.sort_unstable();
        let mut merged: Vec<(u64, u64)> = Vec::with_capacity(ranges.len());
        for (s, e) in ranges {
            match merged.last_mut() {
                Some(last) if s <= last.1 => last.1 = last.1.max(e),
                _ => merged.push((s, e)),
            }
        }
        FaultFilter {
            ranges: merged,
            cursor: 0,
        }
    }

    /// Builds a filter allowing exactly the given candidate indices.
    pub fn from_indices(indices: &[u64]) -> Self {
        Self::from_ranges(indices.iter().map(|&i| (i, i + 1)).collect())
    }

    /// The canonical allowed ranges.
    pub fn ranges(&self) -> &[(u64, u64)] {
        &self.ranges
    }

    /// Total number of allowed indices.
    pub fn count(&self) -> u64 {
        self.ranges.iter().map(|(s, e)| e - s).sum()
    }

    /// Whether candidate `index` is allowed. Queries must be issued in
    /// nondecreasing index order.
    pub fn allows(&mut self, index: u64) -> bool {
        while let Some(&(_, end)) = self.ranges.get(self.cursor) {
            if index < end {
                break;
            }
            self.cursor += 1;
        }
        self.ranges
            .get(self.cursor)
            .is_some_and(|&(start, _)| index >= start)
    }
}

/// Draws fault decisions from a private deterministic stream.
///
/// The injector is a pure function of its config, its seed and the
/// sequence of queries, so identical runs inject identical faults
/// regardless of host parallelism. An optional [`FaultFilter`]
/// suppresses the *application* of drawn candidates without changing
/// the draw sequence (see the module docs on replay soundness), and a
/// [`FaultRecord`] captures what was applied.
#[derive(Debug, Clone)]
pub struct FaultInjector {
    cfg: FaultConfig,
    rng: SimRng,
    next_window: u64,
    /// Next candidate index to assign (total candidates drawn so far).
    drawn: u64,
    filter: Option<FaultFilter>,
    record: FaultRecord,
}

impl FaultInjector {
    /// Creates an injector; `rng` should be forked off the machine seed
    /// with a salt no other component uses.
    pub fn new(cfg: FaultConfig, rng: SimRng) -> Self {
        let first = cfg.period.max(1);
        FaultInjector {
            cfg,
            rng,
            next_window: first,
            drawn: 0,
            filter: None,
            record: FaultRecord::default(),
        }
    }

    /// The injector's configuration.
    pub fn config(&self) -> &FaultConfig {
        &self.cfg
    }

    /// Installs (or clears) the candidate-index allow list. Replays
    /// install the filter before the run starts.
    pub fn set_filter(&mut self, filter: Option<FaultFilter>) {
        self.filter = filter;
    }

    /// The record of faults drawn and applied so far.
    pub fn record(&self) -> &FaultRecord {
        &self.record
    }

    /// Assigns the next candidate index and decides (via the filter)
    /// whether that candidate is applied.
    fn admit(&mut self) -> (u64, bool) {
        let index = self.drawn;
        self.drawn += 1;
        self.record.candidates = self.drawn;
        let allowed = match &mut self.filter {
            Some(f) => f.allows(index),
            None => true,
        };
        (index, allowed)
    }

    /// Extra delay (in cycles) to add to the next message, usually 0.
    /// `now` is the current simulated time (recorded in the schedule).
    pub fn jitter(&mut self, now: u64) -> u64 {
        if self.cfg.jitter_per_10k == 0 {
            return 0;
        }
        if self.rng.range(10_000) < u64::from(self.cfg.jitter_per_10k) {
            let extra = 1 + self.rng.range(self.cfg.jitter_max.max(1));
            let (index, allowed) = self.admit();
            if allowed {
                self.record
                    .note(index, now, InjectedFault::Jitter { extra });
                extra
            } else {
                0
            }
        } else {
            0
        }
    }

    /// Returns the window faults due at simulated time `now`, advancing
    /// the window clock. At most one eviction, one wipe and one
    /// corruption per window.
    pub fn poll(&mut self, now: u64, nodes: u32) -> Vec<FaultEvent> {
        let mut fired = Vec::new();
        if self.cfg.evict_per_10k == 0
            && self.cfg.wipe_per_10k == 0
            && self.cfg.corrupt_per_10k == 0
        {
            return fired;
        }
        while now >= self.next_window {
            self.next_window += self.cfg.period.max(1);
            if self.rng.range(10_000) < u64::from(self.cfg.evict_per_10k) {
                let ev = FaultEvent::EvictLine {
                    node: NodeId::new(self.rng.range(u64::from(nodes)) as u32),
                };
                self.offer(now, ev, &mut fired);
            }
            if self.rng.range(10_000) < u64::from(self.cfg.wipe_per_10k) {
                let ev = FaultEvent::WipeReservations {
                    node: NodeId::new(self.rng.range(u64::from(nodes)) as u32),
                };
                self.offer(now, ev, &mut fired);
            }
            // Drawn strictly after the legal faults, and only when the
            // knob is on, so enabling corruption never perturbs the
            // jitter/evict/wipe stream of an existing seed — and the
            // stream with corruption off is byte-identical to builds
            // that predate the knob.
            if self.cfg.corrupt_per_10k > 0
                && self.rng.range(10_000) < u64::from(self.cfg.corrupt_per_10k)
            {
                let ev = FaultEvent::CorruptLine {
                    node: NodeId::new(self.rng.range(u64::from(nodes)) as u32),
                };
                self.offer(now, ev, &mut fired);
            }
        }
        fired
    }

    /// Folds the injector's dynamic state — RNG position, window clock,
    /// and candidate/applied counters — into a checkpoint digest. The
    /// config and filter are static per run and are excluded.
    pub fn digest(&self, h: &mut crate::StableHasher) {
        for w in self.rng.state() {
            h.write_u64(w);
        }
        h.write_u64(self.next_window);
        h.write_u64(self.drawn);
        h.write_u64(self.record.candidates);
        h.write_u64(self.record.applied);
    }

    fn offer(&mut self, now: u64, ev: FaultEvent, fired: &mut Vec<FaultEvent>) {
        let (index, allowed) = self.admit();
        if allowed {
            self.record.note(index, now, InjectedFault::Window(ev));
            fired.push(ev);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_is_fully_off() {
        let cfg = FaultConfig::default();
        assert!(!cfg.any_faults());
        assert!(!cfg.is_active());
        cfg.validate().unwrap();
    }

    #[test]
    fn presets_validate_and_are_active() {
        for cfg in [FaultConfig::light(), FaultConfig::heavy()] {
            cfg.validate().unwrap();
            assert!(cfg.any_faults());
            assert!(cfg.is_active());
            assert_eq!(cfg.corrupt_per_10k, 0, "corruption is never a preset");
        }
    }

    #[test]
    fn spec_parsing_round_trips() {
        assert_eq!(
            FaultConfig::from_spec("light").unwrap(),
            FaultConfig::light()
        );
        assert_eq!(
            FaultConfig::from_spec("heavy").unwrap(),
            FaultConfig::heavy()
        );
        let cfg = FaultConfig::from_spec("jitter=5,jmax=9,evict=10,wipe=20,period=64,watchdog=99")
            .unwrap();
        assert_eq!(cfg.jitter_per_10k, 5);
        assert_eq!(cfg.jitter_max, 9);
        assert_eq!(cfg.evict_per_10k, 10);
        assert_eq!(cfg.wipe_per_10k, 20);
        assert_eq!(cfg.period, 64);
        assert_eq!(cfg.watchdog, 99);
        assert!(FaultConfig::from_spec("bogus=1").is_err());
        assert!(FaultConfig::from_spec("jitter").is_err());
        assert!(FaultConfig::from_spec("jitter=x").is_err());
        // corrupt= parses, and to_spec round-trips through from_spec.
        let cfg = FaultConfig::from_spec("corrupt=50,period=128").unwrap();
        assert_eq!(cfg.corrupt_per_10k, 50);
        assert!(cfg.any_faults());
        assert_eq!(FaultConfig::from_spec(&cfg.to_spec()).unwrap(), cfg);
        assert_eq!(
            FaultConfig::from_spec(&FaultConfig::heavy().to_spec()).unwrap(),
            FaultConfig::heavy()
        );
    }

    #[test]
    fn validation_rejects_nonsense() {
        let mut cfg = FaultConfig::light();
        cfg.jitter_per_10k = 20_000;
        assert!(cfg.validate().is_err());
        let mut cfg = FaultConfig::light();
        cfg.period = 0;
        assert!(cfg.validate().is_err());
        let cfg = FaultConfig {
            jitter_per_10k: 1,
            jitter_max: 0,
            ..Default::default()
        };
        assert!(cfg.validate().is_err());
    }

    #[test]
    fn injector_is_deterministic() {
        let draw = || {
            let mut inj = FaultInjector::new(FaultConfig::heavy(), SimRng::new(0xFA11));
            let jitters: Vec<u64> = (0..64).map(|i| inj.jitter(i)).collect();
            let mut faults = Vec::new();
            for t in (0..20_000).step_by(700) {
                faults.extend(inj.poll(t, 8));
            }
            (jitters, faults, inj.record().clone())
        };
        assert_eq!(draw(), draw());
        let (jitters, faults, record) = draw();
        assert!(jitters.iter().any(|&j| j > 0), "heavy preset must jitter");
        assert!(
            jitters
                .iter()
                .all(|&j| j <= FaultConfig::heavy().jitter_max),
            "jitter bounded by jitter_max"
        );
        assert!(!faults.is_empty(), "heavy preset must fire window faults");
        // Unfiltered: every candidate applied, schedule complete.
        assert_eq!(record.candidates, record.applied);
        assert_eq!(record.schedule.len() as u64, record.applied);
    }

    #[test]
    fn disabled_injector_fires_nothing() {
        let mut inj = FaultInjector::new(FaultConfig::default(), SimRng::new(1));
        assert_eq!(inj.jitter(0), 0);
        assert!(inj.poll(1 << 40, 64).is_empty());
        assert_eq!(inj.record().candidates, 0);
    }

    #[test]
    fn filter_canonicalizes_and_gates_in_order() {
        let f = FaultFilter::from_ranges(vec![(5, 3), (8, 10), (0, 2), (2, 4), (9, 12)]);
        assert_eq!(f.ranges(), &[(0, 4), (8, 12)]);
        assert_eq!(f.count(), 8);
        let mut f = f;
        let allowed: Vec<u64> = (0..14).filter(|&i| f.allows(i)).collect();
        assert_eq!(allowed, vec![0, 1, 2, 3, 8, 9, 10, 11]);
        let mut g = FaultFilter::from_indices(&[3, 4, 5, 9]);
        assert_eq!(g.ranges(), &[(3, 6), (9, 10)]);
        assert!(!g.allows(0) && g.allows(3) && g.allows(5) && !g.allows(6) && g.allows(9));
    }

    /// The soundness property the shrinker depends on: a filtered
    /// replay draws the identical candidate stream (same RNG
    /// consumption) and applies exactly the allowed subset, with the
    /// surviving faults unchanged in value and timing.
    #[test]
    fn filtered_replay_preserves_surviving_faults() {
        let run = |filter: Option<FaultFilter>| {
            let mut inj = FaultInjector::new(FaultConfig::heavy(), SimRng::new(0xF11E));
            inj.set_filter(filter);
            let mut jitters = Vec::new();
            let mut events = Vec::new();
            for t in 0..4_000u64 {
                let j = inj.jitter(t);
                if j > 0 {
                    jitters.push((t, j));
                }
                events.extend(inj.poll(t, 8).into_iter().map(|e| (t, e)));
            }
            (jitters, events, inj.record().clone())
        };
        let (_, _, full) = run(None);
        assert!(full.candidates > 8, "need a meaningful schedule");
        // Allow only even candidate indices.
        let evens: Vec<u64> = (0..full.candidates).filter(|i| i % 2 == 0).collect();
        let (_, _, half) = run(Some(FaultFilter::from_indices(&evens)));
        assert_eq!(half.candidates, full.candidates, "draws are unchanged");
        assert_eq!(half.applied, evens.len() as u64);
        // Every surviving entry matches the full run's entry exactly.
        let full_by_index: std::collections::HashMap<u64, (u64, InjectedFault)> =
            full.schedule.iter().map(|&(i, t, f)| (i, (t, f))).collect();
        for &(i, t, f) in &half.schedule {
            assert_eq!(full_by_index[&i], (t, f), "candidate {i} diverged");
        }
        // Empty filter: nothing applied, same draws.
        let (j, e, none) = run(Some(FaultFilter::from_ranges(vec![])));
        assert_eq!(none.candidates, full.candidates);
        assert_eq!(none.applied, 0);
        assert!(j.is_empty() && e.is_empty());
    }

    #[test]
    fn corrupt_draws_only_when_enabled() {
        // With corrupt off, the candidate stream must be identical to
        // the legacy three-draw stream: compare against a config that
        // differs only in corrupt_per_10k and check the shared prefix
        // of per-window legal faults is unchanged.
        let run = |corrupt: u32| {
            let cfg = FaultConfig {
                corrupt_per_10k: corrupt,
                ..FaultConfig::heavy()
            };
            let mut inj = FaultInjector::new(cfg, SimRng::new(42));
            let mut legal = Vec::new();
            let mut corruptions = 0u32;
            for t in 0..60_000u64 {
                for ev in inj.poll(t, 8) {
                    match ev {
                        FaultEvent::CorruptLine { .. } => corruptions += 1,
                        other => legal.push((t, other)),
                    }
                }
            }
            (legal, corruptions)
        };
        let (legal_off, corr_off) = run(0);
        let (legal_on, corr_on) = run(10_000);
        assert_eq!(corr_off, 0);
        assert!(corr_on > 0, "corrupt=10000 must fire");
        // Corruption draws happen after the legal draws in each window,
        // so the legal schedule is NOT byte-identical across the two
        // configs (the extra draws advance the stream between windows)
        // — but with corruption off the stream must match the
        // pre-corruption injector exactly, which the pinned regression
        // below asserts.
        assert!(!legal_off.is_empty() && !legal_on.is_empty());
    }

    /// Pins the exact draw stream of the corruption-free heavy preset.
    /// If this changes, every faulted run in every committed test
    /// changes: treat a failure here as an ABI break, not a test to
    /// update casually.
    #[test]
    fn legacy_heavy_stream_is_pinned() {
        let mut inj = FaultInjector::new(FaultConfig::heavy(), SimRng::new(0xFA11));
        let jitters: Vec<u64> = (0..8).map(|i| inj.jitter(i)).collect();
        let mut expect = FaultInjector::new(FaultConfig::heavy(), SimRng::new(0xFA11));
        // Reproduce with the raw legacy recipe: one rate draw, then a
        // bounded extra draw when it fires.
        let legacy: Vec<u64> = (0..8)
            .map(|_| {
                if expect.rng.range(10_000) < u64::from(expect.cfg.jitter_per_10k) {
                    1 + expect.rng.range(expect.cfg.jitter_max.max(1))
                } else {
                    0
                }
            })
            .collect();
        assert_eq!(jitters, legacy);
    }
}
