//! Deterministic fault injection.
//!
//! The robustness harness perturbs a run with *protocol-legal* events —
//! extra network delay, forced capacity evictions (whose writebacks race
//! with forwarded interventions and provoke NACK storms), and forced
//! reservation invalidations — so every synchronization algorithm can be
//! stress-tested without changing the semantics of its reference stream.
//!
//! Two rules keep runs reproducible and paper artifacts intact:
//!
//! * every fault decision is drawn from a dedicated [`SimRng`] stream
//!   forked off the machine seed with a distinct salt, so workload and
//!   backoff streams never observe the injector;
//! * with [`FaultConfig::default()`] (everything off) the simulator takes
//!   exactly the code paths it takes without this module, so results are
//!   byte-identical to a faults-free build.
//!
//! # Example
//!
//! ```
//! use dsm_sim::{FaultConfig, FaultInjector, SimRng};
//!
//! let cfg = FaultConfig::light();
//! let mut inj = FaultInjector::new(cfg, SimRng::new(7));
//! let extra = inj.jitter(); // deterministic: same seed, same stream
//! assert!(extra <= FaultConfig::light().jitter_max);
//! ```

use crate::ids::NodeId;
use crate::rng::SimRng;

/// Probabilities and windows for deterministic fault injection.
///
/// Rates are expressed per ten thousand (basis points) so the config
/// stays `Eq + Hash` and can live inside `MachineConfig`. The default is
/// everything off: no jitter, no forced evictions, no reservation wipes,
/// paranoid checking disabled, watchdog disabled.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct FaultConfig {
    /// Chance (per 10 000 messages) that a message is delayed extra cycles.
    pub jitter_per_10k: u32,
    /// Maximum extra delay, in cycles, when jitter fires.
    pub jitter_max: u64,
    /// Chance (per 10 000 windows) of forcing a capacity eviction at a
    /// random node. Evicting an exclusive line emits a writeback that
    /// races with in-flight interventions — the protocol's NAK path.
    pub evict_per_10k: u32,
    /// Chance (per 10 000 windows) of wiping all memory-side LL/SC
    /// reservations at a random home node (a forced invalidation storm).
    pub wipe_per_10k: u32,
    /// Cycles between fault windows (eviction/wipe opportunities).
    pub period: u64,
    /// Run the protocol invariant checker after every transition.
    pub paranoid: bool,
    /// Livelock watchdog: fail the run if events keep firing but no
    /// processor retires an operation for this many cycles (0 = off).
    pub watchdog: u64,
}

impl Default for FaultConfig {
    fn default() -> Self {
        FaultConfig {
            jitter_per_10k: 0,
            jitter_max: 0,
            evict_per_10k: 0,
            wipe_per_10k: 0,
            period: 1024,
            paranoid: false,
            watchdog: 0,
        }
    }
}

impl FaultConfig {
    /// A mild preset: occasional jitter, rare evictions and wipes.
    pub fn light() -> Self {
        FaultConfig {
            jitter_per_10k: 300,
            jitter_max: 32,
            evict_per_10k: 2_000,
            wipe_per_10k: 1_000,
            period: 2048,
            ..FaultConfig::default()
        }
    }

    /// An aggressive preset: frequent jitter, evictions and wipes.
    pub fn heavy() -> Self {
        FaultConfig {
            jitter_per_10k: 2_000,
            jitter_max: 128,
            evict_per_10k: 8_000,
            wipe_per_10k: 5_000,
            period: 512,
            ..FaultConfig::default()
        }
    }

    /// True if any fault (jitter, eviction or wipe) can fire.
    pub fn any_faults(&self) -> bool {
        self.jitter_per_10k > 0 || self.evict_per_10k > 0 || self.wipe_per_10k > 0
    }

    /// True if the config changes machine behaviour in any way
    /// (faults, paranoid checking, or the watchdog).
    pub fn is_active(&self) -> bool {
        self.any_faults() || self.paranoid || self.watchdog > 0
    }

    /// Validates internal consistency.
    ///
    /// # Errors
    ///
    /// Returns a description of the first violated constraint, e.g. a
    /// rate above 10 000 or a zero window period with faults enabled.
    pub fn validate(&self) -> Result<(), String> {
        for (name, rate) in [
            ("jitter_per_10k", self.jitter_per_10k),
            ("evict_per_10k", self.evict_per_10k),
            ("wipe_per_10k", self.wipe_per_10k),
        ] {
            if rate > 10_000 {
                return Err(format!("{name} is {rate}, max is 10000"));
            }
        }
        if self.period == 0 && (self.evict_per_10k > 0 || self.wipe_per_10k > 0) {
            return Err("fault period must be positive when window faults are enabled".into());
        }
        if self.jitter_per_10k > 0 && self.jitter_max == 0 {
            return Err("jitter enabled but jitter_max is 0 cycles".into());
        }
        Ok(())
    }

    /// Parses a spec string: a preset name (`light`, `heavy`) or a
    /// comma-separated key list — `jitter=300`, `jmax=32`, `evict=2000`,
    /// `wipe=1000`, `period=2048`, `watchdog=2000000` (rates per 10 000).
    ///
    /// # Errors
    ///
    /// Returns a message naming the unknown key or unparsable value.
    pub fn from_spec(spec: &str) -> Result<Self, String> {
        match spec {
            "" | "light" => return Ok(FaultConfig::light()),
            "heavy" => return Ok(FaultConfig::heavy()),
            _ => {}
        }
        let mut cfg = FaultConfig {
            jitter_max: 32,
            ..FaultConfig::default()
        };
        for part in spec.split(',') {
            let (key, value) = part
                .split_once('=')
                .ok_or_else(|| format!("fault spec item `{part}` is not key=value"))?;
            let v: u64 = value
                .parse()
                .map_err(|_| format!("fault spec value `{value}` for `{key}` is not a number"))?;
            match key {
                "jitter" => cfg.jitter_per_10k = v as u32,
                "jmax" => cfg.jitter_max = v,
                "evict" => cfg.evict_per_10k = v as u32,
                "wipe" => cfg.wipe_per_10k = v as u32,
                "period" => cfg.period = v,
                "watchdog" => cfg.watchdog = v,
                other => {
                    return Err(format!(
                        "unknown fault spec key `{other}` \
                         (try jitter/jmax/evict/wipe/period/watchdog)"
                    ))
                }
            }
        }
        cfg.validate()?;
        Ok(cfg)
    }
}

/// A window fault the injector asks the machine to apply.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FaultEvent {
    /// Force a capacity eviction of one resident line at `node`'s cache.
    EvictLine {
        /// The cache to pressure.
        node: NodeId,
    },
    /// Invalidate every memory-side LL/SC reservation held at `node`.
    WipeReservations {
        /// The home node whose reservation store is wiped.
        node: NodeId,
    },
}

/// Draws fault decisions from a private deterministic stream.
///
/// The injector is a pure function of its config, its seed and the
/// sequence of queries, so identical runs inject identical faults
/// regardless of host parallelism.
#[derive(Debug, Clone)]
pub struct FaultInjector {
    cfg: FaultConfig,
    rng: SimRng,
    next_window: u64,
}

impl FaultInjector {
    /// Creates an injector; `rng` should be forked off the machine seed
    /// with a salt no other component uses.
    pub fn new(cfg: FaultConfig, rng: SimRng) -> Self {
        let first = cfg.period.max(1);
        FaultInjector {
            cfg,
            rng,
            next_window: first,
        }
    }

    /// Extra delay (in cycles) to add to the next message, usually 0.
    pub fn jitter(&mut self) -> u64 {
        if self.cfg.jitter_per_10k == 0 {
            return 0;
        }
        if self.rng.range(10_000) < u64::from(self.cfg.jitter_per_10k) {
            1 + self.rng.range(self.cfg.jitter_max.max(1))
        } else {
            0
        }
    }

    /// Returns the window faults due at simulated time `now`, advancing
    /// the window clock. At most one eviction and one wipe per window.
    pub fn poll(&mut self, now: u64, nodes: u32) -> Vec<FaultEvent> {
        let mut fired = Vec::new();
        if self.cfg.evict_per_10k == 0 && self.cfg.wipe_per_10k == 0 {
            return fired;
        }
        while now >= self.next_window {
            self.next_window += self.cfg.period.max(1);
            if self.rng.range(10_000) < u64::from(self.cfg.evict_per_10k) {
                fired.push(FaultEvent::EvictLine {
                    node: NodeId::new(self.rng.range(u64::from(nodes)) as u32),
                });
            }
            if self.rng.range(10_000) < u64::from(self.cfg.wipe_per_10k) {
                fired.push(FaultEvent::WipeReservations {
                    node: NodeId::new(self.rng.range(u64::from(nodes)) as u32),
                });
            }
        }
        fired
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_is_fully_off() {
        let cfg = FaultConfig::default();
        assert!(!cfg.any_faults());
        assert!(!cfg.is_active());
        cfg.validate().unwrap();
    }

    #[test]
    fn presets_validate_and_are_active() {
        for cfg in [FaultConfig::light(), FaultConfig::heavy()] {
            cfg.validate().unwrap();
            assert!(cfg.any_faults());
            assert!(cfg.is_active());
        }
    }

    #[test]
    fn spec_parsing_round_trips() {
        assert_eq!(
            FaultConfig::from_spec("light").unwrap(),
            FaultConfig::light()
        );
        assert_eq!(
            FaultConfig::from_spec("heavy").unwrap(),
            FaultConfig::heavy()
        );
        let cfg = FaultConfig::from_spec("jitter=5,jmax=9,evict=10,wipe=20,period=64,watchdog=99")
            .unwrap();
        assert_eq!(cfg.jitter_per_10k, 5);
        assert_eq!(cfg.jitter_max, 9);
        assert_eq!(cfg.evict_per_10k, 10);
        assert_eq!(cfg.wipe_per_10k, 20);
        assert_eq!(cfg.period, 64);
        assert_eq!(cfg.watchdog, 99);
        assert!(FaultConfig::from_spec("bogus=1").is_err());
        assert!(FaultConfig::from_spec("jitter").is_err());
        assert!(FaultConfig::from_spec("jitter=x").is_err());
    }

    #[test]
    fn validation_rejects_nonsense() {
        let mut cfg = FaultConfig::light();
        cfg.jitter_per_10k = 20_000;
        assert!(cfg.validate().is_err());
        let mut cfg = FaultConfig::light();
        cfg.period = 0;
        assert!(cfg.validate().is_err());
        let cfg = FaultConfig {
            jitter_per_10k: 1,
            jitter_max: 0,
            ..Default::default()
        };
        assert!(cfg.validate().is_err());
    }

    #[test]
    fn injector_is_deterministic() {
        let draw = || {
            let mut inj = FaultInjector::new(FaultConfig::heavy(), SimRng::new(0xFA11));
            let jitters: Vec<u64> = (0..64).map(|_| inj.jitter()).collect();
            let mut faults = Vec::new();
            for t in (0..20_000).step_by(700) {
                faults.extend(inj.poll(t, 8));
            }
            (jitters, faults)
        };
        assert_eq!(draw(), draw());
        let (jitters, faults) = draw();
        assert!(jitters.iter().any(|&j| j > 0), "heavy preset must jitter");
        assert!(
            jitters
                .iter()
                .all(|&j| j <= FaultConfig::heavy().jitter_max),
            "jitter bounded by jitter_max"
        );
        assert!(!faults.is_empty(), "heavy preset must fire window faults");
    }

    #[test]
    fn disabled_injector_fires_nothing() {
        let mut inj = FaultInjector::new(FaultConfig::default(), SimRng::new(1));
        assert_eq!(inj.jitter(), 0);
        assert!(inj.poll(1 << 40, 64).is_empty());
    }
}
