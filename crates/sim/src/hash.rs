//! A stable, platform-independent 64-bit hasher for deriving simulation
//! seeds from structured keys.
//!
//! The parallel experiment runner gives every simulation job its own
//! [`SimRng`](crate::SimRng) seed derived from the job's *key* (machine
//! configuration, workload parameters, ...). For results to be
//! bitwise-reproducible across thread counts, scheduling orders, runs
//! and platforms, that derivation must not depend on anything but the
//! key's bytes — in particular not on `std::collections::hash_map`'s
//! randomized `DefaultHasher` state or on unstable standard-library
//! hashing internals. [`StableHasher`] is a fixed FNV-1a 64 core with a
//! SplitMix64 finalizer, written out here so its output is part of this
//! crate's contract.

/// A deterministic 64-bit hasher (FNV-1a with a SplitMix64 finalizer).
///
/// Feed a key field-by-field in a canonical order, then call
/// [`finish`](StableHasher::finish):
///
/// ```
/// use dsm_sim::StableHasher;
///
/// let mut h = StableHasher::new();
/// h.write_u64(42);
/// h.write_str("INV CAS");
/// let a = h.finish();
///
/// let mut h2 = StableHasher::new();
/// h2.write_u64(42);
/// h2.write_str("INV CAS");
/// assert_eq!(a, h2.finish()); // same fields, same hash — always
/// ```
#[derive(Debug, Clone)]
pub struct StableHasher {
    state: u64,
}

const FNV_OFFSET: u64 = 0xCBF2_9CE4_8422_2325;
const FNV_PRIME: u64 = 0x0000_0100_0000_01B3;

impl StableHasher {
    /// Creates a hasher in its canonical initial state.
    pub fn new() -> Self {
        StableHasher { state: FNV_OFFSET }
    }

    /// Feeds raw bytes.
    pub fn write_bytes(&mut self, bytes: &[u8]) {
        for &b in bytes {
            self.state ^= b as u64;
            self.state = self.state.wrapping_mul(FNV_PRIME);
        }
    }

    /// Feeds a `u8`.
    pub fn write_u8(&mut self, v: u8) {
        self.write_bytes(&[v]);
    }

    /// Feeds a `u32` (little-endian).
    pub fn write_u32(&mut self, v: u32) {
        self.write_bytes(&v.to_le_bytes());
    }

    /// Feeds a `u64` (little-endian).
    pub fn write_u64(&mut self, v: u64) {
        self.write_bytes(&v.to_le_bytes());
    }

    /// Feeds a `usize` widened to 64 bits, so 32- and 64-bit platforms
    /// hash identically.
    pub fn write_usize(&mut self, v: usize) {
        self.write_u64(v as u64);
    }

    /// Feeds an `f64` by its IEEE-754 bit pattern (length-prefix-free;
    /// use for fixed-arity keys only).
    pub fn write_f64_bits(&mut self, v: f64) {
        self.write_u64(v.to_bits());
    }

    /// Feeds a string, length-prefixed so `("ab", "c")` and
    /// `("a", "bc")` hash differently.
    pub fn write_str(&mut self, s: &str) {
        self.write_u64(s.len() as u64);
        self.write_bytes(s.as_bytes());
    }

    /// One whole-word FNV-style round, used by the [`std::hash::Hasher`]
    /// integer fast paths.
    fn write_u64_fast(&mut self, v: u64) {
        self.state = (self.state ^ v).wrapping_mul(FNV_PRIME);
    }

    /// Returns the hash of everything fed so far.
    ///
    /// FNV-1a mixes low bits weakly, so the state goes through a
    /// SplitMix64-style avalanche before use as an RNG seed.
    pub fn finish(&self) -> u64 {
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }
}

impl Default for StableHasher {
    fn default() -> Self {
        StableHasher::new()
    }
}

impl std::hash::Hasher for StableHasher {
    fn write(&mut self, bytes: &[u8]) {
        self.write_bytes(bytes);
    }

    // Integer fast paths: one full-word xor-multiply round instead of
    // the byte-at-a-time FNV loop. Map keys on the simulator's hot path
    // are single integers (`LineAddr`, sync-location words), so this is
    // the difference between 1 and 8 dependent multiplies per lookup.
    // The result differs from feeding the same integer through
    // `write_bytes` — that only matters to table layout, which has no
    // compatibility contract beyond determinism; seed derivation uses
    // the inherent `write_*` methods and is unaffected. `finish`'s
    // SplitMix64 avalanche supplies the bit diffusion FNV's single
    // round lacks.
    fn write_u8(&mut self, v: u8) {
        self.write_u64_fast(v as u64);
    }

    fn write_u32(&mut self, v: u32) {
        self.write_u64_fast(v as u64);
    }

    fn write_u64(&mut self, v: u64) {
        self.write_u64_fast(v);
    }

    fn write_usize(&mut self, v: usize) {
        self.write_u64_fast(v as u64);
    }

    fn finish(&self) -> u64 {
        StableHasher::finish(self)
    }
}

/// A [`std::hash::BuildHasher`] producing [`StableHasher`]s, for hash
/// maps on the simulation hot path.
///
/// `std::collections::HashMap`'s default `RandomState` re-seeds SipHash
/// per process, which is both slow for the small fixed-width keys the
/// simulator uses (`LineAddr`, `Addr`) and a source of run-to-run
/// iteration-order variation. This builder is deterministic and cheap:
/// same keys, same table layout, every run, every platform.
#[derive(Debug, Clone, Copy, Default)]
pub struct StableBuildHasher;

impl std::hash::BuildHasher for StableBuildHasher {
    type Hasher = StableHasher;

    fn build_hasher(&self) -> StableHasher {
        StableHasher::new()
    }
}

/// A `HashMap` with deterministic, allocation-cheap hashing — the
/// drop-in replacement for `std::collections::HashMap` everywhere the
/// simulator keys on line addresses or words.
pub type StableHashMap<K, V> = std::collections::HashMap<K, V, StableBuildHasher>;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn known_value_is_pinned() {
        // The whole point of this hasher is that its output never
        // changes; pin one value so any accidental algorithm change
        // fails loudly.
        let mut h = StableHasher::new();
        h.write_u64(1);
        h.write_u32(2);
        h.write_str("bar");
        assert_eq!(h.finish(), 0xC51A_C0AE_C5F5_BFE3);
    }

    #[test]
    fn field_order_matters() {
        let mut a = StableHasher::new();
        a.write_u32(1);
        a.write_u32(2);
        let mut b = StableHasher::new();
        b.write_u32(2);
        b.write_u32(1);
        assert_ne!(a.finish(), b.finish());
    }

    #[test]
    fn strings_are_length_prefixed() {
        let mut a = StableHasher::new();
        a.write_str("ab");
        a.write_str("c");
        let mut b = StableHasher::new();
        b.write_str("a");
        b.write_str("bc");
        assert_ne!(a.finish(), b.finish());
    }

    #[test]
    fn f64_bits_distinguish_close_values() {
        let mut a = StableHasher::new();
        a.write_f64_bits(1.0);
        let mut b = StableHasher::new();
        b.write_f64_bits(1.0 + f64::EPSILON);
        assert_ne!(a.finish(), b.finish());
    }

    #[test]
    fn empty_hasher_is_stable() {
        assert_eq!(
            StableHasher::new().finish(),
            StableHasher::default().finish()
        );
    }

    #[test]
    fn std_hasher_adapter_byte_writes_match_direct_use() {
        use std::hash::Hasher;
        let mut direct = StableHasher::new();
        direct.write_bytes(b"abc");
        let mut via_std = StableHasher::new();
        Hasher::write(&mut via_std, b"abc");
        assert_eq!(StableHasher::finish(&direct), Hasher::finish(&via_std));
    }

    #[test]
    fn std_hasher_integer_fast_path_is_deterministic_and_distinct() {
        use std::hash::Hasher;
        let hash_u64 = |v: u64| {
            let mut h = StableHasher::new();
            Hasher::write_u64(&mut h, v);
            Hasher::finish(&h)
        };
        assert_eq!(hash_u64(7), hash_u64(7));
        assert_ne!(hash_u64(7), hash_u64(8));
        // Nearby line addresses (low bits clear) must still spread.
        let a = hash_u64(0x1000);
        let b = hash_u64(0x1040);
        assert_ne!(a, b);
    }

    #[test]
    fn stable_map_layout_is_deterministic() {
        let build = |n: u64| {
            let mut m: StableHashMap<u64, u64> = StableHashMap::default();
            for i in 0..n {
                m.insert(i * 64, i);
            }
            m.into_iter().collect::<Vec<_>>()
        };
        // Same inserts, same iteration order — unlike RandomState.
        assert_eq!(build(100), build(100));
    }

    #[test]
    fn usize_widens() {
        let mut a = StableHasher::new();
        a.write_usize(7);
        let mut b = StableHasher::new();
        b.write_u64(7);
        assert_eq!(a.finish(), b.finish());
    }
}
