//! Strongly-typed identifiers for nodes, processors and memory addresses.
//!
//! The simulated machine has one processor per node, but the two concepts
//! are kept distinct: [`NodeId`] names a location in the mesh (cache
//! controller, memory module, network interface) while [`ProcId`] names a
//! hardware execution context (the owner of an LL/SC reservation, the
//! holder of a lock). Byte addresses ([`Addr`]) and cache-line addresses
//! ([`LineAddr`]) are likewise separate types; converting between them
//! requires the machine's line size and is therefore explicit.

use std::fmt;

/// Identifies one node of the simulated mesh (0-based).
///
/// # Example
///
/// ```
/// use dsm_sim::NodeId;
/// let n = NodeId::new(13);
/// assert_eq!(n.index(), 13);
/// assert_eq!(format!("{n}"), "n13");
/// ```
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct NodeId(u32);

impl NodeId {
    /// Creates a node identifier from a 0-based index.
    #[inline]
    pub const fn new(index: u32) -> Self {
        NodeId(index)
    }

    /// Returns the 0-based index as `usize`, for table lookups.
    #[inline]
    pub const fn index(self) -> usize {
        self.0 as usize
    }

    /// Returns the raw 0-based index.
    #[inline]
    pub const fn as_u32(self) -> u32 {
        self.0
    }
}

impl fmt::Display for NodeId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "n{}", self.0)
    }
}

/// Identifies one simulated processor (0-based).
///
/// In the default configuration there is exactly one processor per node
/// and the indices coincide, but the types are kept distinct so that
/// reservation tables (indexed by processor) cannot be confused with
/// directory sharer vectors (indexed by node).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct ProcId(u32);

impl ProcId {
    /// Creates a processor identifier from a 0-based index.
    #[inline]
    pub const fn new(index: u32) -> Self {
        ProcId(index)
    }

    /// Returns the 0-based index as `usize`, for table lookups.
    #[inline]
    pub const fn index(self) -> usize {
        self.0 as usize
    }

    /// Returns the raw 0-based index.
    #[inline]
    pub const fn as_u32(self) -> u32 {
        self.0
    }

    /// Returns the node hosting this processor (one processor per node).
    #[inline]
    pub const fn node(self) -> NodeId {
        NodeId(self.0)
    }
}

impl fmt::Display for ProcId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "p{}", self.0)
    }
}

/// A byte address in the simulated shared address space.
///
/// # Example
///
/// ```
/// use dsm_sim::Addr;
/// let a = Addr::new(0x1040);
/// assert_eq!(a.line(32).number(), 0x1040 / 32);
/// assert_eq!(a.offset_in_line(32), 0);
/// assert_eq!((a + 8).offset_in_line(32), 8);
/// ```
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Addr(u64);

impl Addr {
    /// Creates an address from a raw byte offset.
    #[inline]
    pub const fn new(addr: u64) -> Self {
        Addr(addr)
    }

    /// Returns the raw byte address.
    #[inline]
    pub const fn as_u64(self) -> u64 {
        self.0
    }

    /// Returns the cache line containing this address.
    ///
    /// # Panics
    ///
    /// Panics if `line_size` is not a power of two.
    #[inline]
    pub fn line(self, line_size: u64) -> LineAddr {
        assert!(
            line_size.is_power_of_two(),
            "line size must be a power of two"
        );
        // `line_size` is a runtime value, so spelling this as `/` would
        // cost a hardware divide on every address-to-line conversion —
        // and this runs several times per simulated memory operation.
        LineAddr(self.0 >> line_size.trailing_zeros())
    }

    /// Returns this address's byte offset within its cache line.
    ///
    /// # Panics
    ///
    /// Panics if `line_size` is not a power of two.
    #[inline]
    pub fn offset_in_line(self, line_size: u64) -> u64 {
        assert!(
            line_size.is_power_of_two(),
            "line size must be a power of two"
        );
        self.0 & (line_size - 1)
    }
}

impl std::ops::Add<u64> for Addr {
    type Output = Addr;
    #[inline]
    fn add(self, rhs: u64) -> Addr {
        Addr(self.0 + rhs)
    }
}

impl fmt::Display for Addr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "0x{:x}", self.0)
    }
}

/// A cache-line number (byte address divided by the line size).
///
/// Directory entries, cache tags and coherence messages all operate at
/// line granularity; this type marks values that have already been
/// shifted down.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct LineAddr(u64);

impl LineAddr {
    /// Creates a line address from a raw line number.
    #[inline]
    pub const fn new(line_number: u64) -> Self {
        LineAddr(line_number)
    }

    /// Returns the raw line number.
    #[inline]
    pub const fn number(self) -> u64 {
        self.0
    }

    /// Returns the byte address of the first byte of this line.
    #[inline]
    pub const fn base(self, line_size: u64) -> Addr {
        Addr(self.0 * line_size)
    }

    /// Returns the home node of this line under round-robin interleaving
    /// across `nodes` memory modules.
    ///
    /// # Panics
    ///
    /// Panics if `nodes` is zero.
    #[inline]
    pub fn home(self, nodes: u32) -> NodeId {
        assert!(nodes > 0, "a machine must have at least one node");
        NodeId((self.0 % nodes as u64) as u32)
    }
}

impl fmt::Display for LineAddr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "L{:#x}", self.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn node_and_proc_ids_round_trip() {
        let n = NodeId::new(7);
        assert_eq!(n.index(), 7);
        assert_eq!(n.as_u32(), 7);
        let p = ProcId::new(7);
        assert_eq!(p.node(), n);
        assert_eq!(format!("{p}"), "p7");
    }

    #[test]
    fn addr_line_math() {
        let a = Addr::new(100);
        assert_eq!(a.line(32), LineAddr::new(3));
        assert_eq!(a.offset_in_line(32), 4);
        assert_eq!(LineAddr::new(3).base(32), Addr::new(96));
    }

    #[test]
    fn homes_interleave_round_robin() {
        for n in 0..256u64 {
            assert_eq!(LineAddr::new(n).home(64).index(), (n % 64) as usize);
        }
    }

    #[test]
    #[should_panic(expected = "power of two")]
    fn non_power_of_two_line_size_rejected() {
        let _ = Addr::new(0).line(24);
    }

    #[test]
    fn display_formats() {
        assert_eq!(format!("{}", Addr::new(0x20)), "0x20");
        assert_eq!(format!("{}", LineAddr::new(2)), "L0x2");
        assert_eq!(format!("{}", NodeId::new(2)), "n2");
    }
}
