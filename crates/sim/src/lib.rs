//! Discrete-event simulation kernel for the `atomic-dsm` workspace.
//!
//! This crate provides the foundation every other crate in the workspace
//! builds on:
//!
//! * strongly-typed identifiers ([`NodeId`], [`ProcId`], [`Addr`],
//!   [`LineAddr`]) so that node numbers, processor numbers and byte
//!   addresses can never be confused ([`ids`]);
//! * a simulated clock measured in [`Cycle`]s ([`time`]);
//! * a deterministic event queue with stable tie-breaking ([`event`]);
//! * the latency/size parameter sets that describe the simulated machine
//!   ([`config`]);
//! * a small, self-contained deterministic random-number generator
//!   ([`rng`]).
//!
//! The simulated machine follows the HPCA '95 paper "Implementation of
//! Atomic Primitives on Distributed Shared Memory Multiprocessors"
//! (Michael & Scott): a 64-node distributed-shared-memory multiprocessor
//! with directory-based caches, 32-byte blocks, queued memory and a 2-D
//! wormhole mesh network.
//!
//! # Example
//!
//! ```
//! use dsm_sim::{Cycle, EventQueue};
//!
//! let mut q: EventQueue<&'static str> = EventQueue::new();
//! q.push(Cycle::new(10), "later");
//! q.push(Cycle::new(5), "sooner");
//! q.push(Cycle::new(5), "sooner-but-second");
//!
//! let (t, e) = q.pop().unwrap();
//! assert_eq!((t, e), (Cycle::new(5), "sooner"));
//! // Ties are broken by insertion order, deterministically.
//! assert_eq!(q.pop().unwrap().1, "sooner-but-second");
//! assert_eq!(q.pop().unwrap().1, "later");
//! ```

#![deny(missing_docs)]

pub mod config;
pub mod event;
pub mod fault;
pub mod hash;
pub mod ids;
pub mod rng;
pub mod snapshot;
pub mod time;

pub use config::{CacheParams, MachineConfig, ProtoSpec, ProtoVariant, SimParams};
pub use event::EventQueue;
pub use fault::{FaultConfig, FaultEvent, FaultFilter, FaultInjector, FaultRecord, InjectedFault};
pub use hash::{StableBuildHasher, StableHashMap, StableHasher};
pub use ids::{Addr, LineAddr, NodeId, ProcId};
pub use rng::SimRng;
pub use snapshot::{ByteReader, ByteWriter, PayloadKind, SnapshotError};
pub use time::Cycle;
