//! A small deterministic pseudo-random number generator.
//!
//! The simulator needs randomness for exponential-backoff jitter and for
//! workload generation, and needs every run to be exactly reproducible
//! from a single `u64` seed regardless of platform or library version.
//! We therefore carry our own tiny generator (xoshiro256**, seeded via
//! SplitMix64) rather than depending on an external crate whose stream
//! could change between releases.

/// A deterministic PRNG (xoshiro256\*\*) seeded from a single `u64`.
///
/// Not cryptographically secure; intended only for simulation jitter and
/// synthetic workload generation.
///
/// # Example
///
/// ```
/// use dsm_sim::SimRng;
///
/// let mut a = SimRng::new(42);
/// let mut b = SimRng::new(42);
/// assert_eq!(a.next_u64(), b.next_u64()); // same seed, same stream
/// let r = a.range(10);
/// assert!(r < 10);
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SimRng {
    s: [u64; 4],
}

impl SimRng {
    /// Creates a generator from a seed. Any seed (including 0) is valid.
    pub fn new(seed: u64) -> Self {
        // SplitMix64 expansion of the seed into the 256-bit state, as
        // recommended by the xoshiro authors.
        let mut sm = seed;
        let mut next = || {
            sm = sm.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = sm;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        };
        SimRng {
            s: [next(), next(), next(), next()],
        }
    }

    /// Returns the next 64 random bits.
    pub fn next_u64(&mut self) -> u64 {
        let result = self.s[1].wrapping_mul(5).rotate_left(7).wrapping_mul(9);
        let t = self.s[1] << 17;
        self.s[2] ^= self.s[0];
        self.s[3] ^= self.s[1];
        self.s[1] ^= self.s[2];
        self.s[0] ^= self.s[3];
        self.s[2] ^= t;
        self.s[3] = self.s[3].rotate_left(45);
        result
    }

    /// Returns a uniform value in `0..bound`.
    ///
    /// # Panics
    ///
    /// Panics if `bound` is zero.
    pub fn range(&mut self, bound: u64) -> u64 {
        assert!(bound > 0, "range bound must be positive");
        // Lemire's multiply-shift rejection method for unbiased bounded
        // integers.
        loop {
            let x = self.next_u64();
            let m = (x as u128).wrapping_mul(bound as u128);
            let low = m as u64;
            if low >= bound || low >= (u64::MAX - bound + 1) % bound {
                return (m >> 64) as u64;
            }
        }
    }

    /// Returns a uniform `f64` in `[0, 1)`.
    pub fn f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Returns `true` with probability `p` (clamped to `[0, 1]`).
    pub fn chance(&mut self, p: f64) -> bool {
        self.f64() < p
    }

    /// Fisher–Yates shuffles a slice in place.
    pub fn shuffle<T>(&mut self, slice: &mut [T]) {
        for i in (1..slice.len()).rev() {
            let j = self.range(i as u64 + 1) as usize;
            slice.swap(i, j);
        }
    }

    /// Returns the generator's full internal state (the four xoshiro
    /// words). Two generators with equal state produce identical
    /// streams forever — this is what state digests and checkpoint
    /// verification hash.
    pub fn state(&self) -> [u64; 4] {
        self.s
    }

    /// Derives an independent generator for a child component.
    ///
    /// Streams derived with distinct `salt` values are statistically
    /// independent of each other and of the parent.
    pub fn fork(&mut self, salt: u64) -> SimRng {
        SimRng::new(self.next_u64() ^ salt.wrapping_mul(0x9E37_79B9_7F4A_7C15))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_for_same_seed() {
        let mut a = SimRng::new(7);
        let mut b = SimRng::new(7);
        for _ in 0..1000 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn different_seeds_diverge() {
        let mut a = SimRng::new(1);
        let mut b = SimRng::new(2);
        let same = (0..64).filter(|_| a.next_u64() == b.next_u64()).count();
        assert_eq!(same, 0);
    }

    #[test]
    fn range_is_in_bounds_and_covers() {
        let mut rng = SimRng::new(99);
        let mut seen = [false; 10];
        for _ in 0..1000 {
            let v = rng.range(10);
            assert!(v < 10);
            seen[v as usize] = true;
        }
        assert!(
            seen.iter().all(|&s| s),
            "all buckets should be hit in 1000 draws"
        );
    }

    #[test]
    fn f64_in_unit_interval() {
        let mut rng = SimRng::new(5);
        for _ in 0..1000 {
            let v = rng.f64();
            assert!((0.0..1.0).contains(&v));
        }
    }

    #[test]
    fn chance_extremes() {
        let mut rng = SimRng::new(5);
        assert!(!rng.chance(0.0));
        assert!(rng.chance(1.1));
    }

    #[test]
    fn shuffle_is_permutation() {
        let mut rng = SimRng::new(3);
        let mut v: Vec<u32> = (0..32).collect();
        rng.shuffle(&mut v);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..32).collect::<Vec<_>>());
        assert_ne!(
            v, sorted,
            "a 32-element shuffle should almost surely move something"
        );
    }

    #[test]
    fn forked_streams_differ_from_parent() {
        let mut parent = SimRng::new(11);
        let mut c1 = parent.fork(1);
        let mut c2 = parent.fork(2);
        assert_ne!(c1.next_u64(), c2.next_u64());
    }

    #[test]
    fn zero_seed_is_usable() {
        let mut rng = SimRng::new(0);
        // xoshiro with an all-zero state would be stuck at zero; SplitMix
        // seeding must avoid that.
        assert!((0..16).any(|_| rng.next_u64() != 0));
    }
}
