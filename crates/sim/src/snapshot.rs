//! Versioned, checksummed on-disk containers for simulator artifacts.
//!
//! Checkpoints, persistent result-cache entries and fault reproducers
//! all share one container format so every consumer gets the same
//! guarantees:
//!
//! * **Versioning** — an 8-byte magic plus a format version and a
//!   payload-kind tag, so a reader can reject foreign files, files from
//!   a different format revision, and payloads of the wrong kind with a
//!   typed error instead of misparsing them.
//! * **Integrity** — a trailing [`StableHasher`] checksum over the
//!   header and payload. Torn writes (power loss, `kill -9` mid-write)
//!   and bit flips surface as [`SnapshotError::Checksum`] or
//!   [`SnapshotError::Truncated`], never as garbage data.
//! * **Atomicity** — [`write_atomic`] writes to a temporary file in the
//!   target directory and `rename`s it into place, so concurrent
//!   readers only ever observe either the old bytes or the new bytes.
//!
//! Payloads are encoded with the explicit little-endian [`ByteWriter`]/
//! [`ByteReader`] pair rather than any derive-based serializer: the
//! byte layout is part of the on-disk format contract and must never
//! change silently with a library upgrade.

use crate::hash::StableHasher;
use std::io::{Read, Write};
use std::path::{Path, PathBuf};

/// The container magic: identifies a file as a dsm snapshot container.
pub const MAGIC: [u8; 8] = *b"DSMSNAP\0";

/// The current container format version. Bump on any layout change;
/// readers reject other versions with [`SnapshotError::BadVersion`].
///
/// Version history: v1 = initial container; v2 = cache-entry payloads
/// carry a per-job latency histogram and the standalone `Histogram`
/// payload kind exists; v3 = job encodings carry the protocol-variant
/// fields (proto, clusters, cluster penalty, home atomics). Old entries
/// surface as `BadVersion`, get quarantined by their consumers, and are
/// regenerated deterministically.
pub const FORMAT_VERSION: u32 = 3;

/// What a container's payload encodes. Stored in the header so a
/// checkpoint can never be misread as a cache entry or vice versa.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PayloadKind {
    /// A machine checkpoint: job binding + replay coordinates + digest.
    Checkpoint,
    /// A persistent result-cache entry: job key + encoded result.
    CacheEntry,
    /// A minimized fault-schedule reproducer.
    Reproducer,
    /// A standalone log-bucketed latency histogram (`dsm-stats`).
    Histogram,
}

impl PayloadKind {
    fn tag(self) -> u32 {
        match self {
            PayloadKind::Checkpoint => 1,
            PayloadKind::CacheEntry => 2,
            PayloadKind::Reproducer => 3,
            PayloadKind::Histogram => 4,
        }
    }

    fn from_tag(tag: u32) -> Option<Self> {
        match tag {
            1 => Some(PayloadKind::Checkpoint),
            2 => Some(PayloadKind::CacheEntry),
            3 => Some(PayloadKind::Reproducer),
            4 => Some(PayloadKind::Histogram),
            _ => None,
        }
    }

    /// A short human-readable name (used in error messages).
    pub fn label(self) -> &'static str {
        match self {
            PayloadKind::Checkpoint => "checkpoint",
            PayloadKind::CacheEntry => "cache entry",
            PayloadKind::Reproducer => "reproducer",
            PayloadKind::Histogram => "latency histogram",
        }
    }
}

/// Why a container could not be read (or a payload decoded).
///
/// Every variant is a *recoverable* condition: callers quarantine or
/// regenerate the artifact instead of panicking.
#[derive(Debug)]
pub enum SnapshotError {
    /// The underlying filesystem operation failed.
    Io(std::io::Error),
    /// The file does not start with the container magic.
    BadMagic,
    /// The container was written by a different format revision.
    BadVersion {
        /// Version found in the file.
        found: u32,
        /// Version this reader understands.
        expected: u32,
    },
    /// The payload-kind tag does not match what the caller asked for.
    BadKind {
        /// Kind tag found in the file (raw, possibly unknown).
        found: u32,
        /// The kind the caller expected.
        expected: PayloadKind,
    },
    /// The file ends before the declared payload + checksum (torn write).
    Truncated,
    /// The trailing checksum does not match the stored bytes (bit rot
    /// or a torn overwrite).
    Checksum {
        /// Checksum stored in the file.
        stored: u64,
        /// Checksum computed from the file's bytes.
        computed: u64,
    },
    /// The payload decoded to something structurally invalid.
    Malformed(String),
}

impl std::fmt::Display for SnapshotError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SnapshotError::Io(e) => write!(f, "i/o error: {e}"),
            SnapshotError::BadMagic => write!(f, "not a dsm snapshot container (bad magic)"),
            SnapshotError::BadVersion { found, expected } => {
                write!(
                    f,
                    "container format version {found}, reader expects {expected}"
                )
            }
            SnapshotError::BadKind { found, expected } => {
                write!(
                    f,
                    "container holds payload kind {found}, expected a {}",
                    expected.label()
                )
            }
            SnapshotError::Truncated => write!(f, "container is truncated (torn write?)"),
            SnapshotError::Checksum { stored, computed } => write!(
                f,
                "checksum mismatch: stored {stored:#018x}, computed {computed:#018x}"
            ),
            SnapshotError::Malformed(what) => write!(f, "malformed payload: {what}"),
        }
    }
}

impl std::error::Error for SnapshotError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            SnapshotError::Io(e) => Some(e),
            _ => None,
        }
    }
}

impl From<std::io::Error> for SnapshotError {
    fn from(e: std::io::Error) -> Self {
        SnapshotError::Io(e)
    }
}

fn checksum(version: u32, kind_tag: u32, payload: &[u8]) -> u64 {
    let mut h = StableHasher::new();
    h.write_str("dsm-snapshot-container");
    h.write_u32(version);
    h.write_u32(kind_tag);
    h.write_bytes(payload);
    h.finish()
}

/// Serializes a container to bytes (magic, version, kind, length,
/// payload, checksum — all integers little-endian).
pub fn to_bytes(kind: PayloadKind, payload: &[u8]) -> Vec<u8> {
    let mut out = Vec::with_capacity(payload.len() + 32);
    out.extend_from_slice(&MAGIC);
    out.extend_from_slice(&FORMAT_VERSION.to_le_bytes());
    out.extend_from_slice(&kind.tag().to_le_bytes());
    out.extend_from_slice(&(payload.len() as u64).to_le_bytes());
    out.extend_from_slice(payload);
    out.extend_from_slice(&checksum(FORMAT_VERSION, kind.tag(), payload).to_le_bytes());
    out
}

/// Parses and verifies a container, returning the payload bytes.
///
/// # Errors
///
/// Returns the first integrity violation found: bad magic, foreign
/// version, wrong payload kind, truncation, or checksum mismatch.
pub fn from_bytes(bytes: &[u8], kind: PayloadKind) -> Result<Vec<u8>, SnapshotError> {
    let take = |at: usize, n: usize| -> Result<&[u8], SnapshotError> {
        bytes.get(at..at + n).ok_or(SnapshotError::Truncated)
    };
    if bytes.len() < MAGIC.len() {
        return Err(SnapshotError::Truncated);
    }
    if bytes[..MAGIC.len()] != MAGIC {
        return Err(SnapshotError::BadMagic);
    }
    let u32_at = |at: usize| -> Result<u32, SnapshotError> {
        Ok(u32::from_le_bytes(
            take(at, 4)?.try_into().expect("4 bytes"),
        ))
    };
    let version = u32_at(8)?;
    if version != FORMAT_VERSION {
        return Err(SnapshotError::BadVersion {
            found: version,
            expected: FORMAT_VERSION,
        });
    }
    let kind_tag = u32_at(12)?;
    if PayloadKind::from_tag(kind_tag) != Some(kind) {
        return Err(SnapshotError::BadKind {
            found: kind_tag,
            expected: kind,
        });
    }
    let len = u64::from_le_bytes(take(16, 8)?.try_into().expect("8 bytes")) as usize;
    let payload = take(24, len)?;
    let stored = u64::from_le_bytes(take(24 + len, 8)?.try_into().expect("8 bytes"));
    // Trailing garbage after the checksum also fails verification: the
    // file is not the container that was written.
    if bytes.len() != 24 + len + 8 {
        return Err(SnapshotError::Malformed(format!(
            "{} trailing bytes after checksum",
            bytes.len() - (24 + len + 8)
        )));
    }
    let computed = checksum(version, kind_tag, payload);
    if stored != computed {
        return Err(SnapshotError::Checksum { stored, computed });
    }
    Ok(payload.to_vec())
}

/// Writes a container to `path` atomically: the bytes go to a
/// temporary file in the same directory, which is then renamed into
/// place, so a reader never observes a half-written container under
/// the final name (the rename is atomic on POSIX filesystems).
///
/// # Errors
///
/// Returns any underlying filesystem error (the temporary file is
/// removed on failure).
pub fn write_atomic(path: &Path, kind: PayloadKind, payload: &[u8]) -> Result<(), SnapshotError> {
    let dir = path.parent().filter(|p| !p.as_os_str().is_empty());
    if let Some(dir) = dir {
        std::fs::create_dir_all(dir)?;
    }
    let mut tmp = path.as_os_str().to_owned();
    tmp.push(format!(".tmp{}", std::process::id()));
    let tmp = PathBuf::from(tmp);
    let result = (|| {
        let mut f = std::fs::File::create(&tmp)?;
        f.write_all(&to_bytes(kind, payload))?;
        f.sync_all()?;
        std::fs::rename(&tmp, path)?;
        Ok(())
    })();
    if result.is_err() {
        let _ = std::fs::remove_file(&tmp);
    }
    result
}

/// Reads and verifies a container from `path`, returning the payload.
///
/// # Errors
///
/// Returns [`SnapshotError::Io`] if the file cannot be read, otherwise
/// any integrity violation from [`from_bytes`].
pub fn read(path: &Path, kind: PayloadKind) -> Result<Vec<u8>, SnapshotError> {
    let mut bytes = Vec::new();
    std::fs::File::open(path)?.read_to_end(&mut bytes)?;
    from_bytes(&bytes, kind)
}

/// Moves a corrupt or unreadable artifact into a `quarantined/`
/// subdirectory next to it (creating the directory if needed), so the
/// bad bytes stay available for diagnosis but are never read again.
/// Returns the quarantined path.
///
/// # Errors
///
/// Returns any underlying filesystem error.
pub fn quarantine(path: &Path) -> Result<PathBuf, std::io::Error> {
    let dir = path
        .parent()
        .filter(|p| !p.as_os_str().is_empty())
        .map_or_else(|| PathBuf::from("quarantined"), |p| p.join("quarantined"));
    std::fs::create_dir_all(&dir)?;
    let name = path
        .file_name()
        .ok_or_else(|| std::io::Error::other("quarantine target has no file name"))?;
    let mut dest = dir.join(name);
    // Keep every generation of bad bytes: disambiguate on collision.
    let mut n = 0u32;
    while dest.exists() {
        n += 1;
        let mut with_n = name.to_owned();
        with_n.push(format!(".{n}"));
        dest = dir.join(with_n);
    }
    std::fs::rename(path, &dest)?;
    Ok(dest)
}

/// An explicit little-endian payload encoder.
///
/// The encoding is part of the on-disk format: every integer is
/// little-endian, floats are IEEE-754 bit patterns, strings and byte
/// blobs are length-prefixed. [`ByteReader`] is the exact inverse.
#[derive(Debug, Default)]
pub struct ByteWriter {
    buf: Vec<u8>,
}

impl ByteWriter {
    /// Creates an empty writer.
    pub fn new() -> Self {
        ByteWriter::default()
    }

    /// Consumes the writer, returning the encoded payload.
    pub fn into_bytes(self) -> Vec<u8> {
        self.buf
    }

    /// Appends one byte.
    pub fn put_u8(&mut self, v: u8) {
        self.buf.push(v);
    }

    /// Appends a `bool` as one byte (0 or 1).
    pub fn put_bool(&mut self, v: bool) {
        self.buf.push(u8::from(v));
    }

    /// Appends a `u32`, little-endian.
    pub fn put_u32(&mut self, v: u32) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Appends a `u64`, little-endian.
    pub fn put_u64(&mut self, v: u64) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Appends an `f64` as its IEEE-754 bit pattern (round-trips
    /// exactly, including NaN payloads).
    pub fn put_f64(&mut self, v: f64) {
        self.put_u64(v.to_bits());
    }

    /// Appends a length-prefixed UTF-8 string.
    pub fn put_str(&mut self, s: &str) {
        self.put_u64(s.len() as u64);
        self.buf.extend_from_slice(s.as_bytes());
    }

    /// Appends a length-prefixed byte blob.
    pub fn put_bytes(&mut self, b: &[u8]) {
        self.put_u64(b.len() as u64);
        self.buf.extend_from_slice(b);
    }
}

/// The decoding counterpart of [`ByteWriter`].
///
/// Every accessor returns a typed [`SnapshotError`] on underrun or
/// invalid data instead of panicking, so torn or corrupted payloads
/// are recoverable conditions for the caller.
#[derive(Debug)]
pub struct ByteReader<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> ByteReader<'a> {
    /// Wraps a payload for decoding.
    pub fn new(buf: &'a [u8]) -> Self {
        ByteReader { buf, pos: 0 }
    }

    fn take(&mut self, n: usize) -> Result<&'a [u8], SnapshotError> {
        let slice = self
            .buf
            .get(self.pos..self.pos + n)
            .ok_or(SnapshotError::Truncated)?;
        self.pos += n;
        Ok(slice)
    }

    /// Reads one byte.
    ///
    /// # Errors
    ///
    /// Returns [`SnapshotError::Truncated`] on underrun.
    pub fn take_u8(&mut self) -> Result<u8, SnapshotError> {
        Ok(self.take(1)?[0])
    }

    /// Reads a `bool` (one byte; anything but 0/1 is malformed).
    ///
    /// # Errors
    ///
    /// Returns [`SnapshotError::Truncated`] on underrun or
    /// [`SnapshotError::Malformed`] on an out-of-range byte.
    pub fn take_bool(&mut self) -> Result<bool, SnapshotError> {
        match self.take_u8()? {
            0 => Ok(false),
            1 => Ok(true),
            other => Err(SnapshotError::Malformed(format!(
                "bool byte is {other}, expected 0 or 1"
            ))),
        }
    }

    /// Reads a little-endian `u32`.
    ///
    /// # Errors
    ///
    /// Returns [`SnapshotError::Truncated`] on underrun.
    pub fn take_u32(&mut self) -> Result<u32, SnapshotError> {
        Ok(u32::from_le_bytes(self.take(4)?.try_into().expect("4 b")))
    }

    /// Reads a little-endian `u64`.
    ///
    /// # Errors
    ///
    /// Returns [`SnapshotError::Truncated`] on underrun.
    pub fn take_u64(&mut self) -> Result<u64, SnapshotError> {
        Ok(u64::from_le_bytes(self.take(8)?.try_into().expect("8 b")))
    }

    /// Reads an `f64` from its IEEE-754 bit pattern.
    ///
    /// # Errors
    ///
    /// Returns [`SnapshotError::Truncated`] on underrun.
    pub fn take_f64(&mut self) -> Result<f64, SnapshotError> {
        Ok(f64::from_bits(self.take_u64()?))
    }

    /// Reads a length-prefixed UTF-8 string.
    ///
    /// # Errors
    ///
    /// Returns [`SnapshotError::Truncated`] on underrun or
    /// [`SnapshotError::Malformed`] on invalid UTF-8.
    pub fn take_str(&mut self) -> Result<String, SnapshotError> {
        let len = self.take_u64()? as usize;
        let bytes = self.take(len)?;
        String::from_utf8(bytes.to_vec())
            .map_err(|_| SnapshotError::Malformed("string is not valid UTF-8".into()))
    }

    /// Reads a length-prefixed byte blob.
    ///
    /// # Errors
    ///
    /// Returns [`SnapshotError::Truncated`] on underrun.
    pub fn take_bytes(&mut self) -> Result<Vec<u8>, SnapshotError> {
        let len = self.take_u64()? as usize;
        Ok(self.take(len)?.to_vec())
    }

    /// Number of bytes not yet consumed.
    pub fn remaining(&self) -> usize {
        self.buf.len() - self.pos
    }

    /// Asserts the payload was consumed exactly.
    ///
    /// # Errors
    ///
    /// Returns [`SnapshotError::Malformed`] if bytes remain — a decoder
    /// that stops early has misparsed the payload.
    pub fn finish(self) -> Result<(), SnapshotError> {
        if self.remaining() == 0 {
            Ok(())
        } else {
            Err(SnapshotError::Malformed(format!(
                "{} undecoded trailing bytes",
                self.remaining()
            )))
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn wire_codec_round_trips() {
        let mut w = ByteWriter::new();
        w.put_u8(7);
        w.put_bool(true);
        w.put_u32(0xDEAD_BEEF);
        w.put_u64(u64::MAX - 3);
        w.put_f64(-0.125);
        w.put_str("hello, 世界");
        w.put_bytes(&[1, 2, 3]);
        let bytes = w.into_bytes();
        let mut r = ByteReader::new(&bytes);
        assert_eq!(r.take_u8().unwrap(), 7);
        assert!(r.take_bool().unwrap());
        assert_eq!(r.take_u32().unwrap(), 0xDEAD_BEEF);
        assert_eq!(r.take_u64().unwrap(), u64::MAX - 3);
        assert_eq!(r.take_f64().unwrap().to_bits(), (-0.125f64).to_bits());
        assert_eq!(r.take_str().unwrap(), "hello, 世界");
        assert_eq!(r.take_bytes().unwrap(), vec![1, 2, 3]);
        r.finish().unwrap();
    }

    #[test]
    fn reader_underrun_is_typed_not_a_panic() {
        let mut r = ByteReader::new(&[1, 2]);
        assert!(matches!(r.take_u64(), Err(SnapshotError::Truncated)));
        let mut r = ByteReader::new(&[9]);
        assert!(matches!(r.take_bool(), Err(SnapshotError::Malformed(_))));
    }

    #[test]
    fn container_round_trips() {
        let payload = b"the payload".to_vec();
        let bytes = to_bytes(PayloadKind::CacheEntry, &payload);
        assert_eq!(
            from_bytes(&bytes, PayloadKind::CacheEntry).unwrap(),
            payload
        );
    }

    #[test]
    fn container_rejects_wrong_kind_version_magic() {
        let bytes = to_bytes(PayloadKind::Checkpoint, b"x");
        assert!(matches!(
            from_bytes(&bytes, PayloadKind::Reproducer),
            Err(SnapshotError::BadKind { found: 1, .. })
        ));
        let mut skewed = bytes.clone();
        skewed[8] = 0xFF; // version field
        assert!(matches!(
            from_bytes(&skewed, PayloadKind::Checkpoint),
            Err(SnapshotError::BadVersion { found, expected })
                if found != expected
        ));
        let mut alien = bytes.clone();
        alien[0] = b'X';
        assert!(matches!(
            from_bytes(&alien, PayloadKind::Checkpoint),
            Err(SnapshotError::BadMagic)
        ));
    }

    #[test]
    fn container_detects_truncation_and_bitflips() {
        let bytes = to_bytes(PayloadKind::CacheEntry, b"some payload bytes");
        for cut in [bytes.len() - 1, bytes.len() - 9, 20, 5] {
            assert!(
                matches!(
                    from_bytes(&bytes[..cut], PayloadKind::CacheEntry),
                    Err(SnapshotError::Truncated)
                ),
                "cut at {cut}"
            );
        }
        // Flip one payload bit: checksum must catch it.
        let mut flipped = bytes.clone();
        flipped[26] ^= 0x40;
        assert!(matches!(
            from_bytes(&flipped, PayloadKind::CacheEntry),
            Err(SnapshotError::Checksum { .. })
        ));
        // Flip one checksum bit: ditto.
        let mut flipped = bytes.clone();
        let last = flipped.len() - 1;
        flipped[last] ^= 1;
        assert!(matches!(
            from_bytes(&flipped, PayloadKind::CacheEntry),
            Err(SnapshotError::Checksum { .. })
        ));
    }

    #[test]
    fn atomic_write_read_and_quarantine() {
        let dir = std::env::temp_dir().join(format!("dsm-snap-test-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let path = dir.join("entry.job");
        write_atomic(&path, PayloadKind::CacheEntry, b"payload").unwrap();
        assert_eq!(read(&path, PayloadKind::CacheEntry).unwrap(), b"payload");
        // No temp droppings left behind.
        let names: Vec<_> = std::fs::read_dir(&dir)
            .unwrap()
            .map(|e| e.unwrap().file_name())
            .collect();
        assert_eq!(names.len(), 1, "{names:?}");
        let q1 = quarantine(&path).unwrap();
        assert!(q1.exists() && !path.exists());
        // Second quarantine of the same name does not clobber the first.
        write_atomic(&path, PayloadKind::CacheEntry, b"payload2").unwrap();
        let q2 = quarantine(&path).unwrap();
        assert!(q2.exists() && q1.exists() && q1 != q2);
        let _ = std::fs::remove_dir_all(&dir);
    }
}
