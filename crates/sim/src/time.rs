//! Simulated time, measured in processor clock cycles.

use std::fmt;
use std::iter::Sum;
use std::ops::{Add, AddAssign, Sub, SubAssign};

/// A point in simulated time (or a duration), measured in clock cycles.
///
/// `Cycle` is a transparent wrapper around `u64` that prevents cycle
/// counts from being mixed up with other integer quantities (addresses,
/// counts, node numbers). Arithmetic saturates on subtraction is *not*
/// provided; subtracting a later time from an earlier one panics in debug
/// builds exactly as `u64` subtraction does, which catches scheduling
/// bugs early.
///
/// # Example
///
/// ```
/// use dsm_sim::Cycle;
///
/// let start = Cycle::new(100);
/// let latency = Cycle::new(20);
/// assert_eq!(start + latency, Cycle::new(120));
/// assert_eq!((start + latency) - start, latency);
/// assert_eq!(Cycle::ZERO.as_u64(), 0);
/// ```
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Cycle(u64);

impl Cycle {
    /// Time zero / the zero duration.
    pub const ZERO: Cycle = Cycle(0);

    /// The largest representable time; useful as an "infinite" sentinel.
    pub const MAX: Cycle = Cycle(u64::MAX);

    /// Creates a cycle count from a raw `u64`.
    #[inline]
    pub const fn new(cycles: u64) -> Self {
        Cycle(cycles)
    }

    /// Returns the raw cycle count.
    #[inline]
    pub const fn as_u64(self) -> u64 {
        self.0
    }

    /// Returns the later of two times.
    #[inline]
    pub fn max(self, other: Cycle) -> Cycle {
        Cycle(self.0.max(other.0))
    }

    /// Returns the earlier of two times.
    #[inline]
    pub fn min(self, other: Cycle) -> Cycle {
        Cycle(self.0.min(other.0))
    }

    /// Returns `self - other`, or [`Cycle::ZERO`] if `other` is later.
    #[inline]
    pub fn saturating_sub(self, other: Cycle) -> Cycle {
        Cycle(self.0.saturating_sub(other.0))
    }
}

impl Add for Cycle {
    type Output = Cycle;
    #[inline]
    fn add(self, rhs: Cycle) -> Cycle {
        Cycle(self.0 + rhs.0)
    }
}

impl Add<u64> for Cycle {
    type Output = Cycle;
    #[inline]
    fn add(self, rhs: u64) -> Cycle {
        Cycle(self.0 + rhs)
    }
}

impl AddAssign for Cycle {
    #[inline]
    fn add_assign(&mut self, rhs: Cycle) {
        self.0 += rhs.0;
    }
}

impl AddAssign<u64> for Cycle {
    #[inline]
    fn add_assign(&mut self, rhs: u64) {
        self.0 += rhs;
    }
}

impl Sub for Cycle {
    type Output = Cycle;
    #[inline]
    fn sub(self, rhs: Cycle) -> Cycle {
        Cycle(self.0 - rhs.0)
    }
}

impl SubAssign for Cycle {
    #[inline]
    fn sub_assign(&mut self, rhs: Cycle) {
        self.0 -= rhs.0;
    }
}

impl Sum for Cycle {
    fn sum<I: Iterator<Item = Cycle>>(iter: I) -> Cycle {
        iter.fold(Cycle::ZERO, Add::add)
    }
}

impl From<u64> for Cycle {
    #[inline]
    fn from(v: u64) -> Cycle {
        Cycle(v)
    }
}

impl From<Cycle> for u64 {
    #[inline]
    fn from(c: Cycle) -> u64 {
        c.0
    }
}

impl fmt::Display for Cycle {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}c", self.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn arithmetic() {
        let a = Cycle::new(10);
        let b = Cycle::new(3);
        assert_eq!(a + b, Cycle::new(13));
        assert_eq!(a - b, Cycle::new(7));
        assert_eq!(a + 5, Cycle::new(15));
        let mut c = a;
        c += b;
        assert_eq!(c, Cycle::new(13));
        c -= b;
        assert_eq!(c, a);
        c += 2u64;
        assert_eq!(c, Cycle::new(12));
    }

    #[test]
    fn ordering_and_extremes() {
        assert!(Cycle::ZERO < Cycle::new(1));
        assert!(Cycle::MAX > Cycle::new(u64::MAX - 1));
        assert_eq!(Cycle::new(4).max(Cycle::new(9)), Cycle::new(9));
        assert_eq!(Cycle::new(4).min(Cycle::new(9)), Cycle::new(4));
    }

    #[test]
    fn saturating_sub_clamps_to_zero() {
        assert_eq!(Cycle::new(3).saturating_sub(Cycle::new(10)), Cycle::ZERO);
        assert_eq!(Cycle::new(10).saturating_sub(Cycle::new(3)), Cycle::new(7));
    }

    #[test]
    fn sum_of_cycles() {
        let total: Cycle = [1u64, 2, 3].iter().map(|&v| Cycle::new(v)).sum();
        assert_eq!(total, Cycle::new(6));
    }

    #[test]
    fn conversions_and_display() {
        let c: Cycle = 42u64.into();
        let v: u64 = c.into();
        assert_eq!(v, 42);
        assert_eq!(format!("{c}"), "42c");
        assert_eq!(format!("{c:?}"), "Cycle(42)");
    }

    #[test]
    #[should_panic]
    #[cfg(debug_assertions)]
    fn underflow_panics_in_debug() {
        let _ = Cycle::new(1) - Cycle::new(2);
    }
}
