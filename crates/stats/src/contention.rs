//! Contention-level measurement (Figure 2 of the paper).

use crate::Histogram;
use dsm_sim::StableHashMap;

/// Measures the level of contention on atomically accessed locations.
///
/// The paper defines the level of contention as "the number of
/// processors that concurrently try to access an atomically accessed
/// shared location", sampled "at the beginning of each access". A
/// processor *begins* an access when it starts a synchronization attempt
/// (e.g. enters a lock-acquire loop or issues a lock-free update) and
/// *ends* it when the attempt completes.
///
/// # Example
///
/// ```
/// use dsm_stats::ContentionTracker;
///
/// let mut t = ContentionTracker::new();
/// t.begin(100, 0); // p0 alone: contention 1
/// t.begin(100, 1); // p1 joins: contention 2
/// t.end(100, 0);
/// t.end(100, 1);
/// let h = t.histogram();
/// assert_eq!(h.count(1), 1);
/// assert_eq!(h.count(2), 1);
/// ```
#[derive(Debug, Clone, Default)]
pub struct ContentionTracker {
    /// Number of processors currently attempting each location.
    active: StableHashMap<u64, u32>,
    histogram: Histogram,
}

impl ContentionTracker {
    /// Creates an empty tracker.
    pub fn new() -> Self {
        Self::default()
    }

    /// Marks the beginning of an atomic access by `_proc` to `location`
    /// and samples the contention level (including this processor).
    pub fn begin(&mut self, location: u64, _proc: u32) {
        let n = self.active.entry(location).or_insert(0);
        *n += 1;
        self.histogram.record(*n as usize);
    }

    /// Marks the end of an atomic access.
    ///
    /// # Panics
    ///
    /// Panics if no access to `location` is in progress (an unmatched
    /// `end` indicates an instrumentation bug).
    pub fn end(&mut self, location: u64, _proc: u32) {
        let n = self
            .active
            .get_mut(&location)
            .expect("ContentionTracker::end without matching begin");
        assert!(*n > 0, "ContentionTracker::end without matching begin");
        *n -= 1;
    }

    /// Returns the contention histogram accumulated so far.
    pub fn histogram(&self) -> &Histogram {
        &self.histogram
    }

    /// Returns the number of accesses currently in progress on
    /// `location`.
    pub fn in_progress(&self, location: u64) -> u32 {
        self.active.get(&location).copied().unwrap_or(0)
    }

    /// Folds the tracker's state into a checkpoint digest. Locations
    /// whose in-progress count has returned to zero are skipped, so the
    /// digest is a function of the observable state, not of which
    /// locations were ever touched.
    pub fn digest(&self, h: &mut dsm_sim::StableHasher) {
        let mut active: Vec<(u64, u32)> = self
            .active
            .iter()
            .filter(|(_, &n)| n > 0)
            .map(|(&loc, &n)| (loc, n))
            .collect();
        active.sort_unstable();
        h.write_usize(active.len());
        for (loc, n) in active {
            h.write_u64(loc);
            h.write_u32(n);
        }
        self.histogram.digest(h);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn uncontended_accesses_record_one() {
        let mut t = ContentionTracker::new();
        for i in 0..10 {
            t.begin(5, i);
            t.end(5, i);
        }
        assert_eq!(t.histogram().count(1), 10);
        assert_eq!(t.histogram().total(), 10);
    }

    #[test]
    fn overlapping_accesses_raise_the_level() {
        let mut t = ContentionTracker::new();
        for i in 0..4 {
            t.begin(5, i);
        }
        assert_eq!(t.in_progress(5), 4);
        for i in 0..4 {
            t.end(5, i);
        }
        // Levels sampled: 1, 2, 3, 4.
        for v in 1..=4 {
            assert_eq!(t.histogram().count(v), 1);
        }
        assert_eq!(t.in_progress(5), 0);
    }

    #[test]
    fn locations_tracked_independently() {
        let mut t = ContentionTracker::new();
        t.begin(1, 0);
        t.begin(2, 1);
        assert_eq!(t.in_progress(1), 1);
        assert_eq!(t.in_progress(2), 1);
        assert_eq!(t.histogram().count(1), 2);
        assert_eq!(t.histogram().count(2), 0);
        t.end(1, 0);
        t.end(2, 1);
    }

    #[test]
    #[should_panic(expected = "without matching begin")]
    fn unmatched_end_panics() {
        let mut t = ContentionTracker::new();
        t.end(1, 0);
    }
}
