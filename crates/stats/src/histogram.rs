//! Integer-bucket histograms.

/// A histogram over small nonnegative integer values (bucket per value).
///
/// Used for the contention histograms of Figure 2 and for
/// serialized-message-chain distributions.
///
/// # Example
///
/// ```
/// use dsm_stats::Histogram;
///
/// let mut h = Histogram::new();
/// h.record(1);
/// h.record(1);
/// h.record(3);
/// assert_eq!(h.count(1), 2);
/// assert_eq!(h.total(), 3);
/// assert!((h.percentage(1) - 66.66).abs() < 0.1);
/// assert_eq!(h.mean(), (1.0 + 1.0 + 3.0) / 3.0);
/// ```
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Histogram {
    buckets: Vec<u64>,
    total: u64,
}

impl Histogram {
    /// Creates an empty histogram.
    pub fn new() -> Self {
        Self::default()
    }

    /// Records one observation of `value`.
    pub fn record(&mut self, value: usize) {
        if value >= self.buckets.len() {
            self.buckets.resize(value + 1, 0);
        }
        self.buckets[value] += 1;
        self.total += 1;
    }

    /// Records `n` observations of `value`.
    pub fn record_n(&mut self, value: usize, n: u64) {
        if n == 0 {
            return;
        }
        if value >= self.buckets.len() {
            self.buckets.resize(value + 1, 0);
        }
        self.buckets[value] += n;
        self.total += n;
    }

    /// Number of observations of `value`.
    pub fn count(&self, value: usize) -> u64 {
        self.buckets.get(value).copied().unwrap_or(0)
    }

    /// Total number of observations.
    pub fn total(&self) -> u64 {
        self.total
    }

    /// Percentage (0–100) of observations equal to `value`.
    pub fn percentage(&self, value: usize) -> f64 {
        if self.total == 0 {
            0.0
        } else {
            self.count(value) as f64 * 100.0 / self.total as f64
        }
    }

    /// Mean of the observed values.
    pub fn mean(&self) -> f64 {
        if self.total == 0 {
            return 0.0;
        }
        let sum: u64 = self
            .buckets
            .iter()
            .enumerate()
            .map(|(v, &c)| v as u64 * c)
            .sum();
        sum as f64 / self.total as f64
    }

    /// Largest value observed, if any.
    pub fn max_value(&self) -> Option<usize> {
        self.buckets.iter().rposition(|&c| c > 0)
    }

    /// Percentage of observations less than or equal to `value`.
    pub fn cumulative_percentage(&self, value: usize) -> f64 {
        if self.total == 0 {
            return 0.0;
        }
        let below: u64 = self.buckets.iter().take(value + 1).sum();
        below as f64 * 100.0 / self.total as f64
    }

    /// Iterates over `(value, count)` pairs with nonzero counts.
    pub fn iter(&self) -> impl Iterator<Item = (usize, u64)> + '_ {
        self.buckets
            .iter()
            .enumerate()
            .filter(|(_, &c)| c > 0)
            .map(|(v, &c)| (v, c))
    }

    /// Folds the histogram's contents into a checkpoint digest. Only
    /// nonzero buckets are hashed, so two histograms that compare equal
    /// observation-wise digest identically regardless of trailing empty
    /// buckets.
    pub fn digest(&self, h: &mut dsm_sim::StableHasher) {
        h.write_u64(self.total);
        for (v, c) in self.iter() {
            h.write_usize(v);
            h.write_u64(c);
        }
    }

    /// Merges another histogram into this one.
    pub fn merge(&mut self, other: &Histogram) {
        for (v, c) in other.iter() {
            self.record_n(v, c);
        }
    }

    /// Renders the histogram as percentage-per-value lines, e.g. for the
    /// Figure 2 reproduction:
    ///
    /// ```text
    ///  1:  92.1% ###############################
    ///  2:   5.3% ##
    /// ```
    pub fn render(&self) -> String {
        let mut out = String::new();
        let mut suppressed = 0u64;
        for (v, count) in self.iter() {
            let pct = self.percentage(v);
            if pct < 0.1 {
                suppressed += count;
                continue;
            }
            let bar = "#".repeat((pct / 2.0).round() as usize);
            out.push_str(&format!("{v:>4}: {pct:>5.1}% {bar}\n"));
        }
        if suppressed > 0 {
            out.push_str(&format!(
                "      (+{suppressed} accesses below 0.1%, up to level {})\n",
                self.max_value().unwrap_or(0)
            ));
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn empty_histogram() {
        let h = Histogram::new();
        assert_eq!(h.total(), 0);
        assert_eq!(h.count(5), 0);
        assert_eq!(h.percentage(5), 0.0);
        assert_eq!(h.mean(), 0.0);
        assert_eq!(h.max_value(), None);
        assert_eq!(h.cumulative_percentage(10), 0.0);
    }

    #[test]
    fn record_and_query() {
        let mut h = Histogram::new();
        h.record(0);
        h.record(2);
        h.record(2);
        h.record_n(5, 7);
        assert_eq!(h.total(), 10);
        assert_eq!(h.count(2), 2);
        assert_eq!(h.count(5), 7);
        assert_eq!(h.max_value(), Some(5));
        assert_eq!(h.percentage(5), 70.0);
        assert_eq!(h.cumulative_percentage(2), 30.0);
    }

    #[test]
    fn record_n_zero_is_noop() {
        let mut h = Histogram::new();
        h.record_n(3, 0);
        assert_eq!(h.total(), 0);
        assert_eq!(h.max_value(), None);
    }

    #[test]
    fn merge_adds_counts() {
        let mut a = Histogram::new();
        a.record(1);
        let mut b = Histogram::new();
        b.record(1);
        b.record(4);
        a.merge(&b);
        assert_eq!(a.count(1), 2);
        assert_eq!(a.count(4), 1);
        assert_eq!(a.total(), 3);
    }

    #[test]
    fn render_contains_values() {
        let mut h = Histogram::new();
        h.record_n(1, 9);
        h.record_n(8, 1);
        let s = h.render();
        assert!(s.contains("1:"));
        assert!(s.contains("90.0%"));
        assert!(s.contains("8:"));
    }

    proptest! {
        #[test]
        fn percentages_sum_to_100(values in proptest::collection::vec(0usize..20, 1..200)) {
            let mut h = Histogram::new();
            for v in &values {
                h.record(*v);
            }
            let sum: f64 = (0..=h.max_value().unwrap()).map(|v| h.percentage(v)).sum();
            prop_assert!((sum - 100.0).abs() < 1e-6);
            prop_assert_eq!(h.total(), values.len() as u64);
        }

        #[test]
        fn mean_matches_direct_computation(values in proptest::collection::vec(0usize..50, 1..100)) {
            let mut h = Histogram::new();
            for v in &values {
                h.record(*v);
            }
            let direct = values.iter().sum::<usize>() as f64 / values.len() as f64;
            prop_assert!((h.mean() - direct).abs() < 1e-9);
        }
    }
}
