//! Cycle-exact log-bucketed latency histograms.
//!
//! [`LatencyHist`] is an HDR-style histogram over `u64` cycle counts:
//! values below [`PRECISION`](LatencyHist::PRECISION) land in exact
//! unit buckets, larger values in logarithmic buckets subdivided into
//! [`PRECISION`](LatencyHist::PRECISION) sub-buckets, bounding the
//! relative quantization error of any reported quantile by
//! `1 / PRECISION` (~3%). The exact maximum is tracked on the side, so
//! `max()` (and any quantile that resolves to the last occupied bucket)
//! is cycle-exact.
//!
//! Percentile math is integer-only (rank arithmetic on bucket counts),
//! merging is commutative and associative, and the byte encoding —
//! written with the `dsm-sim` snapshot codec — is deterministic: two
//! histograms holding the same observations encode to identical bytes
//! regardless of insertion order. That makes per-job histograms safe to
//! persist in the result cache and merge across any worker count.

use dsm_sim::snapshot::{self, ByteReader, ByteWriter, PayloadKind, SnapshotError};
use dsm_sim::StableHasher;
use std::path::Path;

/// A mergeable log-bucketed histogram of cycle latencies.
///
/// # Example
///
/// ```
/// use dsm_stats::LatencyHist;
///
/// let mut h = LatencyHist::new();
/// for v in 1..=1000u64 {
///     h.record(v);
/// }
/// assert_eq!(h.total(), 1000);
/// assert_eq!(h.max(), 1000);
/// let p50 = h.percentile(50, 100);
/// assert!((480..=520).contains(&p50), "p50 = {p50}");
/// assert_eq!(h.percentile(100, 100), 1000);
/// ```
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct LatencyHist {
    /// Sparse bucket counts, indexed by [`bucket_index`].
    counts: Vec<u64>,
    /// Total observations.
    total: u64,
    /// Exact largest value observed (0 when empty).
    max: u64,
    /// Exact sum of observed values (for the mean).
    sum: u128,
}

/// log2(PRECISION): bucket index arithmetic shifts by this.
const PRECISION_BITS: u32 = 5;

impl LatencyHist {
    /// Sub-buckets per power of two; bounds relative quantization error
    /// of bucketed quantiles by `1 / PRECISION`.
    pub const PRECISION: u64 = 1 << PRECISION_BITS;

    /// Creates an empty histogram.
    pub fn new() -> Self {
        Self::default()
    }

    /// The bucket index of `value` (exact below [`Self::PRECISION`],
    /// logarithmic with `PRECISION` sub-buckets above).
    fn bucket_index(value: u64) -> usize {
        if value < Self::PRECISION {
            value as usize
        } else {
            let exp = 63 - value.leading_zeros(); // >= PRECISION_BITS
            let sub = (value >> (exp - PRECISION_BITS)) & (Self::PRECISION - 1);
            ((exp - PRECISION_BITS + 1) as u64 * Self::PRECISION + sub) as usize
        }
    }

    /// The largest value that maps into bucket `index` — the value a
    /// quantile resolving to that bucket reports (conservative: never
    /// under-reports a latency).
    fn bucket_upper(index: usize) -> u64 {
        let index = index as u64;
        if index < Self::PRECISION {
            index
        } else {
            let exp = index / Self::PRECISION - 1 + PRECISION_BITS as u64;
            let sub = index % Self::PRECISION;
            let width = 1u64 << (exp - PRECISION_BITS as u64);
            // Base of the bucket plus (width - 1): its inclusive top.
            (Self::PRECISION + sub)
                .wrapping_mul(width)
                .wrapping_add(width - 1)
        }
    }

    /// Records one observation of `value` cycles.
    pub fn record(&mut self, value: u64) {
        self.record_n(value, 1);
    }

    /// Records `n` observations of `value` cycles.
    pub fn record_n(&mut self, value: u64, n: u64) {
        if n == 0 {
            return;
        }
        let idx = Self::bucket_index(value);
        if idx >= self.counts.len() {
            self.counts.resize(idx + 1, 0);
        }
        self.counts[idx] += n;
        self.total += n;
        self.max = self.max.max(value);
        self.sum += value as u128 * n as u128;
    }

    /// Total observations.
    pub fn total(&self) -> u64 {
        self.total
    }

    /// `true` when nothing has been recorded.
    pub fn is_empty(&self) -> bool {
        self.total == 0
    }

    /// Exact largest observed value (0 when empty).
    pub fn max(&self) -> u64 {
        self.max
    }

    /// Mean of the observed values (0.0 when empty).
    pub fn mean(&self) -> f64 {
        if self.total == 0 {
            0.0
        } else {
            self.sum as f64 / self.total as f64
        }
    }

    /// The value at quantile `num / den` (e.g. `percentile(99, 100)` is
    /// p99, `percentile(999, 1000)` is p99.9), computed with integer
    /// rank arithmetic: the smallest bucket whose cumulative count
    /// reaches `ceil(total * num / den)`, reported as that bucket's
    /// upper bound and capped at the exact maximum. Returns 0 when
    /// empty.
    ///
    /// # Panics
    ///
    /// Panics if `den` is 0 or `num > den`.
    pub fn percentile(&self, num: u64, den: u64) -> u64 {
        assert!(den > 0 && num <= den, "quantile {num}/{den} out of range");
        if self.total == 0 {
            return 0;
        }
        // ceil(total * num / den), clamped to at least rank 1.
        let rank = ((self.total as u128 * num as u128).div_ceil(den as u128) as u64).max(1);
        let mut seen = 0u64;
        for (idx, &c) in self.counts.iter().enumerate() {
            seen += c;
            if seen >= rank {
                return Self::bucket_upper(idx).min(self.max);
            }
        }
        self.max
    }

    /// Merges another histogram into this one. Merging is commutative:
    /// `merge(a, b)` and `merge(b, a)` are observation-equal and encode
    /// to identical bytes.
    pub fn merge(&mut self, other: &LatencyHist) {
        if other.counts.len() > self.counts.len() {
            self.counts.resize(other.counts.len(), 0);
        }
        for (mine, theirs) in self.counts.iter_mut().zip(&other.counts) {
            *mine += theirs;
        }
        self.total += other.total;
        self.max = self.max.max(other.max);
        self.sum += other.sum;
    }

    /// Iterates over `(bucket upper bound, count)` pairs with nonzero
    /// counts, in increasing value order.
    pub fn iter(&self) -> impl Iterator<Item = (u64, u64)> + '_ {
        self.counts
            .iter()
            .enumerate()
            .filter(|(_, &c)| c > 0)
            .map(|(i, &c)| (Self::bucket_upper(i), c))
    }

    /// Folds the histogram's contents into a checkpoint digest. Only
    /// nonzero buckets are hashed, so trailing empty buckets do not
    /// perturb the digest.
    pub fn digest(&self, h: &mut StableHasher) {
        h.write_u64(self.total);
        h.write_u64(self.max);
        h.write_u64((self.sum >> 64) as u64);
        h.write_u64(self.sum as u64);
        for (idx, &c) in self.counts.iter().enumerate() {
            if c > 0 {
                h.write_usize(idx);
                h.write_u64(c);
            }
        }
    }

    /// Appends the histogram to a snapshot payload: totals, then the
    /// sparse `(bucket index, count)` list in index order — a canonical
    /// byte form independent of observation order.
    pub fn encode_into(&self, w: &mut ByteWriter) {
        w.put_u64(self.total);
        w.put_u64(self.max);
        w.put_u64((self.sum >> 64) as u64);
        w.put_u64(self.sum as u64);
        let nonzero = self.counts.iter().filter(|&&c| c > 0).count() as u64;
        w.put_u64(nonzero);
        for (idx, &c) in self.counts.iter().enumerate() {
            if c > 0 {
                w.put_u32(idx as u32);
                w.put_u64(c);
            }
        }
    }

    /// Decodes a histogram previously written by
    /// [`encode_into`](Self::encode_into).
    ///
    /// # Errors
    ///
    /// Returns a typed [`SnapshotError`] on truncation or structural
    /// invalidity (buckets out of order, totals that disagree with the
    /// bucket counts).
    pub fn decode_from(r: &mut ByteReader<'_>) -> Result<Self, SnapshotError> {
        let total = r.take_u64()?;
        let max = r.take_u64()?;
        let sum = ((r.take_u64()? as u128) << 64) | r.take_u64()? as u128;
        let nonzero = r.take_u64()?;
        let mut counts = Vec::new();
        let mut counted = 0u64;
        let mut last: Option<u32> = None;
        for _ in 0..nonzero {
            let idx = r.take_u32()?;
            let c = r.take_u64()?;
            if last.is_some_and(|p| idx <= p) {
                return Err(SnapshotError::Malformed(
                    "latency histogram buckets out of order".into(),
                ));
            }
            if c == 0 {
                return Err(SnapshotError::Malformed(
                    "latency histogram stores an empty bucket".into(),
                ));
            }
            last = Some(idx);
            if idx as usize >= counts.len() {
                counts.resize(idx as usize + 1, 0);
            }
            counts[idx as usize] = c;
            counted = counted
                .checked_add(c)
                .ok_or_else(|| SnapshotError::Malformed("bucket counts overflow".into()))?;
        }
        if counted != total {
            return Err(SnapshotError::Malformed(format!(
                "latency histogram total {total} disagrees with bucket sum {counted}"
            )));
        }
        Ok(LatencyHist {
            counts,
            total,
            max,
            sum,
        })
    }

    /// Writes the histogram to `path` as a checksummed snapshot
    /// container ([`PayloadKind::Histogram`]), atomically.
    ///
    /// # Errors
    ///
    /// Returns any underlying filesystem error.
    pub fn save(&self, path: &Path) -> Result<(), SnapshotError> {
        let mut w = ByteWriter::new();
        self.encode_into(&mut w);
        snapshot::write_atomic(path, PayloadKind::Histogram, &w.into_bytes())
    }

    /// Reads a histogram written by [`save`](Self::save), verifying the
    /// container checksum, version and payload kind.
    ///
    /// # Errors
    ///
    /// Returns any container integrity violation or payload decode
    /// error.
    pub fn load(path: &Path) -> Result<Self, SnapshotError> {
        let payload = snapshot::read(path, PayloadKind::Histogram)?;
        let mut r = ByteReader::new(&payload);
        let hist = Self::decode_from(&mut r)?;
        r.finish()?;
        Ok(hist)
    }

    /// Renders the standard quantile row for this histogram:
    /// `count  p50  p90  p99  p99.9  max  mean`.
    pub fn quantile_cells(&self) -> Vec<String> {
        vec![
            self.total.to_string(),
            self.percentile(50, 100).to_string(),
            self.percentile(90, 100).to_string(),
            self.percentile(99, 100).to_string(),
            self.percentile(999, 1000).to_string(),
            self.max.to_string(),
            format!("{:.1}", self.mean()),
        ]
    }

    /// Header cells matching [`quantile_cells`](Self::quantile_cells).
    pub fn quantile_header() -> Vec<String> {
        ["ops", "p50", "p90", "p99", "p99.9", "max", "mean"]
            .into_iter()
            .map(String::from)
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn empty_histogram_reports_zeros() {
        let h = LatencyHist::new();
        assert_eq!(h.total(), 0);
        assert!(h.is_empty());
        assert_eq!(h.max(), 0);
        assert_eq!(h.mean(), 0.0);
        assert_eq!(h.percentile(50, 100), 0);
        assert_eq!(h.percentile(999, 1000), 0);
        assert_eq!(h.iter().count(), 0);
    }

    #[test]
    fn single_sample_is_every_percentile() {
        let mut h = LatencyHist::new();
        h.record(12345);
        for (num, den) in [(1, 100), (50, 100), (99, 100), (999, 1000), (1, 1)] {
            assert_eq!(h.percentile(num, den), 12345, "{num}/{den}");
        }
        assert_eq!(h.max(), 12345);
        assert_eq!(h.mean(), 12345.0);
    }

    #[test]
    fn small_values_are_exact() {
        let mut h = LatencyHist::new();
        for v in 0..LatencyHist::PRECISION {
            h.record(v);
        }
        for v in 0..LatencyHist::PRECISION {
            let got = h.percentile(v + 1, LatencyHist::PRECISION);
            assert_eq!(got, v, "quantile {}", v + 1);
        }
    }

    #[test]
    fn saturating_bucket_at_max_cycle_value() {
        let mut h = LatencyHist::new();
        h.record(u64::MAX);
        h.record(u64::MAX - 1);
        h.record(1);
        assert_eq!(h.max(), u64::MAX);
        // The top bucket saturates but the exact max caps the report.
        assert_eq!(h.percentile(1, 1), u64::MAX);
        assert_eq!(h.percentile(999, 1000), u64::MAX);
        assert_eq!(h.total(), 3);
        // Round-trips through the codec despite the extreme index.
        let mut w = ByteWriter::new();
        h.encode_into(&mut w);
        let bytes = w.into_bytes();
        let mut r = ByteReader::new(&bytes);
        let back = LatencyHist::decode_from(&mut r).unwrap();
        r.finish().unwrap();
        assert_eq!(back, h);
    }

    #[test]
    fn quantization_error_is_bounded() {
        let mut h = LatencyHist::new();
        for v in [100u64, 1_000, 10_000, 1_000_000, 123_456_789] {
            h.record(v);
            let got = h.percentile(1, 1);
            assert!(got >= v, "quantile must not under-report: {got} < {v}");
            assert_eq!(got, h.max(), "top quantile is exact via max");
        }
        // Interior quantiles are within 1/PRECISION relative error.
        let mut h = LatencyHist::new();
        for v in 1..=100_000u64 {
            h.record(v);
        }
        let p50 = h.percentile(50, 100);
        assert!(
            (50_000..=50_000 + 50_000 / 32 + 1).contains(&p50),
            "p50 = {p50}"
        );
    }

    #[test]
    fn merge_is_commutative_and_matches_combined() {
        let mut a = LatencyHist::new();
        let mut b = LatencyHist::new();
        let mut combined = LatencyHist::new();
        for v in [3u64, 700, 70_000, 1] {
            a.record(v);
            combined.record(v);
        }
        for v in [9u64, 700, 123_456_789] {
            b.record(v);
            combined.record(v);
        }
        let mut ab = a.clone();
        ab.merge(&b);
        let mut ba = b.clone();
        ba.merge(&a);
        assert_eq!(ab, ba);
        assert_eq!(ab, combined);
    }

    #[test]
    fn encoding_is_canonical_and_round_trips() {
        let mut fwd = LatencyHist::new();
        let mut rev = LatencyHist::new();
        let values = [5u64, 90, 5, 1 << 40, 77, 77, 0];
        for &v in &values {
            fwd.record(v);
        }
        for &v in values.iter().rev() {
            rev.record(v);
        }
        let enc = |h: &LatencyHist| {
            let mut w = ByteWriter::new();
            h.encode_into(&mut w);
            w.into_bytes()
        };
        assert_eq!(enc(&fwd), enc(&rev), "insertion order leaked into bytes");
        let bytes = enc(&fwd);
        let mut r = ByteReader::new(&bytes);
        let back = LatencyHist::decode_from(&mut r).unwrap();
        r.finish().unwrap();
        assert_eq!(back, fwd);
    }

    #[test]
    fn decode_rejects_inconsistent_totals() {
        let mut h = LatencyHist::new();
        h.record(10);
        let mut w = ByteWriter::new();
        h.encode_into(&mut w);
        let mut bytes = w.into_bytes();
        bytes[0] ^= 1; // perturb the stored total
        let mut r = ByteReader::new(&bytes);
        assert!(matches!(
            LatencyHist::decode_from(&mut r),
            Err(SnapshotError::Malformed(_))
        ));
    }

    #[test]
    fn save_load_round_trips_through_container() {
        let dir = std::env::temp_dir().join(format!("dsm-lat-test-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let path = dir.join("lat.hist");
        let mut h = LatencyHist::new();
        for v in [1u64, 2, 3, 1000, 100_000] {
            h.record(v);
        }
        h.save(&path).unwrap();
        assert_eq!(LatencyHist::load(&path).unwrap(), h);
        let _ = std::fs::remove_dir_all(&dir);
    }

    proptest! {
        #[test]
        fn merge_commutativity_property(
            xs in proptest::collection::vec(0u64..1_000_000_000, 0..200),
            ys in proptest::collection::vec(0u64..1_000_000_000, 0..200),
        ) {
            let mut a = LatencyHist::new();
            for &v in &xs { a.record(v); }
            let mut b = LatencyHist::new();
            for &v in &ys { b.record(v); }
            let mut ab = a.clone();
            ab.merge(&b);
            let mut ba = b.clone();
            ba.merge(&a);
            prop_assert_eq!(&ab, &ba);
            prop_assert_eq!(ab.total(), (xs.len() + ys.len()) as u64);
            let direct_max = xs.iter().chain(&ys).copied().max().unwrap_or(0);
            prop_assert_eq!(ab.max(), direct_max);
        }

        #[test]
        fn quantiles_are_monotone_and_bounded(
            xs in proptest::collection::vec(0u64..1_000_000_000, 1..300),
        ) {
            let mut h = LatencyHist::new();
            for &v in &xs { h.record(v); }
            let mut prev = 0u64;
            for num in [1u64, 10, 50, 90, 99, 100] {
                let q = h.percentile(num, 100);
                prop_assert!(q >= prev, "quantiles must be monotone");
                prop_assert!(q <= h.max());
                prev = q;
            }
            prop_assert_eq!(h.percentile(100, 100), h.max());
        }

        #[test]
        fn codec_round_trips_any_histogram(
            xs in proptest::collection::vec(0u64..u64::MAX, 0..100),
        ) {
            let mut h = LatencyHist::new();
            for &v in &xs { h.record(v); }
            let mut w = ByteWriter::new();
            h.encode_into(&mut w);
            let bytes = w.into_bytes();
            let mut r = ByteReader::new(&bytes);
            let back = LatencyHist::decode_from(&mut r).unwrap();
            r.finish().unwrap();
            prop_assert_eq!(back, h);
        }
    }
}
