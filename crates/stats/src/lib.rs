//! Measurement infrastructure for the atomic-primitive experiments.
//!
//! The paper characterizes workloads by two quantities (§4.2) and reports
//! results as averages:
//!
//! * **Contention** — the number of processors concurrently trying to
//!   access an atomically accessed location at the beginning of each
//!   access, reported as a histogram ([`ContentionTracker`], Figure 2);
//! * **Average write-run length** — the average number of consecutive
//!   writes (including atomic updates) by one processor to a location
//!   without intervening accesses by any other processor
//!   ([`WriteRunTracker`]);
//! * **Average cycles per operation** and **serialized network
//!   messages** ([`ChainStats`], Table 1) and general aggregates
//!   ([`OnlineMean`], [`Histogram`]).
//!
//! Rendering helpers ([`table`]) produce the aligned text tables and CSV
//! series that the benchmark harness prints for every figure.

#![warn(missing_docs)]

pub mod contention;
pub mod histogram;
pub mod latency;
pub mod messages;
pub mod metrics;
pub mod table;
pub mod writerun;

pub use contention::ContentionTracker;
pub use histogram::Histogram;
pub use latency::LatencyHist;
pub use messages::{ChainStats, MsgClass};
pub use metrics::NodeMetrics;
pub use table::{render_bar_chart, render_csv, render_table};
pub use writerun::WriteRunTracker;

/// An online (streaming) mean with count, min and max.
///
/// # Example
///
/// ```
/// use dsm_stats::OnlineMean;
///
/// let mut m = OnlineMean::new();
/// for v in [10.0, 20.0, 30.0] {
///     m.add(v);
/// }
/// assert_eq!(m.mean(), 20.0);
/// assert_eq!(m.count(), 3);
/// assert_eq!(m.min(), Some(10.0));
/// assert_eq!(m.max(), Some(30.0));
/// ```
#[derive(Debug, Clone, Default, PartialEq)]
pub struct OnlineMean {
    count: u64,
    sum: f64,
    min: Option<f64>,
    max: Option<f64>,
}

impl OnlineMean {
    /// Creates an empty accumulator.
    pub fn new() -> Self {
        Self::default()
    }

    /// Adds one sample.
    pub fn add(&mut self, v: f64) {
        self.count += 1;
        self.sum += v;
        self.min = Some(self.min.map_or(v, |m| m.min(v)));
        self.max = Some(self.max.map_or(v, |m| m.max(v)));
    }

    /// The mean of all samples, or 0.0 if none.
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum / self.count as f64
        }
    }

    /// Number of samples.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Sum of samples.
    pub fn sum(&self) -> f64 {
        self.sum
    }

    /// Smallest sample, if any.
    pub fn min(&self) -> Option<f64> {
        self.min
    }

    /// Largest sample, if any.
    pub fn max(&self) -> Option<f64> {
        self.max
    }

    /// Merges another accumulator into this one.
    pub fn merge(&mut self, other: &OnlineMean) {
        self.count += other.count;
        self.sum += other.sum;
        if let Some(m) = other.min {
            self.min = Some(self.min.map_or(m, |s| s.min(m)));
        }
        if let Some(m) = other.max {
            self.max = Some(self.max.map_or(m, |s| s.max(m)));
        }
    }

    /// Folds the accumulator's exact state (count, bit-exact sum,
    /// min/max) into a checkpoint digest.
    pub fn digest(&self, h: &mut dsm_sim::StableHasher) {
        h.write_u64(self.count);
        h.write_f64_bits(self.sum);
        for bound in [self.min, self.max] {
            match bound {
                Some(v) => {
                    h.write_u8(1);
                    h.write_f64_bits(v);
                }
                None => h.write_u8(0),
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_mean_is_zero() {
        let m = OnlineMean::new();
        assert_eq!(m.mean(), 0.0);
        assert_eq!(m.count(), 0);
        assert_eq!(m.min(), None);
        assert_eq!(m.max(), None);
    }

    #[test]
    fn merge_combines_everything() {
        let mut a = OnlineMean::new();
        a.add(1.0);
        a.add(3.0);
        let mut b = OnlineMean::new();
        b.add(5.0);
        a.merge(&b);
        assert_eq!(a.count(), 3);
        assert_eq!(a.mean(), 3.0);
        assert_eq!(a.min(), Some(1.0));
        assert_eq!(a.max(), Some(5.0));
    }

    #[test]
    fn merge_with_empty_is_identity() {
        let mut a = OnlineMean::new();
        a.add(2.0);
        let before = a.clone();
        a.merge(&OnlineMean::new());
        assert_eq!(a, before);
        let mut e = OnlineMean::new();
        e.merge(&before);
        assert_eq!(e, before);
    }
}
