//! Network-message accounting: counts per class and serialized-chain
//! lengths (Table 1 of the paper).

use crate::{Histogram, OnlineMean};

/// Broad classes of coherence traffic, for reporting.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum MsgClass {
    /// Read / read-exclusive / atomic requests from a cache to a home.
    Request,
    /// Data or completion replies.
    Reply,
    /// Interventions forwarded from a home to an owner.
    Forward,
    /// Invalidations sent to sharers.
    Invalidate,
    /// Updates pushed to sharers (write-update policy).
    Update,
    /// Acknowledgments of invalidations or updates.
    Ack,
    /// Write-backs and ownership-transfer data.
    WriteBack,
    /// Negative acknowledgments (retry).
    Nak,
}

impl MsgClass {
    /// All classes, in reporting order.
    pub const ALL: [MsgClass; 8] = [
        MsgClass::Request,
        MsgClass::Reply,
        MsgClass::Forward,
        MsgClass::Invalidate,
        MsgClass::Update,
        MsgClass::Ack,
        MsgClass::WriteBack,
        MsgClass::Nak,
    ];

    /// Short label used in tables.
    pub fn label(self) -> &'static str {
        match self {
            MsgClass::Request => "req",
            MsgClass::Reply => "reply",
            MsgClass::Forward => "fwd",
            MsgClass::Invalidate => "inv",
            MsgClass::Update => "upd",
            MsgClass::Ack => "ack",
            MsgClass::WriteBack => "wb",
            MsgClass::Nak => "nak",
        }
    }

    fn index(self) -> usize {
        match self {
            MsgClass::Request => 0,
            MsgClass::Reply => 1,
            MsgClass::Forward => 2,
            MsgClass::Invalidate => 3,
            MsgClass::Update => 4,
            MsgClass::Ack => 5,
            MsgClass::WriteBack => 6,
            MsgClass::Nak => 7,
        }
    }
}

/// Counts messages by class and records the *serialized* message chain
/// of each completed memory transaction.
///
/// Table 1 of the paper counts "serialized network messages for stores":
/// the length of the longest dependency chain of messages on the
/// operation's critical path (parallel invalidations count once). The
/// protocol engine reports that chain length per transaction via
/// [`record_chain`](ChainStats::record_chain).
///
/// # Example
///
/// ```
/// use dsm_stats::{ChainStats, MsgClass};
///
/// let mut s = ChainStats::new();
/// s.count(MsgClass::Request);
/// s.count(MsgClass::Reply);
/// s.record_chain(2); // uncached store: request + reply
/// assert_eq!(s.messages(MsgClass::Request), 1);
/// assert_eq!(s.chains().mean(), 2.0);
/// ```
#[derive(Debug, Clone, Default)]
pub struct ChainStats {
    counts: [u64; 8],
    chains: OnlineMean,
    chain_histogram: Histogram,
}

impl ChainStats {
    /// Creates empty statistics.
    pub fn new() -> Self {
        Self::default()
    }

    /// Counts one message of the given class.
    pub fn count(&mut self, class: MsgClass) {
        self.counts[class.index()] += 1;
    }

    /// Number of messages counted in `class`.
    pub fn messages(&self, class: MsgClass) -> u64 {
        self.counts[class.index()]
    }

    /// Total messages across all classes.
    pub fn total_messages(&self) -> u64 {
        self.counts.iter().sum()
    }

    /// Records the serialized-chain length of one completed transaction.
    pub fn record_chain(&mut self, serialized_messages: u32) {
        self.chains.add(serialized_messages as f64);
        self.chain_histogram.record(serialized_messages as usize);
    }

    /// Statistics over recorded chain lengths.
    pub fn chains(&self) -> &OnlineMean {
        &self.chains
    }

    /// Distribution of recorded chain lengths.
    pub fn chain_histogram(&self) -> &Histogram {
        &self.chain_histogram
    }

    /// Folds the per-class counts and chain statistics into a checkpoint
    /// digest.
    pub fn digest(&self, h: &mut dsm_sim::StableHasher) {
        for &c in &self.counts {
            h.write_u64(c);
        }
        self.chains.digest(h);
        self.chain_histogram.digest(h);
    }

    /// Merges another instance into this one.
    pub fn merge(&mut self, other: &ChainStats) {
        for i in 0..self.counts.len() {
            self.counts[i] += other.counts[i];
        }
        self.chains.merge(&other.chains);
        self.chain_histogram.merge(&other.chain_histogram);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counting_by_class() {
        let mut s = ChainStats::new();
        s.count(MsgClass::Request);
        s.count(MsgClass::Request);
        s.count(MsgClass::Nak);
        assert_eq!(s.messages(MsgClass::Request), 2);
        assert_eq!(s.messages(MsgClass::Nak), 1);
        assert_eq!(s.messages(MsgClass::Ack), 0);
        assert_eq!(s.total_messages(), 3);
    }

    #[test]
    fn chain_statistics() {
        let mut s = ChainStats::new();
        s.record_chain(2);
        s.record_chain(4);
        assert_eq!(s.chains().mean(), 3.0);
        assert_eq!(s.chain_histogram().count(2), 1);
        assert_eq!(s.chain_histogram().count(4), 1);
    }

    #[test]
    fn merge_accumulates() {
        let mut a = ChainStats::new();
        a.count(MsgClass::Reply);
        a.record_chain(3);
        let mut b = ChainStats::new();
        b.count(MsgClass::Reply);
        b.record_chain(1);
        a.merge(&b);
        assert_eq!(a.messages(MsgClass::Reply), 2);
        assert_eq!(a.chains().count(), 2);
        assert_eq!(a.chains().mean(), 2.0);
    }

    #[test]
    fn labels_are_distinct() {
        let labels: std::collections::HashSet<_> =
            MsgClass::ALL.iter().map(|c| c.label()).collect();
        assert_eq!(labels.len(), MsgClass::ALL.len());
    }
}
