//! Per-node runtime metrics, populated by the tracing layer.
//!
//! Where the rest of `dsm-stats` aggregates whole-run quantities
//! (contention, write runs, message chains), [`NodeMetrics`] attributes
//! activity to *individual nodes*: how many messages each node injected
//! into the mesh, how long its home directory stayed busy, how deep its
//! request queue got. The tracing layer (`dsm-trace`) keeps one
//! `NodeMetrics` per node and updates it as events are recorded, so the
//! table is available even when no sink writes a file.

use crate::histogram::Histogram;
use crate::table::render_table;

/// Counters and histograms for one node.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct NodeMetrics {
    /// Messages this node injected into the network.
    pub msgs_sent: u64,
    /// Flits this node injected into the network.
    pub flits_sent: u64,
    /// Messages serviced by this node's home memory module.
    pub served_home: u64,
    /// Messages serviced by this node's cache controller.
    pub served_cache: u64,
    /// Network transit cycles of messages sent by this node.
    pub transit: Histogram,
    /// Samples of this node's home-queue occupancy.
    pub queue_depth: Histogram,
    /// Memory operations retired by this node's processor.
    pub ops_retired: u64,
    /// Failed atomic attempts (CAS/SC fails, unreserved LLs) by this
    /// node's processor.
    pub retries: u64,
    /// Directory state transitions at this node's home.
    pub dir_transitions: u64,
    /// Cache-line state transitions at this node's cache.
    pub cache_transitions: u64,
}

impl NodeMetrics {
    /// Creates a zeroed metrics record.
    pub fn new() -> Self {
        Self::default()
    }

    /// Merges another node's metrics into this one (for machine-level
    /// totals).
    pub fn merge(&mut self, other: &NodeMetrics) {
        self.msgs_sent += other.msgs_sent;
        self.flits_sent += other.flits_sent;
        self.served_home += other.served_home;
        self.served_cache += other.served_cache;
        self.transit.merge(&other.transit);
        self.queue_depth.merge(&other.queue_depth);
        self.ops_retired += other.ops_retired;
        self.retries += other.retries;
        self.dir_transitions += other.dir_transitions;
        self.cache_transitions += other.cache_transitions;
    }
}

/// Renders a per-node metrics table (one row per node with any
/// activity, plus a totals row).
///
/// # Example
///
/// ```
/// use dsm_stats::metrics::{render_node_metrics, NodeMetrics};
///
/// let mut nodes = vec![NodeMetrics::new(); 2];
/// nodes[0].msgs_sent = 3;
/// nodes[0].ops_retired = 2;
/// let table = render_node_metrics(&nodes);
/// assert!(table.contains("node"));
/// assert!(table.contains("total"));
/// ```
pub fn render_node_metrics(nodes: &[NodeMetrics]) -> String {
    let mut rows = vec![vec![
        "node".to_string(),
        "msgs".to_string(),
        "flits".to_string(),
        "srv-home".to_string(),
        "srv-cache".to_string(),
        "transit-avg".to_string(),
        "queue-avg".to_string(),
        "queue-max".to_string(),
        "ops".to_string(),
        "retries".to_string(),
        "dir-xit".to_string(),
        "cache-xit".to_string(),
    ]];
    let mut total = NodeMetrics::new();
    for (i, m) in nodes.iter().enumerate() {
        total.merge(m);
        if *m == NodeMetrics::default() {
            continue;
        }
        rows.push(metrics_row(&i.to_string(), m));
    }
    rows.push(metrics_row("total", &total));
    render_table(&rows)
}

/// The table/CSV cells for one node, matching the header columns of
/// [`render_node_metrics`]: messages, flits, home/cache services,
/// transit and queue statistics, retired ops, retries and transition
/// counts.
pub fn metrics_row(name: &str, m: &NodeMetrics) -> Vec<String> {
    vec![
        name.to_string(),
        m.msgs_sent.to_string(),
        m.flits_sent.to_string(),
        m.served_home.to_string(),
        m.served_cache.to_string(),
        format!("{:.1}", m.transit.mean()),
        format!("{:.2}", m.queue_depth.mean()),
        m.queue_depth.max_value().unwrap_or(0).to_string(),
        m.ops_retired.to_string(),
        m.retries.to_string(),
        m.dir_transitions.to_string(),
        m.cache_transitions.to_string(),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn merge_sums_counters_and_histograms() {
        let mut a = NodeMetrics::new();
        a.msgs_sent = 2;
        a.transit.record(10);
        let mut b = NodeMetrics::new();
        b.msgs_sent = 3;
        b.transit.record(20);
        b.retries = 1;
        a.merge(&b);
        assert_eq!(a.msgs_sent, 5);
        assert_eq!(a.retries, 1);
        assert_eq!(a.transit.total(), 2);
        assert_eq!(a.transit.mean(), 15.0);
    }

    #[test]
    fn render_skips_idle_nodes_but_totals_all() {
        let mut nodes = vec![NodeMetrics::new(); 4];
        nodes[2].msgs_sent = 7;
        let table = render_node_metrics(&nodes);
        assert!(table.contains('2'));
        assert!(!table.contains("\n1 "));
        let total_line = table.lines().last().unwrap();
        assert!(total_line.starts_with("total"));
        assert!(total_line.contains('7'));
    }
}
