//! Text-table and CSV rendering for the figure harness.

/// Renders rows as an aligned, pipe-separated text table.
///
/// The first row is treated as the header and separated from the body by
/// a dashed rule. Empty input renders as an empty string.
///
/// # Example
///
/// ```
/// use dsm_stats::render_table;
///
/// let t = render_table(&[
///     vec!["policy".into(), "cycles".into()],
///     vec!["INV".into(), "142.0".into()],
/// ]);
/// assert!(t.contains("policy"));
/// assert!(t.contains("INV"));
/// assert!(t.lines().count() == 3);
/// ```
pub fn render_table(rows: &[Vec<String>]) -> String {
    if rows.is_empty() {
        return String::new();
    }
    let cols = rows.iter().map(Vec::len).max().unwrap_or(0);
    let mut widths = vec![0usize; cols];
    for row in rows {
        for (i, cell) in row.iter().enumerate() {
            widths[i] = widths[i].max(cell.len());
        }
    }
    let mut out = String::new();
    for (r, row) in rows.iter().enumerate() {
        let mut line = String::new();
        for (i, w) in widths.iter().enumerate() {
            let empty = String::new();
            let cell = row.get(i).unwrap_or(&empty);
            if i > 0 {
                line.push_str(" | ");
            }
            line.push_str(&format!("{cell:<w$}"));
        }
        out.push_str(line.trim_end());
        out.push('\n');
        if r == 0 {
            let total: usize = widths.iter().sum::<usize>() + 3 * (cols.saturating_sub(1));
            out.push_str(&"-".repeat(total));
            out.push('\n');
        }
    }
    out
}

/// Renders rows as CSV (comma-separated, quoting cells that contain
/// commas or quotes).
///
/// # Example
///
/// ```
/// use dsm_stats::render_csv;
///
/// let csv = render_csv(&[vec!["a".into(), "b,c".into()]]);
/// assert_eq!(csv, "a,\"b,c\"\n");
/// ```
pub fn render_csv(rows: &[Vec<String>]) -> String {
    let mut out = String::new();
    for row in rows {
        let cells: Vec<String> = row
            .iter()
            .map(|c| {
                if c.contains(',') || c.contains('"') || c.contains('\n') {
                    format!("\"{}\"", c.replace('"', "\"\""))
                } else {
                    c.clone()
                }
            })
            .collect();
        out.push_str(&cells.join(","));
        out.push('\n');
    }
    out
}

/// Renders labelled values as a horizontal ASCII bar chart, scaled to
/// the largest value — the shape the paper's figures use.
///
/// # Example
///
/// ```
/// use dsm_stats::render_bar_chart;
///
/// let chart = render_bar_chart(
///     &[("UNC FAP".into(), 25.0), ("INV CAS".into(), 116.0)],
///     40,
/// );
/// assert!(chart.contains("UNC FAP"));
/// assert!(chart.lines().count() == 2);
/// ```
pub fn render_bar_chart(bars: &[(String, f64)], width: usize) -> String {
    let max = bars.iter().map(|(_, v)| *v).fold(0.0_f64, f64::max);
    let label_w = bars.iter().map(|(l, _)| l.len()).max().unwrap_or(0);
    let mut out = String::new();
    for (label, value) in bars {
        let filled = if max > 0.0 {
            ((value / max) * width as f64).round() as usize
        } else {
            0
        };
        out.push_str(&format!(
            "{label:<label_w$} |{} {value:.0}\n",
            "█".repeat(filled.min(width))
        ));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rows() -> Vec<Vec<String>> {
        vec![
            vec!["name".into(), "value".into()],
            vec!["alpha".into(), "1".into()],
            vec!["b".into(), "22222".into()],
        ]
    }

    #[test]
    fn table_aligns_columns() {
        let t = render_table(&rows());
        let lines: Vec<&str> = t.lines().collect();
        assert_eq!(lines.len(), 4);
        // The separator appears after the header.
        assert!(lines[1].chars().all(|c| c == '-'));
        // "value" column starts at the same offset in every row.
        let off = lines[0].find("value").unwrap();
        assert_eq!(lines[2].find('1').unwrap(), off);
        assert_eq!(lines[3].find('2').unwrap(), off);
    }

    #[test]
    fn empty_table_is_empty() {
        assert_eq!(render_table(&[]), "");
    }

    #[test]
    fn ragged_rows_are_padded() {
        let t = render_table(&[vec!["a".into(), "b".into()], vec!["only".into()]]);
        assert!(t.contains("only"));
    }

    #[test]
    fn csv_quotes_special_cells() {
        let csv = render_csv(&[vec!["x\"y".into(), "plain".into()]]);
        assert_eq!(csv, "\"x\"\"y\",plain\n");
    }

    #[test]
    fn csv_round_trips_simple_rows() {
        let csv = render_csv(&rows());
        assert_eq!(csv, "name,value\nalpha,1\nb,22222\n");
    }

    #[test]
    fn bar_chart_scales_to_max() {
        let chart = render_bar_chart(&[("a".into(), 10.0), ("bb".into(), 20.0)], 10);
        let lines: Vec<&str> = chart.lines().collect();
        assert_eq!(lines.len(), 2);
        // The largest value fills the full width.
        assert_eq!(lines[1].matches('█').count(), 10);
        assert_eq!(lines[0].matches('█').count(), 5);
        // Labels are padded to equal width.
        assert!(lines[0].starts_with("a  |"));
        assert!(lines[1].starts_with("bb |"));
    }

    #[test]
    fn bar_chart_handles_zero_and_empty() {
        let chart = render_bar_chart(&[("x".into(), 0.0)], 10);
        assert!(chart.contains("x |"));
        assert_eq!(chart.matches('█').count(), 0);
        assert_eq!(render_bar_chart(&[], 10), "");
    }
}
