//! Write-run-length tracking (Eggers & Katz, used in §4.2 of the paper).

use crate::OnlineMean;
use dsm_sim::StableHashMap;

/// Tracks the average write-run length of atomically accessed locations.
///
/// The paper defines the average write-run length as "the average number
/// of consecutive writes (including atomic updates) by a processor to an
/// atomically accessed shared location without intervening accesses
/// (reads or writes) by any other processors".
///
/// Feed every access (read or write, plain or atomic) to
/// [`access`](WriteRunTracker::access); finished runs accumulate into an
/// [`OnlineMean`]. Call [`finish`](WriteRunTracker::finish) at the end of
/// the measured region to flush runs still in progress.
///
/// # Example
///
/// ```
/// use dsm_stats::WriteRunTracker;
///
/// let mut t = WriteRunTracker::new();
/// // Processor 0 writes location 1 twice, then processor 1 intervenes.
/// t.access(1, 0, true);
/// t.access(1, 0, true);
/// t.access(1, 1, true);
/// let stats = t.finish();
/// // Two runs: [p0 x2] and [p1 x1] -> mean 1.5.
/// assert_eq!(stats.mean(), 1.5);
/// ```
#[derive(Debug, Clone, Default)]
pub struct WriteRunTracker {
    /// Per-location state: (processor of current run, writes in run).
    current: StableHashMap<u64, (u32, u64)>,
    runs: OnlineMean,
}

impl WriteRunTracker {
    /// Creates an empty tracker.
    pub fn new() -> Self {
        Self::default()
    }

    /// Records an access to `location` by `proc`.
    ///
    /// `is_write` marks stores and atomic updates; loads pass `false`.
    pub fn access(&mut self, location: u64, proc: u32, is_write: bool) {
        match self.current.get_mut(&location) {
            Some((owner, count)) if *owner == proc => {
                if is_write {
                    *count += 1;
                }
                // Reads by the run owner neither extend nor break the run.
            }
            Some((owner, count)) => {
                // Intervening access by another processor ends the run.
                let finished = *count;
                if finished > 0 {
                    self.runs.add(finished as f64);
                }
                if is_write {
                    *owner = proc;
                    *count = 1;
                } else {
                    // A read by a different processor: no run in progress
                    // until someone writes again.
                    *owner = proc;
                    *count = 0;
                }
            }
            None => {
                if is_write {
                    self.current.insert(location, (proc, 1));
                } else {
                    self.current.insert(location, (proc, 0));
                }
            }
        }
    }

    /// Flushes in-progress runs and returns the run-length statistics.
    pub fn finish(mut self) -> OnlineMean {
        for (_, (_, count)) in self.current.drain() {
            if count > 0 {
                self.runs.add(count as f64);
            }
        }
        self.runs
    }

    /// Returns the statistics over completed runs only, without
    /// consuming the tracker.
    pub fn completed(&self) -> &OnlineMean {
        &self.runs
    }

    /// Folds the tracker's state (in-progress runs plus completed-run
    /// statistics) into a checkpoint digest.
    pub fn digest(&self, h: &mut dsm_sim::StableHasher) {
        let mut current: Vec<(u64, u32, u64)> = self
            .current
            .iter()
            .map(|(&loc, &(owner, count))| (loc, owner, count))
            .collect();
        current.sort_unstable();
        h.write_usize(current.len());
        for (loc, owner, count) in current {
            h.write_u64(loc);
            h.write_u32(owner);
            h.write_u64(count);
        }
        self.runs.digest(h);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn single_long_run() {
        let mut t = WriteRunTracker::new();
        for _ in 0..5 {
            t.access(9, 3, true);
        }
        assert_eq!(t.finish().mean(), 5.0);
    }

    #[test]
    fn alternating_writers_give_runs_of_one() {
        let mut t = WriteRunTracker::new();
        for i in 0..10 {
            t.access(1, i % 2, true);
        }
        let s = t.finish();
        assert_eq!(s.mean(), 1.0);
        assert_eq!(s.count(), 10);
    }

    #[test]
    fn own_reads_do_not_break_runs() {
        let mut t = WriteRunTracker::new();
        t.access(1, 0, true);
        t.access(1, 0, false); // own read
        t.access(1, 0, true);
        assert_eq!(t.finish().mean(), 2.0);
    }

    #[test]
    fn foreign_read_breaks_run() {
        let mut t = WriteRunTracker::new();
        t.access(1, 0, true);
        t.access(1, 0, true);
        t.access(1, 1, false); // foreign read intervenes
        t.access(1, 0, true);
        let s = t.finish();
        // Runs: [2], [1] -> mean 1.5
        assert_eq!(s.mean(), 1.5);
        assert_eq!(s.count(), 2);
    }

    #[test]
    fn locations_are_independent() {
        let mut t = WriteRunTracker::new();
        t.access(1, 0, true);
        t.access(2, 1, true);
        t.access(1, 0, true);
        t.access(2, 1, true);
        let s = t.finish();
        assert_eq!(s.mean(), 2.0);
        assert_eq!(s.count(), 2);
    }

    #[test]
    fn reads_only_produce_no_runs() {
        let mut t = WriteRunTracker::new();
        t.access(1, 0, false);
        t.access(1, 1, false);
        let s = t.finish();
        assert_eq!(s.count(), 0);
    }

    #[test]
    fn completed_excludes_in_progress() {
        let mut t = WriteRunTracker::new();
        t.access(1, 0, true);
        t.access(1, 1, true); // run of 1 completed, run of 1 in progress
        assert_eq!(t.completed().count(), 1);
        assert_eq!(t.finish().count(), 2);
    }

    #[test]
    fn paper_style_lock_pattern() {
        // Acquire (write), release (write), then another processor
        // acquires: write-run length 2, as in LocusRoute/Cholesky (~1.7).
        let mut t = WriteRunTracker::new();
        for round in 0..100u32 {
            let p = round % 4;
            t.access(7, p, true); // acquire
            t.access(7, p, true); // release
        }
        let s = t.finish();
        assert_eq!(s.mean(), 2.0);
    }
}
