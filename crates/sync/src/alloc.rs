//! Shared-memory layout for workloads.

use dsm_sim::{Addr, NodeId};

/// Hands out addresses for shared variables and arrays.
///
/// Each scalar gets its own cache line (synchronization variables must
/// not share lines with unrelated data, or false sharing would distort
/// the measurements). Lines are interleaved across home nodes by the
/// machine (`line_number % nodes`), and
/// [`word_at_home`](ShmAlloc::word_at_home) lets a workload pin a
/// variable to a specific home node.
///
/// # Example
///
/// ```
/// use dsm_sim::NodeId;
/// use dsm_sync::ShmAlloc;
///
/// let mut a = ShmAlloc::new(32, 64);
/// let x = a.word();
/// let y = a.word();
/// assert_ne!(x.line(32), y.line(32), "scalars get distinct lines");
/// let pinned = a.word_at_home(NodeId::new(5));
/// assert_eq!(pinned.line(32).home(64), NodeId::new(5));
/// ```
#[derive(Debug, Clone)]
pub struct ShmAlloc {
    line_size: u64,
    nodes: u32,
    next_line: u64,
}

impl ShmAlloc {
    /// Creates an allocator for a machine with the given line size and
    /// node count.
    ///
    /// # Panics
    ///
    /// Panics if `line_size` is not a power of two or `nodes` is zero.
    pub fn new(line_size: u64, nodes: u32) -> Self {
        assert!(
            line_size.is_power_of_two(),
            "line size must be a power of two"
        );
        assert!(nodes > 0, "need at least one node");
        ShmAlloc {
            line_size,
            nodes,
            next_line: 1,
        } // line 0 left unused
    }

    /// Allocates one word on its own fresh cache line.
    pub fn word(&mut self) -> Addr {
        let line = self.next_line;
        self.next_line += 1;
        Addr::new(line * self.line_size)
    }

    /// Allocates one word on a fresh line homed at `home`.
    pub fn word_at_home(&mut self, home: NodeId) -> Addr {
        let n = self.nodes as u64;
        let mut line = self.next_line;
        let target = home.as_u32() as u64;
        if line % n != target {
            line += (target + n - line % n) % n;
        }
        self.next_line = line + 1;
        Addr::new(line * self.line_size)
    }

    /// Allocates a contiguous array of `words` 64-bit words starting on
    /// a fresh line, returning its base address.
    pub fn array(&mut self, words: u64) -> Addr {
        let bytes = words * 8;
        let lines = bytes.div_ceil(self.line_size).max(1);
        let line = self.next_line;
        self.next_line += lines;
        Addr::new(line * self.line_size)
    }

    /// The line size this allocator was created with.
    pub fn line_size(&self) -> u64 {
        self.line_size
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn words_never_share_lines() {
        let mut a = ShmAlloc::new(32, 4);
        let addrs: Vec<Addr> = (0..16).map(|_| a.word()).collect();
        let mut lines: Vec<u64> = addrs.iter().map(|x| x.line(32).number()).collect();
        lines.dedup();
        assert_eq!(lines.len(), 16);
    }

    #[test]
    fn pinned_words_land_on_their_home() {
        let mut a = ShmAlloc::new(32, 8);
        for n in [0u32, 3, 7, 3, 0] {
            let addr = a.word_at_home(NodeId::new(n));
            assert_eq!(addr.line(32).home(8), NodeId::new(n));
        }
    }

    #[test]
    fn arrays_reserve_enough_lines() {
        let mut a = ShmAlloc::new(32, 4);
        let base = a.array(8); // 64 bytes = 2 lines
        let next = a.word();
        assert!(next.as_u64() >= base.as_u64() + 64);
    }

    #[test]
    fn array_of_zero_words_still_advances() {
        let mut a = ShmAlloc::new(32, 4);
        let x = a.array(0);
        let y = a.word();
        assert_ne!(x.line(32), y.line(32));
    }
}
