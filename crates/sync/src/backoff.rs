//! Bounded exponential backoff with jitter.

use dsm_sim::SimRng;

/// Bounded exponential backoff, as used by the paper's
/// test-and-test-and-set locks ("with bounded exponential backoff",
/// after Mellor-Crummey & Scott).
///
/// Each failure doubles the backoff window up to `max`; the actual delay
/// is drawn uniformly from `[1, window]`.
///
/// # Example
///
/// ```
/// use dsm_sim::SimRng;
/// use dsm_sync::Backoff;
///
/// let mut rng = SimRng::new(7);
/// let mut b = Backoff::new(16, 1024);
/// let first = b.next(&mut rng);
/// assert!((1..=16).contains(&first));
/// b.next(&mut rng);
/// let third = b.next(&mut rng);
/// assert!(third <= 64);
/// b.reset();
/// assert!(b.next(&mut rng) <= 16);
/// ```
#[derive(Debug, Clone)]
pub struct Backoff {
    initial: u64,
    max: u64,
    window: u64,
}

impl Backoff {
    /// Creates a backoff with the given initial and maximum windows.
    ///
    /// # Panics
    ///
    /// Panics if `initial` is zero or exceeds `max`.
    pub fn new(initial: u64, max: u64) -> Self {
        assert!(initial > 0, "initial backoff window must be positive");
        assert!(initial <= max, "initial window must not exceed the bound");
        Backoff {
            initial,
            max,
            window: initial,
        }
    }

    /// Draws the next delay and widens the window.
    pub fn next(&mut self, rng: &mut SimRng) -> u64 {
        let delay = 1 + rng.range(self.window);
        self.window = (self.window * 2).min(self.max);
        delay
    }

    /// Resets the window after a success.
    pub fn reset(&mut self) {
        self.window = self.initial;
    }

    /// Current window size (for tests).
    pub fn window(&self) -> u64 {
        self.window
    }
}

impl Default for Backoff {
    /// The defaults used by the paper-reproduction workloads: 16-cycle
    /// initial window bounded at 4096 cycles.
    fn default() -> Self {
        Backoff::new(16, 4096)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn grows_exponentially_to_bound() {
        let mut rng = SimRng::new(1);
        let mut b = Backoff::new(4, 32);
        assert_eq!(b.window(), 4);
        b.next(&mut rng);
        assert_eq!(b.window(), 8);
        b.next(&mut rng);
        b.next(&mut rng);
        assert_eq!(b.window(), 32);
        b.next(&mut rng);
        assert_eq!(b.window(), 32, "window is bounded");
    }

    #[test]
    fn delays_are_within_window() {
        let mut rng = SimRng::new(9);
        let mut b = Backoff::new(8, 8);
        for _ in 0..100 {
            let d = b.next(&mut rng);
            assert!((1..=8).contains(&d));
        }
    }

    #[test]
    fn reset_restores_initial() {
        let mut rng = SimRng::new(2);
        let mut b = Backoff::new(2, 64);
        for _ in 0..10 {
            b.next(&mut rng);
        }
        b.reset();
        assert_eq!(b.window(), 2);
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn zero_initial_rejected() {
        let _ = Backoff::new(0, 8);
    }
}
