//! The scalable tree barrier of Mellor-Crummey & Scott \[20\], used by the
//! Transitive Closure application for barrier synchronization.
//!
//! Each processor spins only on locations written by a bounded number of
//! other processors: arrival propagates up a 4-ary tree via per-child
//! "not ready" flags, and wakeup propagates down a binary tree via
//! per-processor sense words. All accesses are ordinary loads and
//! stores on the base write-invalidate protocol.

use crate::alloc::ShmAlloc;
use crate::submachine::{Step, SubMachine};
use dsm_protocol::{MemOp, OpResult};
use dsm_sim::{Addr, SimRng};

const ARRIVAL_ARITY: u32 = 4;
const WAKEUP_ARITY: u32 = 2;
const SPIN_DELAY: u64 = 4;

/// Shared layout of one tree barrier for `nprocs` processors.
///
/// Build once with [`TreeBarrier::layout`], feed
/// [`initial_values`](TreeBarrier::initial_values) to the machine
/// builder, and create one [`TreeBarrierWait`] per episode per
/// processor.
#[derive(Debug, Clone)]
pub struct TreeBarrier {
    nprocs: u32,
    /// Per processor: base of 4 consecutive child-not-ready words.
    childnotready: Vec<Addr>,
    /// Per processor: wakeup sense word.
    parentsense: Vec<Addr>,
}

impl TreeBarrier {
    /// Lays the barrier out in shared memory.
    ///
    /// # Panics
    ///
    /// Panics if `nprocs` is zero.
    pub fn layout(alloc: &mut ShmAlloc, nprocs: u32) -> Self {
        assert!(nprocs > 0, "barrier needs at least one processor");
        let childnotready = (0..nprocs)
            .map(|_| alloc.array(ARRIVAL_ARITY as u64))
            .collect();
        let parentsense = (0..nprocs).map(|_| alloc.word()).collect();
        TreeBarrier {
            nprocs,
            childnotready,
            parentsense,
        }
    }

    /// Number of participating processors.
    pub fn nprocs(&self) -> u32 {
        self.nprocs
    }

    fn has_arrival_child(&self, p: u32, slot: u32) -> bool {
        ARRIVAL_ARITY as u64 * p as u64 + slot as u64 + 1 < self.nprocs as u64
    }

    /// The (address, value) pairs that must be poked into memory before
    /// the first episode: each `childnotready` flag starts equal to
    /// `havechild`.
    pub fn initial_values(&self) -> Vec<(Addr, u64)> {
        let mut out = Vec::new();
        for p in 0..self.nprocs {
            for slot in 0..ARRIVAL_ARITY {
                let v = u64::from(self.has_arrival_child(p, slot));
                out.push((self.childnotready[p as usize] + slot as u64 * 8, v));
            }
            out.push((self.parentsense[p as usize], 0));
        }
        out
    }

    /// Creates the wait sub-machine for processor `p`'s next episode.
    /// `sense` must alternate 1, 0, 1, … across episodes (start at 1).
    pub fn wait(&self, p: u32, sense: u64) -> TreeBarrierWait {
        assert!(p < self.nprocs, "processor {p} out of range");
        let arrival_parent = if p == 0 {
            None
        } else {
            let parent = (p - 1) / ARRIVAL_ARITY;
            let slot = (p - 1) % ARRIVAL_ARITY;
            Some(self.childnotready[parent as usize] + slot as u64 * 8)
        };
        let wakeup_children = (1..=WAKEUP_ARITY)
            .map(|i| WAKEUP_ARITY * p + i)
            .filter(|&c| c < self.nprocs)
            .map(|c| self.parentsense[c as usize])
            .collect();
        TreeBarrierWait {
            own_flags: self.childnotready[p as usize],
            have_child: (0..ARRIVAL_ARITY)
                .map(|s| self.has_arrival_child(p, s))
                .collect(),
            arrival_parent,
            own_sense_word: self.parentsense[p as usize],
            wakeup_children,
            sense,
            state: WaitState::CheckChild(0),
        }
    }
}

/// One barrier episode for one processor.
#[derive(Debug, Clone)]
pub struct TreeBarrierWait {
    own_flags: Addr,
    have_child: Vec<bool>,
    arrival_parent: Option<Addr>,
    own_sense_word: Addr,
    wakeup_children: Vec<Addr>,
    sense: u64,
    state: WaitState,
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum WaitState {
    CheckChild(u32),
    WaitChild(u32),
    ResetChild(u32),
    NotifyParent,
    SpinParent,
    WaitParent,
    WakeChild(u32),
    Finished,
}

impl SubMachine for TreeBarrierWait {
    fn step(&mut self, last: Option<OpResult>, _rng: &mut SimRng) -> Step {
        loop {
            match self.state {
                WaitState::CheckChild(slot) => {
                    if slot >= ARRIVAL_ARITY {
                        self.state = WaitState::ResetChild(0);
                        continue;
                    }
                    if !self.have_child[slot as usize] {
                        self.state = WaitState::CheckChild(slot + 1);
                        continue;
                    }
                    self.state = WaitState::WaitChild(slot);
                    return Step::Op(MemOp::Load {
                        addr: self.own_flags + slot as u64 * 8,
                    });
                }
                WaitState::WaitChild(slot) => {
                    let v = last.expect("child flag read").value().expect("load value");
                    if v == 0 {
                        // This child arrived; check the next.
                        self.state = WaitState::CheckChild(slot + 1);
                        continue;
                    }
                    // Still waiting: re-read after a short spin.
                    self.state = WaitState::CheckChild(slot);
                    return Step::Compute(SPIN_DELAY);
                }
                WaitState::ResetChild(slot) => {
                    if slot >= ARRIVAL_ARITY {
                        self.state = WaitState::NotifyParent;
                        continue;
                    }
                    if !self.have_child[slot as usize] {
                        self.state = WaitState::ResetChild(slot + 1);
                        continue;
                    }
                    self.state = WaitState::ResetChild(slot + 1);
                    return Step::Op(MemOp::Store {
                        addr: self.own_flags + slot as u64 * 8,
                        value: 1,
                    });
                }
                WaitState::NotifyParent => {
                    match self.arrival_parent {
                        Some(slot_addr) => {
                            self.state = WaitState::SpinParent;
                            return Step::Op(MemOp::Store {
                                addr: slot_addr,
                                value: 0,
                            });
                        }
                        None => {
                            // Root: go straight to waking children.
                            self.state = WaitState::WakeChild(0);
                            continue;
                        }
                    }
                }
                WaitState::SpinParent => {
                    self.state = WaitState::WaitParent;
                    return Step::Op(MemOp::Load {
                        addr: self.own_sense_word,
                    });
                }
                WaitState::WaitParent => {
                    let v = last.expect("sense read").value().expect("load value");
                    if v == self.sense {
                        self.state = WaitState::WakeChild(0);
                        continue;
                    }
                    self.state = WaitState::SpinParent;
                    return Step::Compute(SPIN_DELAY);
                }
                WaitState::WakeChild(i) => {
                    if (i as usize) < self.wakeup_children.len() {
                        let addr = self.wakeup_children[i as usize];
                        self.state = WaitState::WakeChild(i + 1);
                        return Step::Op(MemOp::Store {
                            addr,
                            value: self.sense,
                        });
                    }
                    self.state = WaitState::Finished;
                    return Step::Done;
                }
                WaitState::Finished => return Step::Done,
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn layout_is_disjoint() {
        let mut alloc = ShmAlloc::new(32, 8);
        let b = TreeBarrier::layout(&mut alloc, 8);
        let mut lines: Vec<u64> = b
            .childnotready
            .iter()
            .chain(b.parentsense.iter())
            .map(|a| a.line(32).number())
            .collect();
        lines.sort_unstable();
        lines.dedup();
        assert_eq!(lines.len(), 16, "every structure on its own line");
    }

    #[test]
    fn initial_values_match_tree_shape() {
        let mut alloc = ShmAlloc::new(32, 8);
        let b = TreeBarrier::layout(&mut alloc, 6);
        let init = b.initial_values();
        // Proc 0 has arrival children 1..=4 (all exist), proc 1 has
        // child 5 in slot 0 only, procs 2+ have none.
        let flag = |p: usize, s: u64| {
            init.iter()
                .find(|(a, _)| *a == b.childnotready[p] + s * 8)
                .map(|(_, v)| *v)
                .unwrap()
        };
        for s in 0..4 {
            assert_eq!(flag(0, s), 1);
        }
        assert_eq!(flag(1, 0), 1);
        assert_eq!(flag(1, 1), 0);
        assert_eq!(flag(2, 0), 0);
    }

    #[test]
    fn single_processor_barrier_is_trivial() {
        let mut alloc = ShmAlloc::new(32, 1);
        let b = TreeBarrier::layout(&mut alloc, 1);
        let mut w = b.wait(0, 1);
        let mut rng = SimRng::new(1);
        // No children, no parent: immediately done.
        assert_eq!(w.step(None, &mut rng), Step::Done);
    }

    /// Sequentially simulate all processors' episodes against one
    /// shared word map, round-robin, and check nobody exits the barrier
    /// before everyone arrived.
    #[test]
    fn all_exit_only_after_all_arrive() {
        use std::collections::HashMap;
        let nprocs = 10u32;
        let mut alloc = ShmAlloc::new(32, nprocs);
        let b = TreeBarrier::layout(&mut alloc, nprocs);
        let mut mem: HashMap<u64, u64> = b
            .initial_values()
            .into_iter()
            .map(|(a, v)| (a.as_u64(), v))
            .collect();

        let mut rng = SimRng::new(2);
        let mut waits: Vec<TreeBarrierWait> = (0..nprocs).map(|p| b.wait(p, 1)).collect();
        let mut last: Vec<Option<OpResult>> = vec![None; nprocs as usize];
        let mut done = vec![false; nprocs as usize];
        // Hold processor 7 back for a while.
        let delayed: usize = 7;
        let mut ticks = 0;
        while !done.iter().all(|&d| d) {
            ticks += 1;
            assert!(ticks < 100_000, "barrier did not complete");
            for p in 0..nprocs as usize {
                if done[p] || (p == delayed && ticks < 50) {
                    continue;
                }
                match waits[p].step(last[p].take(), &mut rng) {
                    Step::Op(MemOp::Load { addr }) => {
                        last[p] = Some(OpResult::Loaded {
                            value: mem.get(&addr.as_u64()).copied().unwrap_or(0),
                            serial: None,
                            reserved: false,
                        });
                    }
                    Step::Op(MemOp::Store { addr, value }) => {
                        mem.insert(addr.as_u64(), value);
                        last[p] = Some(OpResult::Stored);
                    }
                    Step::Op(other) => panic!("barrier issued {other:?}"),
                    Step::Compute(_) => {}
                    Step::Done => {
                        done[p] = true;
                        assert!(
                            ticks >= 50,
                            "processor {p} exited before the delayed processor arrived"
                        );
                    }
                }
            }
        }
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn out_of_range_processor_rejected() {
        let mut alloc = ShmAlloc::new(32, 4);
        let b = TreeBarrier::layout(&mut alloc, 4);
        let _ = b.wait(4, 1);
    }
}
