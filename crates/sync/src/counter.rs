//! Lock-free counter updates (the workload of Figure 3).

use crate::primitive::{PrimChoice, Primitive};
use crate::submachine::{Step, SubMachine};
use dsm_protocol::{MemOp, OpResult, PhiOp};
use dsm_sim::{Addr, SimRng};

/// One lock-free increment of a shared counter, built from the chosen
/// primitive:
///
/// * **FAΦ** — a single `fetch_and_add`;
/// * **CAS** — read (optionally `load_exclusive`) then a
///   `compare_and_swap` retry loop (failed CAS retries directly with the
///   observed value);
/// * **LL/SC** — `load_linked` / `store_conditional` retry loop.
///
/// With [`PrimChoice::drop_copy`] set, a `drop_copy` follows the
/// successful update.
///
/// # Example
///
/// ```
/// use dsm_sim::{Addr, SimRng};
/// use dsm_sync::{drive_sync, LockFreeIncr, PrimChoice, Primitive};
/// use dsm_protocol::{MemOp, OpResult, PhiOp};
///
/// let mut rng = SimRng::new(1);
/// let mut incr = LockFreeIncr::new(Addr::new(32), PrimChoice::plain(Primitive::FetchPhi));
/// let mut value = 10u64;
/// let ops = drive_sync(&mut incr, &mut rng, 100, |op| match op {
///     MemOp::FetchPhi { op: PhiOp::Add(k), .. } => {
///         let old = value;
///         value += k;
///         OpResult::Fetched { old }
///     }
///     other => panic!("unexpected op {other:?}"),
/// });
/// assert_eq!(ops, 1);
/// assert_eq!(value, 11);
/// ```
#[derive(Debug, Clone)]
pub struct LockFreeIncr {
    counter: Addr,
    choice: PrimChoice,
    amount: u64,
    state: State,
    observed: Option<u64>,
    /// Number of failed update attempts (for retry statistics).
    pub retries: u64,
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum State {
    Start,
    WaitFetch,
    WaitLoad,
    WaitCas,
    WaitLl,
    WaitSc,
    WaitDrop,
}

impl LockFreeIncr {
    /// Creates an increment-by-one of `counter`.
    pub fn new(counter: Addr, choice: PrimChoice) -> Self {
        Self::by(counter, choice, 1)
    }

    /// Creates an increment by `amount`.
    pub fn by(counter: Addr, choice: PrimChoice, amount: u64) -> Self {
        LockFreeIncr {
            counter,
            choice,
            amount,
            state: State::Start,
            observed: None,
            retries: 0,
        }
    }

    /// Resets the sub-machine for another increment.
    pub fn reset(&mut self) {
        self.state = State::Start;
    }

    /// The value the counter held just before the successful update,
    /// captured when the sub-machine finishes.
    pub fn observed(&self) -> Option<u64> {
        self.observed
    }
}

impl SubMachine for LockFreeIncr {
    fn step(&mut self, last: Option<OpResult>, _rng: &mut SimRng) -> Step {
        match self.state {
            State::Start => match self.choice.prim {
                Primitive::FetchPhi => {
                    self.state = State::WaitFetch;
                    Step::Op(MemOp::FetchPhi {
                        addr: self.counter,
                        op: PhiOp::Add(self.amount),
                    })
                }
                Primitive::Cas => {
                    self.state = State::WaitLoad;
                    if self.choice.load_exclusive {
                        Step::Op(MemOp::LoadExclusive { addr: self.counter })
                    } else {
                        Step::Op(MemOp::Load { addr: self.counter })
                    }
                }
                Primitive::Llsc => {
                    self.state = State::WaitLl;
                    Step::Op(MemOp::LoadLinked { addr: self.counter })
                }
            },
            State::WaitFetch => {
                let OpResult::Fetched { old } = last.expect("result of fetch_and_add") else {
                    panic!("expected Fetched result");
                };
                self.observed = Some(old);
                self.finish()
            }
            State::WaitLoad => {
                let value = last
                    .expect("result of load")
                    .value()
                    .expect("load carries a value");
                self.state = State::WaitCas;
                Step::Op(MemOp::Cas {
                    addr: self.counter,
                    expected: value,
                    new: value.wrapping_add(self.amount),
                })
            }
            State::WaitCas => match last.expect("result of CAS") {
                OpResult::CasDone {
                    success: true,
                    observed,
                } => {
                    self.observed = Some(observed);
                    self.finish()
                }
                OpResult::CasDone {
                    success: false,
                    observed,
                } => {
                    // Retry directly with the freshly observed value.
                    self.retries += 1;
                    Step::Op(MemOp::Cas {
                        addr: self.counter,
                        expected: observed,
                        new: observed.wrapping_add(self.amount),
                    })
                }
                other => panic!("expected CasDone, got {other:?}"),
            },
            State::WaitLl => {
                let OpResult::Loaded { value, serial, .. } = last.expect("result of LL") else {
                    panic!("expected Loaded result");
                };
                self.state = State::WaitSc;
                self.observed = Some(value);
                Step::Op(MemOp::StoreConditional {
                    addr: self.counter,
                    value: value.wrapping_add(self.amount),
                    serial,
                })
            }
            State::WaitSc => match last.expect("result of SC") {
                OpResult::ScDone { success: true } => self.finish(),
                OpResult::ScDone { success: false } => {
                    self.retries += 1;
                    self.state = State::WaitLl;
                    Step::Op(MemOp::LoadLinked { addr: self.counter })
                }
                other => panic!("expected ScDone, got {other:?}"),
            },
            State::WaitDrop => {
                self.state = State::Start;
                Step::Done
            }
        }
    }
}

impl LockFreeIncr {
    fn finish(&mut self) -> Step {
        if self.choice.drop_copy {
            self.state = State::WaitDrop;
            Step::Op(MemOp::DropCopy { addr: self.counter })
        } else {
            self.state = State::Start;
            Step::Done
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::submachine::drive_sync;

    /// A tiny sequential memory for driving sub-machines.
    pub(crate) struct TestMem {
        pub value: u64,
        pub reserved: bool,
        pub fail_first_n: u64,
    }

    impl TestMem {
        pub(crate) fn eval(&mut self, op: MemOp) -> OpResult {
            match op {
                MemOp::Load { .. } | MemOp::LoadExclusive { .. } => OpResult::Loaded {
                    value: self.value,
                    serial: None,
                    reserved: false,
                },
                MemOp::LoadLinked { .. } => {
                    self.reserved = true;
                    OpResult::Loaded {
                        value: self.value,
                        serial: None,
                        reserved: true,
                    }
                }
                MemOp::Store { value, .. } => {
                    self.value = value;
                    OpResult::Stored
                }
                MemOp::FetchPhi { op, .. } => {
                    let old = self.value;
                    self.value = op.apply(old);
                    OpResult::Fetched { old }
                }
                MemOp::Cas { expected, new, .. } => {
                    let observed = self.value;
                    if self.fail_first_n > 0 {
                        self.fail_first_n -= 1;
                        // Simulate interference: someone else bumped it.
                        self.value += 1;
                        OpResult::CasDone {
                            success: false,
                            observed,
                        }
                    } else if observed == expected {
                        self.value = new;
                        OpResult::CasDone {
                            success: true,
                            observed,
                        }
                    } else {
                        OpResult::CasDone {
                            success: false,
                            observed,
                        }
                    }
                }
                MemOp::StoreConditional { value, .. } => {
                    if self.fail_first_n > 0 {
                        self.fail_first_n -= 1;
                        self.reserved = false;
                    }
                    if self.reserved {
                        self.value = value;
                        self.reserved = false;
                        OpResult::ScDone { success: true }
                    } else {
                        OpResult::ScDone { success: false }
                    }
                }
                MemOp::DropCopy { .. } => OpResult::Stored,
            }
        }
    }

    #[test]
    fn fap_increment_is_one_op() {
        let mut mem = TestMem {
            value: 5,
            reserved: false,
            fail_first_n: 0,
        };
        let mut rng = SimRng::new(1);
        let mut incr = LockFreeIncr::new(Addr::new(32), PrimChoice::plain(Primitive::FetchPhi));
        let ops = drive_sync(&mut incr, &mut rng, 10, |op| mem.eval(op));
        assert_eq!(ops, 1);
        assert_eq!(mem.value, 6);
        assert_eq!(incr.observed(), Some(5));
    }

    #[test]
    fn cas_increment_retries_until_success() {
        let mut mem = TestMem {
            value: 0,
            reserved: false,
            fail_first_n: 3,
        };
        let mut rng = SimRng::new(1);
        let mut incr = LockFreeIncr::new(Addr::new(32), PrimChoice::plain(Primitive::Cas));
        let ops = drive_sync(&mut incr, &mut rng, 100, |op| mem.eval(op));
        // 1 load + 5 CAS attempts: 3 forced failures (each bumping the
        // value as interference), one stale-expected failure, 1 success.
        assert_eq!(ops, 6);
        assert_eq!(incr.retries, 4);
        assert_eq!(mem.value, 4, "three interfering bumps plus our increment");
    }

    #[test]
    fn llsc_increment_retries_with_fresh_ll() {
        let mut mem = TestMem {
            value: 7,
            reserved: false,
            fail_first_n: 2,
        };
        let mut rng = SimRng::new(1);
        let mut incr = LockFreeIncr::new(Addr::new(32), PrimChoice::plain(Primitive::Llsc));
        let ops = drive_sync(&mut incr, &mut rng, 100, |op| mem.eval(op));
        // (LL + SC-fail) x2 then LL + SC-success.
        assert_eq!(ops, 6);
        assert_eq!(mem.value, 8);
    }

    #[test]
    fn drop_copy_appends_a_drop() {
        let mut mem = TestMem {
            value: 0,
            reserved: false,
            fail_first_n: 0,
        };
        let mut rng = SimRng::new(1);
        let mut incr = LockFreeIncr::new(
            Addr::new(32),
            PrimChoice::plain(Primitive::FetchPhi).with_drop_copy(),
        );
        let mut saw_drop = false;
        drive_sync(&mut incr, &mut rng, 10, |op| {
            if matches!(op, MemOp::DropCopy { .. }) {
                saw_drop = true;
            }
            mem.eval(op)
        });
        assert!(saw_drop);
    }

    #[test]
    fn load_exclusive_is_used_when_requested() {
        let mut mem = TestMem {
            value: 0,
            reserved: false,
            fail_first_n: 0,
        };
        let mut rng = SimRng::new(1);
        let mut incr = LockFreeIncr::new(
            Addr::new(32),
            PrimChoice::plain(Primitive::Cas).with_load_exclusive(),
        );
        let mut saw_lx = false;
        drive_sync(&mut incr, &mut rng, 10, |op| {
            if matches!(op, MemOp::LoadExclusive { .. }) {
                saw_lx = true;
            }
            mem.eval(op)
        });
        assert!(saw_lx);
    }

    #[test]
    fn reset_allows_reuse() {
        let mut mem = TestMem {
            value: 0,
            reserved: false,
            fail_first_n: 0,
        };
        let mut rng = SimRng::new(1);
        let mut incr = LockFreeIncr::new(Addr::new(32), PrimChoice::plain(Primitive::FetchPhi));
        drive_sync(&mut incr, &mut rng, 10, |op| mem.eval(op));
        incr.reset();
        drive_sync(&mut incr, &mut rng, 10, |op| mem.eval(op));
        assert_eq!(mem.value, 2);
    }
}
