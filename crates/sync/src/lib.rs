//! Synchronization algorithms built from the simulated atomic
//! primitives.
//!
//! Everything here is expressed as composable [`SubMachine`]s — program
//! fragments that issue memory operations and consume their results —
//! so the same algorithm implementation runs on every primitive
//! implementation (INV/UPD/UNC × FAΦ/LL-SC/CAS) the paper compares:
//!
//! * [`LockFreeIncr`] — lock-free counter update (Figure 3);
//! * [`TtsAcquire`]/[`TtsRelease`] — test-and-test-and-set lock with
//!   bounded exponential [`Backoff`] (Figure 4, LocusRoute, Cholesky);
//! * [`McsAcquire`]/[`McsRelease`] — the MCS queue lock, including the
//!   swap-only release variant for machines with only `fetch_and_Φ`
//!   (Figure 5);
//! * [`TreeBarrier`] — the scalable tree barrier used by Transitive
//!   Closure;
//! * [`lockfree`] — the lock-free data-structure tier (Michael–Scott
//!   queue, Harris list, bucket hash map) over native or Blelloch–Wei
//!   emulated LL/SC;
//! * [`ShmAlloc`] — shared-memory layout helper.
//!
//! Naming note: the Michael–Scott *queue* types are exported with an
//! `Ms` prefix ([`MsQueue`], [`MsEnqueue`], [`MsDequeue`]) and the MCS
//! *lock* types with an `Mcs` prefix ([`McsLock`], [`McsAcquire`],
//! [`McsRelease`], [`McsQnode`]); both families stay re-exported here
//! side by side, and `tests/sync_exports.rs` pins that down.

#![warn(missing_docs)]

pub mod alloc;
pub mod backoff;
pub mod barrier;
pub mod counter;
pub mod lockfree;
pub mod mcs;
pub mod primitive;
pub mod rwlock;
pub mod stack;
pub mod submachine;
pub mod tts;

pub use alloc::ShmAlloc;
pub use backoff::Backoff;
pub use barrier::{TreeBarrier, TreeBarrierWait};
pub use counter::LockFreeIncr;
pub use lockfree::list::{HarrisList, ListContains, ListInsert, ListRemove};
pub use lockfree::map::{BucketMap, MapContains, MapInsert, MapRemove};
pub use lockfree::queue::{MsDequeue, MsEnqueue, MsQueue};
pub use lockfree::LinkPrim;
pub use mcs::{McsAcquire, McsLock, McsQnode, McsRelease};
pub use primitive::{PrimChoice, Primitive};
pub use rwlock::{ReadAcquire, ReadRelease, WriteAcquire, WriteRelease};
pub use stack::{StackPop, StackPrim, StackPush};
pub use submachine::{drive_sync, Step, SubMachine};
pub use tts::{TtsAcquire, TtsRelease};
