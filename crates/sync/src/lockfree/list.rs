//! The Harris sorted linked list with logical deletion.
//!
//! Layout: like the queue, a node is one cache line (word 0 the `next`
//! link, word 1 the key) named by its `next`-word address; 0 is nil.
//! The list is a single head link word pointing at the first node, and
//! nodes are kept in strictly ascending key order.
//!
//! Deletion is two-phase: a remove first *marks* its victim by setting
//! bit 0 of the victim's own `next` word (the logical delete — a
//! marked node's `next` is frozen, because every conditional update
//! validates against an unmarked value), then unlinks it from its
//! predecessor (the physical delete, finished by whoever notices the
//! marked node during a later traversal). Traversals use plain loads
//! only; the conditional updates — snipping a marked node, linking a
//! new node, setting a mark — each use one [`link_load`]/[`link_update`]
//! pair whose token comes from the read that justified the update.

use super::{
    clear_mark, decode, is_marked, link_load, link_ok, link_token, link_update, with_mark,
    LinkPrim, PrivInit,
};
use crate::submachine::{Step, SubMachine};
use dsm_protocol::{MemOp, OpResult};
use dsm_sim::{Addr, SimRng};

/// The head link word naming a Harris list.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct HarrisList {
    /// Head link word; points at the first node (0 when empty).
    pub head: Addr,
}

/// Shared search phase: walks the list to the first node whose key is
/// `>= key`, snipping marked nodes out of the chain along the way.
///
/// After [`Step::Done`]: [`prev`](Search::prev) is the link word to
/// update for an insert or unlink (the head, or a node's `next` word),
/// [`cur`](Search::cur) the found node (0 if the walk hit nil), and
/// [`cur_key`](Search::cur_key) its key.
#[derive(Debug, Clone)]
pub(crate) struct Search {
    head: Addr,
    key: u64,
    prim: LinkPrim,
    state: SState,
    prev: u64,
    cur: u64,
    cur_key: u64,
    /// Walks restarted after a lost snip race (for statistics).
    pub restarts: u64,
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum SState {
    Start,
    WaitHead,
    Inspect,
    WaitCurWord,
    WaitSnipLl { succ: u64 },
    WaitSnip { succ: u64 },
    WaitKey { cw: u64 },
    Found,
}

impl Search {
    pub(crate) fn new(list: HarrisList, key: u64, prim: LinkPrim) -> Self {
        Search {
            head: list.head,
            key,
            prim,
            state: SState::Start,
            prev: list.head.as_u64(),
            cur: 0,
            cur_key: 0,
            restarts: 0,
        }
    }

    /// The link word preceding [`cur`](Search::cur).
    pub(crate) fn prev(&self) -> Addr {
        Addr::new(self.prev)
    }

    /// The first node with key `>= key`, or 0.
    pub(crate) fn cur(&self) -> u64 {
        self.cur
    }

    /// [`cur`](Search::cur)'s key (meaningless when `cur == 0`).
    pub(crate) fn cur_key(&self) -> u64 {
        self.cur_key
    }

    fn restart(&mut self, rng: &mut SimRng) -> Step {
        self.restarts += 1;
        self.state = SState::Start;
        self.step(None, rng)
    }
}

impl SubMachine for Search {
    fn step(&mut self, last: Option<OpResult>, rng: &mut SimRng) -> Step {
        match self.state {
            SState::Start => {
                self.prev = self.head.as_u64();
                self.state = SState::WaitHead;
                Step::Op(MemOp::Load { addr: self.head })
            }
            SState::WaitHead => {
                // The head word is never marked.
                self.cur = decode(
                    self.prim,
                    last.expect("head read").value().expect("load value"),
                );
                self.state = SState::Inspect;
                self.step(None, rng)
            }
            SState::Inspect => {
                if self.cur == 0 {
                    self.state = SState::Found;
                    return Step::Done;
                }
                self.state = SState::WaitCurWord;
                Step::Op(MemOp::Load {
                    addr: Addr::new(self.cur),
                })
            }
            SState::WaitCurWord => {
                let cw = decode(
                    self.prim,
                    last.expect("cur word").value().expect("load value"),
                );
                if is_marked(cw) {
                    // cur is logically deleted: snip it out of prev
                    // before moving on. The token must confirm prev
                    // still points at cur (and is itself unmarked).
                    self.state = SState::WaitSnipLl {
                        succ: clear_mark(cw),
                    };
                    return Step::Op(link_load(self.prim, Addr::new(self.prev)));
                }
                self.state = SState::WaitKey { cw };
                Step::Op(MemOp::Load {
                    addr: Addr::new(self.cur + 8),
                })
            }
            SState::WaitSnipLl { succ } => {
                let tok = link_token(self.prim, &last.expect("snip prev read"));
                if tok.value != self.cur {
                    // prev moved (or got marked) under us.
                    return self.restart(rng);
                }
                self.state = SState::WaitSnip { succ };
                Step::Op(link_update(self.prim, Addr::new(self.prev), &tok, succ))
            }
            SState::WaitSnip { succ } => {
                if link_ok(&last.expect("snip result")) {
                    // Chain now skips the marked node; keep walking
                    // from its (frozen) successor.
                    self.cur = succ;
                    self.state = SState::Inspect;
                    self.step(None, rng)
                } else {
                    self.restart(rng)
                }
            }
            SState::WaitKey { cw } => {
                let k = last.expect("key read").value().expect("load value");
                if k >= self.key {
                    self.cur_key = k;
                    self.state = SState::Found;
                    return Step::Done;
                }
                // Advance: cur was unmarked when read, so it may serve
                // as the next prev, and cw is its successor.
                self.prev = self.cur;
                self.cur = cw;
                self.state = SState::Inspect;
                self.step(None, rng)
            }
            SState::Found => Step::Done,
        }
    }
}

/// One insert of `node` (carrying `key`) into the list; duplicate keys
/// are rejected.
///
/// After [`Step::Done`], [`inserted`](ListInsert::inserted) reports
/// whether the key was added (`false` if already present).
#[derive(Debug, Clone)]
pub struct ListInsert {
    list: HarrisList,
    node: Addr,
    key: u64,
    prim: LinkPrim,
    search: Search,
    init: PrivInit,
    state: IState,
    result: Option<bool>,
    /// Lost publication races (for statistics).
    pub retries: u64,
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum IState {
    StoreKey,
    WaitKey,
    Searching,
    Initing,
    WaitPrevLl,
    WaitSwap,
    Finished,
}

impl ListInsert {
    /// Creates an insert of the node whose `next` word is at `node`.
    pub fn new(list: HarrisList, node: Addr, key: u64, prim: LinkPrim) -> Self {
        ListInsert {
            list,
            node,
            key,
            prim,
            search: Search::new(list, key, prim),
            init: PrivInit::new(node, 0, prim),
            state: IState::StoreKey,
            result: None,
            retries: 0,
        }
    }

    /// `true` if the key was inserted, `false` if it was already
    /// present. Meaningful only after the sub-machine finishes.
    pub fn inserted(&self) -> Option<bool> {
        self.result
    }

    fn research(&mut self, rng: &mut SimRng) -> Step {
        self.retries += 1;
        self.search = Search::new(self.list, self.key, self.prim);
        self.state = IState::Searching;
        self.step(None, rng)
    }
}

impl SubMachine for ListInsert {
    fn step(&mut self, last: Option<OpResult>, rng: &mut SimRng) -> Step {
        match self.state {
            IState::StoreKey => {
                self.state = IState::WaitKey;
                Step::Op(MemOp::Store {
                    addr: Addr::new(self.node.as_u64() + 8),
                    value: self.key,
                })
            }
            IState::WaitKey => {
                last.expect("key store");
                self.state = IState::Searching;
                self.step(None, rng)
            }
            IState::Searching => match self.search.step(last, rng) {
                Step::Done => {
                    if self.search.cur() != 0 && self.search.cur_key() == self.key {
                        self.result = Some(false);
                        self.state = IState::Finished;
                        return Step::Done;
                    }
                    // Privately point our node at the successor.
                    self.init = PrivInit::new(self.node, self.search.cur(), self.prim);
                    self.state = IState::Initing;
                    self.step(None, rng)
                }
                s => s,
            },
            IState::Initing => match self.init.step(last, rng) {
                Step::Done => {
                    self.state = IState::WaitPrevLl;
                    Step::Op(link_load(self.prim, self.search.prev()))
                }
                s => s,
            },
            IState::WaitPrevLl => {
                let tok = link_token(self.prim, &last.expect("prev read"));
                if tok.value != self.search.cur() {
                    // prev moved, got marked, or gained a node.
                    return self.research(rng);
                }
                self.state = IState::WaitSwap;
                Step::Op(link_update(
                    self.prim,
                    self.search.prev(),
                    &tok,
                    self.node.as_u64(),
                ))
            }
            IState::WaitSwap => {
                if link_ok(&last.expect("swap result")) {
                    self.result = Some(true);
                    self.state = IState::Finished;
                    Step::Done
                } else {
                    self.research(rng)
                }
            }
            IState::Finished => Step::Done,
        }
    }
}

/// One remove of `key` from the list.
///
/// After [`Step::Done`], [`removed`](ListRemove::removed) reports
/// whether this operation deleted the key (`false` if absent).
#[derive(Debug, Clone)]
pub struct ListRemove {
    list: HarrisList,
    key: u64,
    prim: LinkPrim,
    search: Search,
    state: RState,
    result: Option<bool>,
    /// Lost marking races (for statistics).
    pub retries: u64,
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum RState {
    Searching,
    WaitCurLl,
    WaitMark { succ: u64 },
    WaitPrevLl { succ: u64 },
    WaitUnlink,
    Finished,
}

impl ListRemove {
    /// Creates a remove.
    pub fn new(list: HarrisList, key: u64, prim: LinkPrim) -> Self {
        ListRemove {
            list,
            key,
            prim,
            search: Search::new(list, key, prim),
            state: RState::Searching,
            result: None,
            retries: 0,
        }
    }

    /// `true` if this operation deleted the key, `false` if it was
    /// absent. Meaningful only after the sub-machine finishes.
    pub fn removed(&self) -> Option<bool> {
        self.result
    }

    fn research(&mut self, rng: &mut SimRng) -> Step {
        self.retries += 1;
        self.search = Search::new(self.list, self.key, self.prim);
        self.state = RState::Searching;
        self.step(None, rng)
    }

    fn finish(&mut self, deleted: bool) -> Step {
        self.result = Some(deleted);
        self.state = RState::Finished;
        Step::Done
    }
}

impl SubMachine for ListRemove {
    fn step(&mut self, last: Option<OpResult>, rng: &mut SimRng) -> Step {
        match self.state {
            RState::Searching => match self.search.step(last, rng) {
                Step::Done => {
                    if self.search.cur() == 0 || self.search.cur_key() != self.key {
                        return self.finish(false);
                    }
                    // Logical delete: mark the victim's own next word.
                    self.state = RState::WaitCurLl;
                    Step::Op(link_load(self.prim, Addr::new(self.search.cur())))
                }
                s => s,
            },
            RState::WaitCurLl => {
                let tok = link_token(self.prim, &last.expect("cur read"));
                if is_marked(tok.value) {
                    // Someone else is deleting it; re-search (the key
                    // may yet reappear under a fresh node).
                    return self.research(rng);
                }
                self.state = RState::WaitMark { succ: tok.value };
                Step::Op(link_update(
                    self.prim,
                    Addr::new(self.search.cur()),
                    &tok,
                    with_mark(tok.value),
                ))
            }
            RState::WaitMark { succ } => {
                if !link_ok(&last.expect("mark result")) {
                    return self.research(rng);
                }
                // Physical delete, best effort: unlink from prev. If
                // prev moved on, a later traversal snips the node.
                self.state = RState::WaitPrevLl { succ };
                Step::Op(link_load(self.prim, self.search.prev()))
            }
            RState::WaitPrevLl { succ } => {
                let tok = link_token(self.prim, &last.expect("prev read"));
                if tok.value != self.search.cur() {
                    return self.finish(true);
                }
                self.state = RState::WaitUnlink;
                Step::Op(link_update(self.prim, self.search.prev(), &tok, succ))
            }
            RState::WaitUnlink => {
                let _ = link_ok(&last.expect("unlink result"));
                self.finish(true)
            }
            RState::Finished => Step::Done,
        }
    }
}

/// One membership query for `key`.
///
/// A read-only traversal: marked nodes are skipped (not snipped), so a
/// contains never writes shared memory.
///
/// After [`Step::Done`], [`found`](ListContains::found) reports
/// membership.
#[derive(Debug, Clone)]
pub struct ListContains {
    key: u64,
    prim: LinkPrim,
    state: CState,
    result: Option<bool>,
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum CState {
    Start { head: Addr },
    WaitHead,
    Inspect { cur: u64 },
    WaitWord { cur: u64 },
    WaitKey { cw: u64 },
    Finished,
}

impl ListContains {
    /// Creates a membership query.
    pub fn new(list: HarrisList, key: u64, prim: LinkPrim) -> Self {
        ListContains {
            key,
            prim,
            state: CState::Start { head: list.head },
            result: None,
        }
    }

    /// `true` if the key was present. Meaningful only after the
    /// sub-machine finishes.
    pub fn found(&self) -> Option<bool> {
        self.result
    }

    fn finish(&mut self, found: bool) -> Step {
        self.result = Some(found);
        self.state = CState::Finished;
        Step::Done
    }
}

impl SubMachine for ListContains {
    // `rng` is part of the trait signature; this machine only threads
    // it through its state-advance recursion.
    #[allow(clippy::only_used_in_recursion)]
    fn step(&mut self, last: Option<OpResult>, rng: &mut SimRng) -> Step {
        match self.state {
            CState::Start { head } => {
                self.state = CState::WaitHead;
                Step::Op(MemOp::Load { addr: head })
            }
            CState::WaitHead => {
                let cur = decode(
                    self.prim,
                    last.expect("head read").value().expect("load value"),
                );
                self.state = CState::Inspect { cur };
                self.step(None, rng)
            }
            CState::Inspect { cur } => {
                if cur == 0 {
                    return self.finish(false);
                }
                self.state = CState::WaitWord { cur };
                Step::Op(MemOp::Load {
                    addr: Addr::new(cur),
                })
            }
            CState::WaitWord { cur } => {
                let cw = decode(
                    self.prim,
                    last.expect("cur word").value().expect("load value"),
                );
                if is_marked(cw) {
                    // Logically deleted: skip without snipping.
                    self.state = CState::Inspect {
                        cur: clear_mark(cw),
                    };
                    return self.step(None, rng);
                }
                self.state = CState::WaitKey { cw };
                Step::Op(MemOp::Load {
                    addr: Addr::new(cur + 8),
                })
            }
            CState::WaitKey { cw } => {
                let k = last.expect("key read").value().expect("load value");
                if k == self.key {
                    return self.finish(true);
                }
                if k > self.key {
                    return self.finish(false);
                }
                self.state = CState::Inspect { cur: cw };
                self.step(None, rng)
            }
            CState::Finished => Step::Done,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lockfree::testmem::Mem;
    use crate::submachine::drive_sync;

    const HEAD: Addr = Addr::new(0x40);

    fn list() -> HarrisList {
        HarrisList { head: HEAD }
    }

    fn node(i: u64) -> Addr {
        Addr::new(0x1000 + i * 64)
    }

    fn insert(mem: &mut Mem, i: u64, key: u64, prim: LinkPrim) -> bool {
        let mut rng = SimRng::new(1);
        let mut m = ListInsert::new(list(), node(i), key, prim);
        drive_sync(&mut m, &mut rng, 2000, |op| mem.eval(op));
        m.inserted().expect("finished")
    }

    fn remove(mem: &mut Mem, key: u64, prim: LinkPrim) -> bool {
        let mut rng = SimRng::new(1);
        let mut m = ListRemove::new(list(), key, prim);
        drive_sync(&mut m, &mut rng, 2000, |op| mem.eval(op));
        m.removed().expect("finished")
    }

    fn contains(mem: &mut Mem, key: u64, prim: LinkPrim) -> bool {
        let mut rng = SimRng::new(1);
        let mut m = ListContains::new(list(), key, prim);
        drive_sync(&mut m, &mut rng, 2000, |op| mem.eval(op));
        m.found().expect("finished")
    }

    /// Walks the physical chain: (node, key, marked) triples.
    fn chain(mem: &Mem, prim: LinkPrim) -> Vec<(u64, u64, bool)> {
        let mut out = Vec::new();
        let mut cur = decode(prim, mem.get(HEAD.as_u64()));
        while cur != 0 {
            let cw = decode(prim, mem.get(cur));
            out.push((cur, mem.get(cur + 8), is_marked(cw)));
            cur = clear_mark(cw);
            assert!(out.len() < 100, "cycle in chain");
        }
        out
    }

    fn basic_set_ops(prim: LinkPrim) {
        let mut mem = Mem::default();
        assert!(!contains(&mut mem, 10, prim), "{prim:?}: starts empty");
        assert!(!remove(&mut mem, 10, prim));
        // Insert out of order; chain must come out sorted.
        assert!(insert(&mut mem, 0, 30, prim));
        assert!(insert(&mut mem, 1, 10, prim));
        assert!(insert(&mut mem, 2, 20, prim));
        assert!(!insert(&mut mem, 3, 20, prim), "{prim:?}: duplicate");
        let keys: Vec<u64> = chain(&mem, prim).iter().map(|&(_, k, _)| k).collect();
        assert_eq!(keys, vec![10, 20, 30], "{prim:?}: sorted");
        for k in [10, 20, 30] {
            assert!(contains(&mut mem, k, prim), "{prim:?}: {k}");
        }
        assert!(!contains(&mut mem, 15, prim));
        // Remove the middle; the chain shrinks (remove unlinks too).
        assert!(remove(&mut mem, 20, prim));
        assert!(!remove(&mut mem, 20, prim));
        assert!(!contains(&mut mem, 20, prim));
        let keys: Vec<u64> = chain(&mem, prim).iter().map(|&(_, k, _)| k).collect();
        assert_eq!(keys, vec![10, 30], "{prim:?}: unlinked");
        // Re-insert the removed key under a fresh node.
        assert!(insert(&mut mem, 4, 20, prim));
        assert!(contains(&mut mem, 20, prim));
    }

    #[test]
    fn set_ops_llsc() {
        basic_set_ops(LinkPrim::Llsc);
    }

    #[test]
    fn set_ops_emul() {
        basic_set_ops(LinkPrim::EmulLlsc);
    }

    #[test]
    fn set_ops_cas() {
        basic_set_ops(LinkPrim::CasPlain);
    }

    /// Drives a remove only through its mark, leaving the node marked
    /// but linked — then checks queries skip it and a later insert's
    /// search snips it.
    fn interrupted_after_mark(prim: LinkPrim) {
        let mut mem = Mem::default();
        let mut rng = SimRng::new(1);
        assert!(insert(&mut mem, 0, 10, prim));
        assert!(insert(&mut mem, 1, 20, prim));
        assert!(insert(&mut mem, 2, 30, prim));
        let mut m = ListRemove::new(list(), 20, prim);
        let mut last = None;
        loop {
            match m.step(last.take(), &mut rng) {
                Step::Op(op) => {
                    let marking = matches!(
                        op,
                        MemOp::Cas { addr, .. } | MemOp::StoreConditional { addr, .. }
                            if addr == node(1)
                    );
                    let r = mem.eval(op);
                    if marking && link_ok(&r) {
                        break; // marked, not yet unlinked
                    }
                    last = Some(r);
                }
                Step::Compute(_) => {}
                Step::Done => panic!("must not finish before unlinking"),
            }
        }
        let marked: Vec<u64> = chain(&mem, prim)
            .iter()
            .filter(|&&(_, _, m)| m)
            .map(|&(_, k, _)| k)
            .collect();
        assert_eq!(marked, vec![20], "{prim:?}: 20 is marked but linked");
        // Contains skips the marked node without writing.
        assert!(!contains(&mut mem, 20, prim), "{prim:?}");
        assert!(contains(&mut mem, 30, prim), "{prim:?}");
        // An insert whose search crosses the marked node snips it.
        assert!(insert(&mut mem, 3, 25, prim));
        let keys: Vec<u64> = chain(&mem, prim).iter().map(|&(_, k, _)| k).collect();
        assert_eq!(keys, vec![10, 25, 30], "{prim:?}: snipped during search");
    }

    #[test]
    fn marked_nodes_are_snipped_llsc() {
        interrupted_after_mark(LinkPrim::Llsc);
    }

    #[test]
    fn marked_nodes_are_snipped_emul() {
        interrupted_after_mark(LinkPrim::EmulLlsc);
    }

    #[test]
    fn marked_nodes_are_snipped_cas() {
        interrupted_after_mark(LinkPrim::CasPlain);
    }

    #[test]
    fn insert_retries_when_prev_gains_a_node() {
        let mut mem = Mem::default();
        let mut rng = SimRng::new(1);
        assert!(insert(&mut mem, 0, 10, LinkPrim::CasPlain));
        let mut m = ListInsert::new(list(), node(1), 30, LinkPrim::CasPlain);
        let mut interfered = false;
        let mut last = None;
        loop {
            match m.step(last.take(), &mut rng) {
                Step::Op(op) => {
                    if !interfered && matches!(op, MemOp::Cas { .. }) {
                        interfered = true;
                        // A rival inserts 20 after node 10 first.
                        assert!(insert(&mut mem, 2, 20, LinkPrim::CasPlain));
                    }
                    last = Some(mem.eval(op));
                }
                Step::Compute(_) => {}
                Step::Done => break,
            }
        }
        assert!(m.inserted().unwrap());
        assert_eq!(m.retries, 1);
        let keys: Vec<u64> = chain(&mem, LinkPrim::CasPlain)
            .iter()
            .map(|&(_, k, _)| k)
            .collect();
        assert_eq!(keys, vec![10, 20, 30]);
    }

    #[test]
    fn concurrent_removes_delete_once() {
        // Two removes of the same key race; exactly one reports true.
        for stop_rival_first in [false, true] {
            let mut mem = Mem::default();
            let mut rng = SimRng::new(1);
            assert!(insert(&mut mem, 0, 10, LinkPrim::EmulLlsc));
            let mut m = ListRemove::new(list(), 10, LinkPrim::EmulLlsc);
            let mut interfered = false;
            let mut last = None;
            let mut rival_won = false;
            loop {
                match m.step(last.take(), &mut rng) {
                    Step::Op(op) => {
                        if !interfered && matches!(op, MemOp::Cas { addr, .. } if addr == node(0)) {
                            interfered = true;
                            if stop_rival_first {
                                // Rival completes its remove first.
                                rival_won = remove(&mut mem, 10, LinkPrim::EmulLlsc);
                            }
                        }
                        last = Some(mem.eval(op));
                    }
                    Step::Compute(_) => {}
                    Step::Done => break,
                }
            }
            let mine = m.removed().unwrap();
            assert_eq!(
                mine, !stop_rival_first,
                "exactly one remove wins (rival_won={rival_won})"
            );
            assert!(!contains(&mut mem, 10, LinkPrim::EmulLlsc));
        }
    }
}
