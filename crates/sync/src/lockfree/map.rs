//! A fixed-bucket lock-free hash map: an array of bucket head words,
//! each heading an independent Harris list (see [`super::list`]).
//!
//! Keys hash to a bucket by `key % buckets`; each bucket keeps its
//! chain sorted and uses the same logical-deletion protocol as the
//! standalone list, so every correctness property (and every
//! [`LinkPrim`] trade-off) carries over bucket-by-bucket.

use super::list::{HarrisList, ListContains, ListInsert, ListRemove};
use super::LinkPrim;
use crate::submachine::{Step, SubMachine};
use dsm_protocol::OpResult;
use dsm_sim::{Addr, SimRng};

/// The bucket head words naming a lock-free hash map.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BucketMap {
    /// One head link word per bucket, each on its own line.
    pub buckets: Vec<Addr>,
}

impl BucketMap {
    /// The bucket list a key belongs to.
    ///
    /// # Panics
    ///
    /// Panics if the map has no buckets.
    pub fn bucket_of(&self, key: u64) -> HarrisList {
        assert!(!self.buckets.is_empty(), "map needs at least one bucket");
        HarrisList {
            head: self.buckets[(key % self.buckets.len() as u64) as usize],
        }
    }
}

/// One insert of `key` into the map (under a fresh `node`).
///
/// After [`Step::Done`], [`inserted`](MapInsert::inserted) reports
/// whether the key was added.
#[derive(Debug, Clone)]
pub struct MapInsert {
    inner: ListInsert,
}

impl MapInsert {
    /// Creates an insert of the node whose `next` word is at `node`.
    pub fn new(map: &BucketMap, node: Addr, key: u64, prim: LinkPrim) -> Self {
        MapInsert {
            inner: ListInsert::new(map.bucket_of(key), node, key, prim),
        }
    }

    /// `true` if the key was inserted, `false` if already present.
    pub fn inserted(&self) -> Option<bool> {
        self.inner.inserted()
    }

    /// Lost publication races (for statistics).
    pub fn retries(&self) -> u64 {
        self.inner.retries
    }
}

impl SubMachine for MapInsert {
    fn step(&mut self, last: Option<OpResult>, rng: &mut SimRng) -> Step {
        self.inner.step(last, rng)
    }
}

/// One remove of `key` from the map.
///
/// After [`Step::Done`], [`removed`](MapRemove::removed) reports
/// whether this operation deleted the key.
#[derive(Debug, Clone)]
pub struct MapRemove {
    inner: ListRemove,
}

impl MapRemove {
    /// Creates a remove.
    pub fn new(map: &BucketMap, key: u64, prim: LinkPrim) -> Self {
        MapRemove {
            inner: ListRemove::new(map.bucket_of(key), key, prim),
        }
    }

    /// `true` if this operation deleted the key, `false` if absent.
    pub fn removed(&self) -> Option<bool> {
        self.inner.removed()
    }

    /// Lost marking races (for statistics).
    pub fn retries(&self) -> u64 {
        self.inner.retries
    }
}

impl SubMachine for MapRemove {
    fn step(&mut self, last: Option<OpResult>, rng: &mut SimRng) -> Step {
        self.inner.step(last, rng)
    }
}

/// One membership query for `key` (read-only).
///
/// After [`Step::Done`], [`found`](MapContains::found) reports
/// membership.
#[derive(Debug, Clone)]
pub struct MapContains {
    inner: ListContains,
}

impl MapContains {
    /// Creates a membership query.
    pub fn new(map: &BucketMap, key: u64, prim: LinkPrim) -> Self {
        MapContains {
            inner: ListContains::new(map.bucket_of(key), key, prim),
        }
    }

    /// `true` if the key was present.
    pub fn found(&self) -> Option<bool> {
        self.inner.found()
    }
}

impl SubMachine for MapContains {
    fn step(&mut self, last: Option<OpResult>, rng: &mut SimRng) -> Step {
        self.inner.step(last, rng)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lockfree::testmem::Mem;
    use crate::submachine::drive_sync;

    fn map(buckets: u64) -> BucketMap {
        BucketMap {
            buckets: (0..buckets).map(|i| Addr::new(0x40 + i * 64)).collect(),
        }
    }

    fn node(i: u64) -> Addr {
        Addr::new(0x10000 + i * 64)
    }

    fn insert(mem: &mut Mem, m: &BucketMap, i: u64, key: u64, prim: LinkPrim) -> bool {
        let mut rng = SimRng::new(1);
        let mut op = MapInsert::new(m, node(i), key, prim);
        drive_sync(&mut op, &mut rng, 2000, |o| mem.eval(o));
        op.inserted().expect("finished")
    }

    fn remove(mem: &mut Mem, m: &BucketMap, key: u64, prim: LinkPrim) -> bool {
        let mut rng = SimRng::new(1);
        let mut op = MapRemove::new(m, key, prim);
        drive_sync(&mut op, &mut rng, 2000, |o| mem.eval(o));
        op.removed().expect("finished")
    }

    fn contains(mem: &mut Mem, m: &BucketMap, key: u64, prim: LinkPrim) -> bool {
        let mut rng = SimRng::new(1);
        let mut op = MapContains::new(m, key, prim);
        drive_sync(&mut op, &mut rng, 2000, |o| mem.eval(o));
        op.found().expect("finished")
    }

    #[test]
    fn keys_route_to_buckets_by_modulus() {
        let m = map(4);
        for key in 0..32u64 {
            assert_eq!(m.bucket_of(key).head, m.buckets[(key % 4) as usize]);
        }
    }

    fn map_ops(prim: LinkPrim) {
        let mut mem = Mem::default();
        let m = map(4);
        // Keys 0..16 spread across 4 buckets (4 each).
        for k in 0..16u64 {
            assert!(insert(&mut mem, &m, k, k, prim), "{prim:?}: insert {k}");
        }
        for k in 0..16u64 {
            assert!(!insert(&mut mem, &m, 100 + k, k, prim), "{prim:?}: dup {k}");
            assert!(contains(&mut mem, &m, k, prim), "{prim:?}: find {k}");
        }
        assert!(!contains(&mut mem, &m, 77, prim));
        // Remove every key congruent to 1 (one full bucket).
        for k in [1u64, 5, 9, 13] {
            assert!(remove(&mut mem, &m, k, prim));
        }
        for k in 0..16u64 {
            assert_eq!(contains(&mut mem, &m, k, prim), k % 4 != 1, "{prim:?}: {k}");
        }
        // Per-bucket chains stay sorted.
        for b in 0..4u64 {
            let mut cur = super::super::decode(prim, mem.get(m.buckets[b as usize].as_u64()));
            let mut prev_key = None;
            while cur != 0 {
                let cw = super::super::decode(prim, mem.get(cur));
                let key = mem.get(cur + 8);
                assert_eq!(key % 4, b, "{prim:?}: key {key} in wrong bucket");
                if let Some(p) = prev_key {
                    assert!(key > p, "{prim:?}: bucket {b} unsorted");
                }
                prev_key = Some(key);
                cur = super::super::clear_mark(cw);
            }
        }
    }

    #[test]
    fn map_ops_llsc() {
        map_ops(LinkPrim::Llsc);
    }

    #[test]
    fn map_ops_emul() {
        map_ops(LinkPrim::EmulLlsc);
    }

    #[test]
    fn map_ops_cas() {
        map_ops(LinkPrim::CasPlain);
    }
}
