//! Lock-free data structures on the simulated primitives.
//!
//! This tier re-asks the paper's primitive comparison on the classic
//! non-blocking structures instead of counters and locks:
//!
//! * [`queue`] — the Michael–Scott MPMC FIFO queue;
//! * [`list`] — the Harris sorted linked list with logical deletion;
//! * [`map`] — a fixed-bucket hash map, each bucket a Harris list.
//!
//! Every structure is parameterized by a [`LinkPrim`]: the discipline
//! used for its *link words* (head/tail pointers and per-node `next`
//! fields):
//!
//! * [`LinkPrim::Llsc`] — the machine's native load-linked /
//!   store-conditional;
//! * [`LinkPrim::EmulLlsc`] — the Blelloch–Wei constant-time LL/SC
//!   emulation from pointer-width CAS: every link word carries a
//!   modification tag in its upper 32 bits, an emulated LL is a plain
//!   load that remembers the whole tagged word, and an emulated SC is a
//!   CAS from that word to `(tag + 1, new value)`;
//! * [`LinkPrim::CasPlain`] — raw-pointer CAS with no tag.
//!
//! # Memory discipline
//!
//! The structures assume *fresh nodes*: a node address is used for at
//! most one successful publication and is never recycled afterwards.
//! Under that discipline even [`LinkPrim::CasPlain`] is ABA-safe here,
//! because link-word histories are monotone (queue pointers only move
//! forward through never-reused nodes, and the list re-validates
//! through the full word). Recycling nodes would additionally require
//! safe memory reclamation (hazard pointers or epochs), which no
//! word-sized primitive provides by itself — the Treiber stack in
//! [`crate::stack`] keeps its node-reuse ABA demonstration for exactly
//! that reason.
//!
//! # Reservation discipline
//!
//! Under the INV policy each processor has a *single* reservation
//! register, and a new `load_linked` displaces the previous one. Every
//! state machine here therefore holds at most one outstanding LL at a
//! time and uses plain loads for all other shared reads between the LL
//! and its SC.

pub mod list;
pub mod map;
pub mod queue;

use crate::submachine::{Step, SubMachine};
use dsm_protocol::{MemOp, OpResult};
use dsm_sim::{Addr, SimRng};

/// The primitive discipline used for a structure's link words.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum LinkPrim {
    /// Native load-linked / store-conditional.
    Llsc,
    /// Blelloch–Wei LL/SC emulated from pointer-width CAS via a
    /// 32-bit modification tag packed into each link word.
    EmulLlsc,
    /// Raw CAS with no tag (safe here only under fresh nodes).
    CasPlain,
}

impl LinkPrim {
    /// All variants, in benchmark-sweep order.
    pub const ALL: [LinkPrim; 3] = [LinkPrim::Llsc, LinkPrim::EmulLlsc, LinkPrim::CasPlain];

    /// Short label for tables (`LLSC`, `EMUL`, `CAS`).
    pub fn label(self) -> &'static str {
        match self {
            LinkPrim::Llsc => "LLSC",
            LinkPrim::EmulLlsc => "EMUL",
            LinkPrim::CasPlain => "CAS",
        }
    }
}

impl std::fmt::Display for LinkPrim {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.label())
    }
}

/// Number of bits reserved for the logical value of a tagged link word.
pub const TAG_SHIFT: u32 = 32;

/// Packs a Blelloch–Wei modification tag and a (32-bit) logical value.
pub fn pack_tagged(tag: u32, low: u64) -> u64 {
    debug_assert!(low <= u32::MAX as u64, "link values must fit in 32 bits");
    ((tag as u64) << TAG_SHIFT) | low
}

/// The logical value of a tagged link word.
pub fn tagged_low(word: u64) -> u64 {
    word & 0xFFFF_FFFF
}

/// The modification tag of a tagged link word.
pub fn tagged_tag(word: u64) -> u32 {
    (word >> TAG_SHIFT) as u32
}

/// Decodes a raw link word into its logical value under `prim`
/// (strips the tag for [`LinkPrim::EmulLlsc`], identity otherwise).
pub fn decode(prim: LinkPrim, raw: u64) -> u64 {
    match prim {
        LinkPrim::EmulLlsc => tagged_low(raw),
        _ => raw,
    }
}

/// The Harris logical-deletion mark: bit 0 of a link value. Node
/// addresses are line-aligned, so the bit is always free.
pub const MARK: u64 = 1;

/// Sets the deletion mark on a link value.
pub fn with_mark(v: u64) -> u64 {
    v | MARK
}

/// `true` if the link value carries the deletion mark.
pub fn is_marked(v: u64) -> bool {
    v & MARK != 0
}

/// Clears the deletion mark from a link value.
pub fn clear_mark(v: u64) -> u64 {
    v & !MARK
}

/// What a link-word load observed, carrying everything a later
/// conditional update needs.
///
/// The token must come from the *original* read that justified the
/// update — re-reading inside a helper would reopen the ABA window the
/// tag (or reservation) exists to close.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct LinkToken {
    /// Logical (decoded, tag-stripped) value; may carry [`MARK`].
    pub value: u64,
    /// Raw word as stored in memory (tag included for `EmulLlsc`).
    pub raw: u64,
    /// Reservation serial, when the machine handed one out.
    pub serial: Option<u64>,
}

/// The load that begins a link-word read-modify-write: a real LL for
/// [`LinkPrim::Llsc`], a plain load otherwise.
pub fn link_load(prim: LinkPrim, addr: Addr) -> MemOp {
    match prim {
        LinkPrim::Llsc => MemOp::LoadLinked { addr },
        _ => MemOp::Load { addr },
    }
}

/// Extracts a [`LinkToken`] from the result of a [`link_load`].
///
/// # Panics
///
/// Panics if `result` is not a load result.
pub fn link_token(prim: LinkPrim, result: &OpResult) -> LinkToken {
    match *result {
        OpResult::Loaded { value, serial, .. } => LinkToken {
            value: decode(prim, value),
            raw: value,
            serial,
        },
        ref other => panic!("link load returned {other:?}"),
    }
}

/// The conditional update that ends a link-word read-modify-write:
/// an SC for [`LinkPrim::Llsc`], a tag-bumping CAS for
/// [`LinkPrim::EmulLlsc`], a raw CAS for [`LinkPrim::CasPlain`].
pub fn link_update(prim: LinkPrim, addr: Addr, token: &LinkToken, new: u64) -> MemOp {
    match prim {
        LinkPrim::Llsc => MemOp::StoreConditional {
            addr,
            value: new,
            serial: token.serial,
        },
        LinkPrim::EmulLlsc => MemOp::Cas {
            addr,
            expected: token.raw,
            new: pack_tagged(tagged_tag(token.raw).wrapping_add(1), new),
        },
        LinkPrim::CasPlain => MemOp::Cas {
            addr,
            expected: token.raw,
            new,
        },
    }
}

/// `true` if a [`link_update`] result reports success.
///
/// # Panics
///
/// Panics if `result` is not a CAS or SC result.
pub fn link_ok(result: &OpResult) -> bool {
    match *result {
        OpResult::CasDone { success, .. } | OpResult::ScDone { success } => success,
        ref other => panic!("link update returned {other:?}"),
    }
}

/// Privately initializes a link word (before the owning node is
/// published) while preserving the Blelloch–Wei tag discipline.
///
/// For [`LinkPrim::EmulLlsc`] this is a load followed by a store of
/// `(tag + 1, value)` — the tag must keep advancing even across private
/// writes, so a token captured before the write can never match after
/// it. For the other primitives it is a single plain store.
#[derive(Debug, Clone)]
pub struct PrivInit {
    addr: Addr,
    value: u64,
    prim: LinkPrim,
    state: InitState,
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum InitState {
    Start,
    WaitLoad,
    WaitStore,
}

impl PrivInit {
    /// Creates an initializer writing logical `value` to `addr`.
    pub fn new(addr: Addr, value: u64, prim: LinkPrim) -> Self {
        PrivInit {
            addr,
            value,
            prim,
            state: InitState::Start,
        }
    }
}

impl SubMachine for PrivInit {
    fn step(&mut self, last: Option<OpResult>, _rng: &mut SimRng) -> Step {
        match self.state {
            InitState::Start => match self.prim {
                LinkPrim::EmulLlsc => {
                    self.state = InitState::WaitLoad;
                    Step::Op(MemOp::Load { addr: self.addr })
                }
                _ => {
                    self.state = InitState::WaitStore;
                    Step::Op(MemOp::Store {
                        addr: self.addr,
                        value: self.value,
                    })
                }
            },
            InitState::WaitLoad => {
                let raw = last.expect("init read").value().expect("load value");
                self.state = InitState::WaitStore;
                Step::Op(MemOp::Store {
                    addr: self.addr,
                    value: pack_tagged(tagged_tag(raw).wrapping_add(1), self.value),
                })
            }
            InitState::WaitStore => {
                last.expect("init store");
                Step::Done
            }
        }
    }
}

#[cfg(test)]
pub(crate) mod testmem {
    //! A synchronous test memory for driving lock-free sub-machines
    //! outside the full simulator, mirroring the reservation behavior
    //! the machine provides: any write to the reserved address clears
    //! the (single) reservation.

    use dsm_protocol::{MemOp, OpResult};
    use std::collections::HashMap;

    #[derive(Default)]
    pub struct Mem {
        pub words: HashMap<u64, u64>,
        pub reserved: Option<u64>,
    }

    impl Mem {
        pub fn get(&self, a: u64) -> u64 {
            self.words.get(&a).copied().unwrap_or(0)
        }

        pub fn eval(&mut self, op: MemOp) -> OpResult {
            match op {
                MemOp::Load { addr } => OpResult::Loaded {
                    value: self.get(addr.as_u64()),
                    serial: None,
                    reserved: false,
                },
                MemOp::LoadLinked { addr } => {
                    self.reserved = Some(addr.as_u64());
                    OpResult::Loaded {
                        value: self.get(addr.as_u64()),
                        serial: None,
                        reserved: true,
                    }
                }
                MemOp::Store { addr, value } => {
                    if self.reserved == Some(addr.as_u64()) {
                        self.reserved = None;
                    }
                    self.words.insert(addr.as_u64(), value);
                    OpResult::Stored
                }
                MemOp::Cas {
                    addr,
                    expected,
                    new,
                } => {
                    let observed = self.get(addr.as_u64());
                    let success = observed == expected;
                    if success {
                        if self.reserved == Some(addr.as_u64()) {
                            self.reserved = None;
                        }
                        self.words.insert(addr.as_u64(), new);
                    }
                    OpResult::CasDone { success, observed }
                }
                MemOp::StoreConditional { addr, value, .. } => {
                    if self.reserved == Some(addr.as_u64()) {
                        self.reserved = None;
                        self.words.insert(addr.as_u64(), value);
                        OpResult::ScDone { success: true }
                    } else {
                        OpResult::ScDone { success: false }
                    }
                }
                other => panic!("unexpected {other:?}"),
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::submachine::drive_sync;

    #[test]
    fn tagged_words_round_trip() {
        let w = pack_tagged(7, 0x1230);
        assert_eq!(tagged_tag(w), 7);
        assert_eq!(tagged_low(w), 0x1230);
        assert_eq!(decode(LinkPrim::EmulLlsc, w), 0x1230);
        assert_eq!(decode(LinkPrim::CasPlain, w), w);
        assert_eq!(decode(LinkPrim::Llsc, w), w);
    }

    #[test]
    fn mark_helpers() {
        assert!(!is_marked(0x40));
        assert!(is_marked(with_mark(0x40)));
        assert_eq!(clear_mark(with_mark(0x40)), 0x40);
        assert_eq!(clear_mark(0), 0);
    }

    #[test]
    fn link_update_shapes_per_prim() {
        let addr = Addr::new(0x40);
        let tok = LinkToken {
            value: 5,
            raw: pack_tagged(3, 5),
            serial: Some(9),
        };
        match link_update(LinkPrim::Llsc, addr, &tok, 6) {
            MemOp::StoreConditional { value, serial, .. } => {
                assert_eq!(value, 6);
                assert_eq!(serial, Some(9));
            }
            other => panic!("{other:?}"),
        }
        match link_update(LinkPrim::EmulLlsc, addr, &tok, 6) {
            MemOp::Cas { expected, new, .. } => {
                assert_eq!(expected, pack_tagged(3, 5));
                assert_eq!(new, pack_tagged(4, 6));
            }
            other => panic!("{other:?}"),
        }
        match link_update(LinkPrim::CasPlain, addr, &tok, 6) {
            MemOp::Cas { expected, new, .. } => {
                assert_eq!(expected, pack_tagged(3, 5));
                assert_eq!(new, 6);
            }
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn priv_init_bumps_emul_tag() {
        let mut mem = testmem::Mem::default();
        let mut rng = SimRng::new(1);
        let a = Addr::new(0x40);
        mem.words.insert(a.as_u64(), pack_tagged(4, 0x80));
        let mut init = PrivInit::new(a, 0xC0, LinkPrim::EmulLlsc);
        let ops = drive_sync(&mut init, &mut rng, 10, |op| mem.eval(op));
        assert_eq!(ops, 2, "emulated init is load + store");
        assert_eq!(mem.get(a.as_u64()), pack_tagged(5, 0xC0));
        // A token captured before the private rewrite can never match.
        assert_ne!(tagged_tag(mem.get(a.as_u64())), 4);
    }

    #[test]
    fn priv_init_is_one_store_for_native_prims() {
        for prim in [LinkPrim::Llsc, LinkPrim::CasPlain] {
            let mut mem = testmem::Mem::default();
            let mut rng = SimRng::new(1);
            let a = Addr::new(0x40);
            let mut init = PrivInit::new(a, 0xC0, prim);
            let ops = drive_sync(&mut init, &mut rng, 10, |op| mem.eval(op));
            assert_eq!(ops, 1, "{prim:?}");
            assert_eq!(mem.get(a.as_u64()), 0xC0);
        }
    }

    #[test]
    fn labels_are_stable() {
        assert_eq!(LinkPrim::Llsc.label(), "LLSC");
        assert_eq!(LinkPrim::EmulLlsc.label(), "EMUL");
        assert_eq!(LinkPrim::CasPlain.label(), "CAS");
        assert_eq!(format!("{}", LinkPrim::EmulLlsc), "EMUL");
    }
}
