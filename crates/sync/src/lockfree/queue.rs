//! The Michael–Scott MPMC FIFO queue on simulated link primitives.
//!
//! Layout: each node is one cache line whose word 0 is the `next` link
//! and word 1 the user value; a node is named by the address of its
//! `next` word, and 0 is nil. The queue itself is two link words
//! ([`MsQueue::head`] and [`MsQueue::tail`]), each on its own line,
//! both initialized to a dummy node whose `next` is nil.
//!
//! The algorithm is the classic two-pointer queue: enqueue links a
//! fresh node after the last node and then swings `tail`; dequeue
//! swings `head` past the dummy and retires the old dummy. Lagging
//! tails are helped along by whoever observes them (the tail-swing
//! helper embedded in both operations), and the helping swing derives its
//! successor from the freshly loaded tail value — never from a stale
//! read — so it is safe under every [`LinkPrim`].

use super::{decode, link_load, link_ok, link_token, link_update, LinkPrim, LinkToken, PrivInit};
use crate::submachine::{Step, SubMachine};
use dsm_protocol::{MemOp, OpResult};
use dsm_sim::{Addr, SimRng};

/// The two link words naming a Michael–Scott queue.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct MsQueue {
    /// Head pointer word (points at the current dummy node).
    pub head: Addr,
    /// Tail pointer word (points at the last or second-to-last node).
    pub tail: Addr,
}

/// Where control returns after an embedded tail swing.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum After {
    Retry,
    Finish,
}

/// One enqueue of `node` (carrying `value`) onto the queue.
#[derive(Debug, Clone)]
pub struct MsEnqueue {
    q: MsQueue,
    node: Addr,
    value: u64,
    prim: LinkPrim,
    init: PrivInit,
    state: EnqState,
    /// Failed link attempts (for statistics).
    pub retries: u64,
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum EnqState {
    Init,
    StoreValue,
    WaitValue,
    ReadTail,
    WaitTail,
    WaitNext { t: u64 },
    WaitLink,
    SwingLoad { then: After },
    SwingTail { then: After },
    SwingNext { then: After, tok: LinkToken },
    SwingDone { then: After },
    Finished,
}

impl MsEnqueue {
    /// Creates an enqueue of the node whose `next` word is at `node`.
    pub fn new(q: MsQueue, node: Addr, value: u64, prim: LinkPrim) -> Self {
        MsEnqueue {
            q,
            node,
            value,
            prim,
            init: PrivInit::new(node, 0, prim),
            state: EnqState::Init,
            retries: 0,
        }
    }

    fn after(&mut self, then: After, rng: &mut SimRng) -> Step {
        match then {
            After::Retry => {
                self.state = EnqState::ReadTail;
                self.step(None, rng)
            }
            After::Finish => {
                self.state = EnqState::Finished;
                Step::Done
            }
        }
    }
}

impl SubMachine for MsEnqueue {
    fn step(&mut self, last: Option<OpResult>, rng: &mut SimRng) -> Step {
        match self.state {
            // Privately prepare the node: next = nil, then the value.
            EnqState::Init => match self.init.step(last, rng) {
                Step::Done => {
                    self.state = EnqState::StoreValue;
                    self.step(None, rng)
                }
                s => s,
            },
            EnqState::StoreValue => {
                self.state = EnqState::WaitValue;
                Step::Op(MemOp::Store {
                    addr: Addr::new(self.node.as_u64() + 8),
                    value: self.value,
                })
            }
            EnqState::WaitValue => {
                last.expect("value store");
                self.state = EnqState::ReadTail;
                self.step(None, rng)
            }
            EnqState::ReadTail => {
                self.state = EnqState::WaitTail;
                Step::Op(MemOp::Load { addr: self.q.tail })
            }
            EnqState::WaitTail => {
                let t = decode(
                    self.prim,
                    last.expect("tail read").value().expect("load value"),
                );
                // The one outstanding LL of this attempt: the last
                // node's `next` word.
                self.state = EnqState::WaitNext { t };
                Step::Op(link_load(self.prim, Addr::new(t)))
            }
            EnqState::WaitNext { t } => {
                let tok = link_token(self.prim, &last.expect("next read"));
                if tok.value != 0 {
                    // Tail is lagging: help swing it, then retry.
                    self.state = EnqState::SwingLoad { then: After::Retry };
                    return self.step(None, rng);
                }
                self.state = EnqState::WaitLink;
                Step::Op(link_update(
                    self.prim,
                    Addr::new(t),
                    &tok,
                    self.node.as_u64(),
                ))
            }
            EnqState::WaitLink => {
                if link_ok(&last.expect("link result")) {
                    // Linked: swing the tail over our node (best
                    // effort — anyone may have done it already).
                    self.state = EnqState::SwingLoad {
                        then: After::Finish,
                    };
                } else {
                    self.retries += 1;
                    self.state = EnqState::ReadTail;
                }
                self.step(None, rng)
            }
            // --- embedded tail swing -------------------------------
            // Re-load the tail with the link primitive, read that
            // node's `next` *fresh*, and conditionally advance the
            // tail to it. Deriving the successor from the freshly
            // loaded tail (never a stale read) keeps the swing safe
            // under every primitive.
            EnqState::SwingLoad { then } => {
                self.state = EnqState::SwingTail { then };
                Step::Op(link_load(self.prim, self.q.tail))
            }
            EnqState::SwingTail { then } => {
                let tok = link_token(self.prim, &last.expect("swing tail read"));
                self.state = EnqState::SwingNext { then, tok };
                Step::Op(MemOp::Load {
                    addr: Addr::new(tok.value),
                })
            }
            EnqState::SwingNext { then, tok } => {
                let succ = decode(
                    self.prim,
                    last.expect("swing next read").value().expect("load value"),
                );
                if succ == 0 {
                    // Tail already points at the last node.
                    return self.after(then, rng);
                }
                self.state = EnqState::SwingDone { then };
                Step::Op(link_update(self.prim, self.q.tail, &tok, succ))
            }
            EnqState::SwingDone { then } => {
                // Success or not, somebody advanced the tail.
                let _ = link_ok(&last.expect("swing result"));
                self.after(then, rng)
            }
            EnqState::Finished => Step::Done,
        }
    }
}

/// One dequeue from the queue.
///
/// After [`Step::Done`], [`dequeued`](MsDequeue::dequeued) yields the
/// value, or `None` if the queue was observed empty.
#[derive(Debug, Clone)]
pub struct MsDequeue {
    q: MsQueue,
    prim: LinkPrim,
    state: DeqState,
    result: Option<Option<(u64, u64)>>,
    /// Failed attempts (for statistics).
    pub retries: u64,
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum DeqState {
    ReadHead,
    WaitHead,
    WaitTail { tok: LinkToken },
    WaitNext { tok: LinkToken, t: u64 },
    Validate { tok: LinkToken, t: u64, n: u64 },
    WaitValue { tok: LinkToken, n: u64 },
    WaitSwap { h: u64, n: u64, v: u64 },
    SwingLoad,
    SwingTail,
    SwingNext { tok: LinkToken },
    SwingDone,
    Finished,
}

impl MsDequeue {
    /// Creates a dequeue.
    pub fn new(q: MsQueue, prim: LinkPrim) -> Self {
        MsDequeue {
            q,
            prim,
            state: DeqState::ReadHead,
            result: None,
            retries: 0,
        }
    }

    /// The dequeued value, or `None` for an empty queue. Meaningful
    /// only after the sub-machine finishes.
    pub fn dequeued(&self) -> Option<u64> {
        self.result.flatten().map(|(_, v)| v)
    }

    /// The retired node (the old dummy's `next`-word address), if a
    /// value was dequeued. The node no longer belongs to the queue but
    /// must not be recycled (see the module docs on fresh nodes).
    pub fn retired(&self) -> Option<u64> {
        self.result.flatten().map(|(h, _)| h)
    }

    fn retry(&mut self, rng: &mut SimRng) -> Step {
        self.retries += 1;
        self.state = DeqState::ReadHead;
        self.step(None, rng)
    }
}

impl SubMachine for MsDequeue {
    fn step(&mut self, last: Option<OpResult>, rng: &mut SimRng) -> Step {
        match self.state {
            DeqState::ReadHead => {
                // The one outstanding LL of this attempt: the head.
                self.state = DeqState::WaitHead;
                Step::Op(link_load(self.prim, self.q.head))
            }
            DeqState::WaitHead => {
                let tok = link_token(self.prim, &last.expect("head read"));
                self.state = DeqState::WaitTail { tok };
                Step::Op(MemOp::Load { addr: self.q.tail })
            }
            DeqState::WaitTail { tok } => {
                let t = decode(
                    self.prim,
                    last.expect("tail read").value().expect("load value"),
                );
                self.state = DeqState::WaitNext { tok, t };
                Step::Op(MemOp::Load {
                    addr: Addr::new(tok.value),
                })
            }
            DeqState::WaitNext { tok, t } => {
                let n = decode(
                    self.prim,
                    last.expect("next read").value().expect("load value"),
                );
                // Re-read the head so the empty answer (and the
                // consistency of `n`) is anchored to an interval where
                // the head did not move. Fresh nodes make the
                // value-compare exact: a head value never repeats.
                self.state = DeqState::Validate { tok, t, n };
                Step::Op(MemOp::Load { addr: self.q.head })
            }
            DeqState::Validate { tok, t, n } => {
                let cur = decode(
                    self.prim,
                    last.expect("head re-read").value().expect("load value"),
                );
                if cur != tok.value {
                    return self.retry(rng);
                }
                if tok.value == t {
                    if n == 0 {
                        // Empty: head == tail and no successor while
                        // the head stood still.
                        self.result = Some(None);
                        self.state = DeqState::Finished;
                        return Step::Done;
                    }
                    // Tail is lagging behind a linked node: help.
                    self.state = DeqState::SwingLoad;
                    return self.step(None, rng);
                }
                if n == 0 {
                    // Head strictly behind tail implies a successor;
                    // a stale read can still miss it — retry.
                    return self.retry(rng);
                }
                self.state = DeqState::WaitValue { tok, n };
                Step::Op(MemOp::Load {
                    addr: Addr::new(n + 8),
                })
            }
            DeqState::WaitValue { tok, n } => {
                let v = last.expect("value read").value().expect("load value");
                self.state = DeqState::WaitSwap { h: tok.value, n, v };
                Step::Op(link_update(self.prim, self.q.head, &tok, n))
            }
            DeqState::WaitSwap { h, n, v } => {
                if link_ok(&last.expect("swap result")) {
                    self.result = Some(Some((h, v)));
                    self.state = DeqState::Finished;
                    let _ = n;
                    Step::Done
                } else {
                    self.retry(rng)
                }
            }
            // --- embedded tail swing (see MsEnqueue) ----------------
            DeqState::SwingLoad => {
                self.state = DeqState::SwingTail;
                Step::Op(link_load(self.prim, self.q.tail))
            }
            DeqState::SwingTail => {
                let tok = link_token(self.prim, &last.expect("swing tail read"));
                self.state = DeqState::SwingNext { tok };
                Step::Op(MemOp::Load {
                    addr: Addr::new(tok.value),
                })
            }
            DeqState::SwingNext { tok } => {
                let succ = decode(
                    self.prim,
                    last.expect("swing next read").value().expect("load value"),
                );
                if succ == 0 {
                    return self.retry(rng);
                }
                self.state = DeqState::SwingDone;
                Step::Op(link_update(self.prim, self.q.tail, &tok, succ))
            }
            DeqState::SwingDone => {
                let _ = link_ok(&last.expect("swing result"));
                self.retry(rng)
            }
            DeqState::Finished => Step::Done,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lockfree::testmem::Mem;
    use crate::submachine::drive_sync;

    const HEAD: Addr = Addr::new(0x40);
    const TAIL: Addr = Addr::new(0x80);

    fn node(i: u64) -> Addr {
        Addr::new(0x1000 + i * 64)
    }

    /// head = tail = dummy (node 99), dummy.next = 0.
    fn fresh(mem: &mut Mem) -> MsQueue {
        let dummy = node(99);
        mem.words.insert(HEAD.as_u64(), dummy.as_u64());
        mem.words.insert(TAIL.as_u64(), dummy.as_u64());
        MsQueue {
            head: HEAD,
            tail: TAIL,
        }
    }

    fn enq(mem: &mut Mem, q: MsQueue, i: u64, v: u64, prim: LinkPrim) {
        let mut rng = SimRng::new(1);
        let mut e = MsEnqueue::new(q, node(i), v, prim);
        drive_sync(&mut e, &mut rng, 1000, |op| mem.eval(op));
    }

    fn deq(mem: &mut Mem, q: MsQueue, prim: LinkPrim) -> Option<u64> {
        let mut rng = SimRng::new(1);
        let mut d = MsDequeue::new(q, prim);
        drive_sync(&mut d, &mut rng, 1000, |op| mem.eval(op));
        d.dequeued()
    }

    fn fifo_round_trip(prim: LinkPrim) {
        let mut mem = Mem::default();
        let q = fresh(&mut mem);
        assert_eq!(deq(&mut mem, q, prim), None, "{prim:?}: starts empty");
        for (i, v) in [(0u64, 111u64), (1, 222), (2, 333)] {
            enq(&mut mem, q, i, v, prim);
        }
        // Tail points at the last node after un-contended enqueues.
        assert_eq!(decode(prim, mem.get(TAIL.as_u64())), node(2).as_u64());
        for v in [111u64, 222, 333] {
            assert_eq!(deq(&mut mem, q, prim), Some(v), "{prim:?}: FIFO");
        }
        assert_eq!(deq(&mut mem, q, prim), None, "{prim:?}: drains empty");
        // Head == tail again (both at the final dummy).
        assert_eq!(
            decode(prim, mem.get(HEAD.as_u64())),
            decode(prim, mem.get(TAIL.as_u64()))
        );
    }

    #[test]
    fn fifo_llsc() {
        fifo_round_trip(LinkPrim::Llsc);
    }

    #[test]
    fn fifo_emul() {
        fifo_round_trip(LinkPrim::EmulLlsc);
    }

    #[test]
    fn fifo_cas() {
        fifo_round_trip(LinkPrim::CasPlain);
    }

    #[test]
    fn emul_tags_advance_on_every_update() {
        let mut mem = Mem::default();
        let q = fresh(&mut mem);
        enq(&mut mem, q, 0, 1, LinkPrim::EmulLlsc);
        let tag_after_one = super::super::tagged_tag(mem.get(TAIL.as_u64()));
        enq(&mut mem, q, 1, 2, LinkPrim::EmulLlsc);
        assert!(
            super::super::tagged_tag(mem.get(TAIL.as_u64())) > tag_after_one,
            "tail tag must advance"
        );
    }

    /// Drives an enqueue only until its link succeeds, leaving the tail
    /// lagging — then checks the next enqueue helps swing it.
    fn interrupted_after_link(prim: LinkPrim) {
        let mut mem = Mem::default();
        let mut rng = SimRng::new(1);
        let q = fresh(&mut mem);
        let mut e = MsEnqueue::new(q, node(0), 111, prim);
        let mut last = None;
        loop {
            match e.step(last.take(), &mut rng) {
                Step::Op(op) => {
                    let to_next = matches!(
                        op,
                        MemOp::Cas { addr, .. } | MemOp::StoreConditional { addr, .. }
                            if addr == node(99)
                    );
                    let r = mem.eval(op);
                    if to_next && link_ok(&r) {
                        break; // linked, tail not yet swung
                    }
                    last = Some(r);
                }
                Step::Compute(_) => {}
                Step::Done => panic!("must not finish before the swing"),
            }
        }
        assert_eq!(
            decode(prim, mem.get(TAIL.as_u64())),
            node(99).as_u64(),
            "tail still lags at the dummy"
        );
        // The next enqueue must help swing the tail, then link itself.
        enq(&mut mem, q, 1, 222, prim);
        assert_eq!(decode(prim, mem.get(TAIL.as_u64())), node(1).as_u64());
        assert_eq!(decode(prim, mem.get(node(0).as_u64())), node(1).as_u64());
        // FIFO holds across the interruption.
        assert_eq!(deq(&mut mem, q, prim), Some(111));
        assert_eq!(deq(&mut mem, q, prim), Some(222));
        assert_eq!(deq(&mut mem, q, prim), None);
    }

    #[test]
    fn lagging_tail_is_helped_llsc() {
        interrupted_after_link(LinkPrim::Llsc);
    }

    #[test]
    fn lagging_tail_is_helped_emul() {
        interrupted_after_link(LinkPrim::EmulLlsc);
    }

    #[test]
    fn lagging_tail_is_helped_cas() {
        interrupted_after_link(LinkPrim::CasPlain);
    }

    /// A dequeue facing a lagging tail (head == tail but a node is
    /// linked) must swing the tail itself and then dequeue the value.
    fn dequeue_helps(prim: LinkPrim) {
        let mut mem = Mem::default();
        let mut rng = SimRng::new(1);
        let q = fresh(&mut mem);
        let mut e = MsEnqueue::new(q, node(0), 111, prim);
        let mut last = None;
        loop {
            match e.step(last.take(), &mut rng) {
                Step::Op(op) => {
                    let to_next = matches!(
                        op,
                        MemOp::Cas { addr, .. } | MemOp::StoreConditional { addr, .. }
                            if addr == node(99)
                    );
                    let r = mem.eval(op);
                    if to_next && link_ok(&r) {
                        break;
                    }
                    last = Some(r);
                }
                Step::Compute(_) => {}
                Step::Done => panic!("must not finish before the swing"),
            }
        }
        let mut d = MsDequeue::new(q, prim);
        drive_sync(&mut d, &mut rng, 1000, |op| mem.eval(op));
        assert_eq!(d.dequeued(), Some(111), "{prim:?}");
        assert_eq!(d.retired(), Some(node(99).as_u64()));
        assert_eq!(
            decode(prim, mem.get(TAIL.as_u64())),
            node(0).as_u64(),
            "{prim:?}: dequeue swung the lagging tail"
        );
    }

    #[test]
    fn dequeue_helps_lagging_tail_llsc() {
        dequeue_helps(LinkPrim::Llsc);
    }

    #[test]
    fn dequeue_helps_lagging_tail_emul() {
        dequeue_helps(LinkPrim::EmulLlsc);
    }

    #[test]
    fn dequeue_helps_lagging_tail_cas() {
        dequeue_helps(LinkPrim::CasPlain);
    }

    #[test]
    fn enqueue_retries_on_interference() {
        let mut mem = Mem::default();
        let mut rng = SimRng::new(1);
        let q = fresh(&mut mem);
        let mut e = MsEnqueue::new(q, node(0), 111, LinkPrim::CasPlain);
        let mut interfered = false;
        let mut last = None;
        loop {
            match e.step(last.take(), &mut rng) {
                Step::Op(op) => {
                    if !interfered && matches!(op, MemOp::Cas { addr, .. } if addr == node(99)) {
                        interfered = true;
                        // A rival enqueues node 5 first.
                        enq(&mut mem, q, 5, 555, LinkPrim::CasPlain);
                    }
                    last = Some(mem.eval(op));
                }
                Step::Compute(_) => {}
                Step::Done => break,
            }
        }
        assert_eq!(e.retries, 1);
        assert_eq!(deq(&mut mem, q, LinkPrim::CasPlain), Some(555));
        assert_eq!(deq(&mut mem, q, LinkPrim::CasPlain), Some(111));
    }
}
