//! The MCS list-based queue lock (Mellor-Crummey & Scott \[20\]).
//!
//! The paper's third synthetic application protects a counter with an
//! MCS lock "to cover the case in which load_linked/store_conditional
//! simulates compare_and_swap". The lock needs two atomic operations on
//! its tail pointer — `fetch_and_store` (swap) to enqueue and
//! `compare_and_swap` to dequeue — and this module builds them from each
//! primitive family:
//!
//! * **CAS** — native CAS; swap is simulated by a load + CAS retry loop;
//! * **LL/SC** — both swap and CAS simulated with LL/SC loops;
//! * **FAΦ** — native `fetch_and_store`; since FAΦ cannot simulate CAS
//!   (it is at level 2 of Herlihy's hierarchy), release uses the
//!   swap-only variant from the MCS paper, which repairs the queue when
//!   it races with a concurrent enqueue.
//!
//! Queue-node pointers are represented as the byte address of the
//! node's `next` word; 0 is nil (the allocator never hands out line 0).

use crate::primitive::{PrimChoice, Primitive};
use crate::submachine::{Step, SubMachine};
use dsm_protocol::{MemOp, OpResult, PhiOp};
use dsm_sim::{Addr, SimRng};

/// The shared memory layout of one MCS lock.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct McsLock {
    /// The tail pointer — the atomically accessed synchronization word.
    pub tail: Addr,
}

/// One processor's queue node: `next` and `locked` words (same line —
/// the owner spins on `locked` locally).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct McsQnode {
    /// Address of the `next` pointer word; doubles as this node's id.
    pub next: Addr,
    /// Address of the `locked` flag word.
    pub locked: Addr,
}

impl McsQnode {
    /// Builds a qnode from its base address (two consecutive words).
    pub fn at(base: Addr) -> Self {
        McsQnode {
            next: base,
            locked: base + 8,
        }
    }

    /// This node's pointer value.
    pub fn id(&self) -> u64 {
        self.next.as_u64()
    }
}

/// How long (cycles) a waiter sleeps between spin reads of its `locked`
/// flag. Spins are local cache hits under the INV base protocol, so this
/// mainly bounds simulator event counts.
const SPIN_DELAY: u64 = 4;

/// Acquire side of the MCS lock.
#[derive(Debug, Clone)]
pub struct McsAcquire {
    lock: McsLock,
    qnode: McsQnode,
    choice: PrimChoice,
    state: AcqState,
    /// Serial number the successful enqueue SC used (serial-number
    /// scheme only); the tail's serial afterwards is this plus one.
    enqueue_serial: Option<u64>,
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum AcqState {
    InitNext,
    InitLocked,
    SwapStart,
    WaitSwapFetch,
    WaitSwapLoad,
    WaitSwapCas { expected: u64 },
    WaitSwapLl,
    WaitSwapSc { observed: u64 },
    LinkPred { pred: u64 },
    SpinLoad,
    WaitSpin,
}

impl McsAcquire {
    /// Creates an acquire of `lock` using `qnode` as this processor's
    /// queue node.
    pub fn new(lock: McsLock, qnode: McsQnode, choice: PrimChoice) -> Self {
        McsAcquire {
            lock,
            qnode,
            choice,
            state: AcqState::InitNext,
            enqueue_serial: None,
        }
    }

    /// After a successful LL/SC acquire under the serial-number scheme,
    /// the tail's serial number (our SC's serial plus one) — the datum
    /// §3.1 says lets the release issue a *bare* store-conditional,
    /// "reducing by one the number of memory accesses required to
    /// relinquish the lock".
    pub fn tail_serial_after_acquire(&self) -> Option<u64> {
        self.enqueue_serial.map(|s| s.wrapping_add(1))
    }

    /// Resets for a fresh acquisition.
    pub fn reset(&mut self) {
        self.state = AcqState::InitNext;
    }

    fn start_swap(&mut self) -> Step {
        match self.choice.prim {
            Primitive::FetchPhi => {
                self.state = AcqState::WaitSwapFetch;
                Step::Op(MemOp::FetchPhi {
                    addr: self.lock.tail,
                    op: PhiOp::Store(self.qnode.id()),
                })
            }
            Primitive::Cas => {
                self.state = AcqState::WaitSwapLoad;
                if self.choice.load_exclusive {
                    Step::Op(MemOp::LoadExclusive {
                        addr: self.lock.tail,
                    })
                } else {
                    Step::Op(MemOp::Load {
                        addr: self.lock.tail,
                    })
                }
            }
            Primitive::Llsc => {
                self.state = AcqState::WaitSwapLl;
                Step::Op(MemOp::LoadLinked {
                    addr: self.lock.tail,
                })
            }
        }
    }

    fn swapped(&mut self, pred: u64) -> Step {
        if pred == 0 {
            Step::Done
        } else {
            self.state = AcqState::LinkPred { pred };
            // pred is the address of the predecessor's `next` word.
            Step::Op(MemOp::Store {
                addr: Addr::new(pred),
                value: self.qnode.id(),
            })
        }
    }
}

impl SubMachine for McsAcquire {
    fn step(&mut self, last: Option<OpResult>, _rng: &mut SimRng) -> Step {
        match self.state {
            AcqState::InitNext => {
                self.state = AcqState::InitLocked;
                Step::Op(MemOp::Store {
                    addr: self.qnode.next,
                    value: 0,
                })
            }
            AcqState::InitLocked => {
                self.state = AcqState::SwapStart;
                Step::Op(MemOp::Store {
                    addr: self.qnode.locked,
                    value: 1,
                })
            }
            AcqState::SwapStart => self.start_swap(),
            AcqState::WaitSwapFetch => {
                let OpResult::Fetched { old } = last.expect("swap result") else {
                    panic!("expected Fetched");
                };
                self.swapped(old)
            }
            AcqState::WaitSwapLoad => {
                let v = last.expect("load result").value().expect("load value");
                self.state = AcqState::WaitSwapCas { expected: v };
                Step::Op(MemOp::Cas {
                    addr: self.lock.tail,
                    expected: v,
                    new: self.qnode.id(),
                })
            }
            AcqState::WaitSwapCas { expected } => match last.expect("CAS result") {
                OpResult::CasDone { success: true, .. } => self.swapped(expected),
                OpResult::CasDone {
                    success: false,
                    observed,
                } => {
                    self.state = AcqState::WaitSwapCas { expected: observed };
                    Step::Op(MemOp::Cas {
                        addr: self.lock.tail,
                        expected: observed,
                        new: self.qnode.id(),
                    })
                }
                other => panic!("expected CasDone, got {other:?}"),
            },
            AcqState::WaitSwapLl => {
                let OpResult::Loaded { value, serial, .. } = last.expect("LL result") else {
                    panic!("expected Loaded");
                };
                self.enqueue_serial = serial;
                self.state = AcqState::WaitSwapSc { observed: value };
                Step::Op(MemOp::StoreConditional {
                    addr: self.lock.tail,
                    value: self.qnode.id(),
                    serial,
                })
            }
            AcqState::WaitSwapSc { observed } => match last.expect("SC result") {
                OpResult::ScDone { success: true } => self.swapped(observed),
                OpResult::ScDone { success: false } => {
                    self.state = AcqState::WaitSwapLl;
                    Step::Op(MemOp::LoadLinked {
                        addr: self.lock.tail,
                    })
                }
                other => panic!("expected ScDone, got {other:?}"),
            },
            AcqState::LinkPred { .. } => {
                self.state = AcqState::SpinLoad;
                Step::Op(MemOp::Load {
                    addr: self.qnode.locked,
                })
            }
            AcqState::SpinLoad => {
                self.state = AcqState::WaitSpin;
                Step::Op(MemOp::Load {
                    addr: self.qnode.locked,
                })
            }
            AcqState::WaitSpin => {
                let v = last.expect("spin read").value().expect("load value");
                if v == 0 {
                    Step::Done
                } else {
                    self.state = AcqState::SpinLoad;
                    Step::Compute(SPIN_DELAY)
                }
            }
        }
    }
}

/// Release side of the MCS lock.
#[derive(Debug, Clone)]
pub struct McsRelease {
    lock: McsLock,
    qnode: McsQnode,
    choice: PrimChoice,
    state: RelState,
    bare_serial: Option<u64>,
    /// Memory accesses this release saved via the bare SC (0 or 1).
    pub bare_sc_hits: u64,
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum RelState {
    ReadNext,
    WaitNext,
    // CAS / LL-SC path.
    WaitCas,
    WaitLl,
    WaitSc,
    SpinNext,
    WaitSpinNext,
    // FAΦ (swap-only) path.
    WaitSwapOut,
    WaitUsurperSwap { old_tail: u64 },
    FapSpinNext { usurper: u64 },
    FapWaitSpinNext { usurper: u64 },
    WaitHandoff,
    DropTail,
    WaitBareSc,
}

impl McsRelease {
    /// Creates a release of `lock` from `qnode`.
    pub fn new(lock: McsLock, qnode: McsQnode, choice: PrimChoice) -> Self {
        McsRelease {
            lock,
            qnode,
            choice,
            state: RelState::ReadNext,
            bare_serial: None,
            bare_sc_hits: 0,
        }
    }

    /// Enables the §3.1 bare-store-conditional release: `serial` is the
    /// tail serial recorded by
    /// [`McsAcquire::tail_serial_after_acquire`]. When no successor has
    /// enqueued, the release is a single SC instead of an LL/SC pair;
    /// if anyone enqueued, the tail's serial moved on, the bare SC
    /// fails, and the release falls back to the ordinary path.
    pub fn with_bare_serial(mut self, serial: Option<u64>) -> Self {
        self.bare_serial = serial;
        self
    }

    /// Resets for another release.
    pub fn reset(&mut self) {
        self.state = RelState::ReadNext;
    }

    fn unlock_successor(&mut self, successor: u64) -> Step {
        self.state = RelState::WaitHandoff;
        // successor points at a qnode's `next` word; its `locked` word
        // is 8 bytes further.
        Step::Op(MemOp::Store {
            addr: Addr::new(successor + 8),
            value: 0,
        })
    }

    /// Finishes the release, optionally dropping the cached copy of the
    /// tail word so the next enqueuer's swap finds it uncached.
    fn finish(&mut self) -> Step {
        if self.choice.drop_copy {
            self.state = RelState::DropTail;
            Step::Op(MemOp::DropCopy {
                addr: self.lock.tail,
            })
        } else {
            Step::Done
        }
    }
}

impl SubMachine for McsRelease {
    fn step(&mut self, last: Option<OpResult>, _rng: &mut SimRng) -> Step {
        match self.state {
            RelState::ReadNext => {
                self.state = RelState::WaitNext;
                Step::Op(MemOp::Load {
                    addr: self.qnode.next,
                })
            }
            RelState::WaitNext => {
                let next = last.expect("next read").value().expect("load value");
                if next != 0 {
                    return self.unlock_successor(next);
                }
                // No known successor: detach the queue.
                match self.choice.prim {
                    Primitive::Cas => {
                        self.state = RelState::WaitCas;
                        Step::Op(MemOp::Cas {
                            addr: self.lock.tail,
                            expected: self.qnode.id(),
                            new: 0,
                        })
                    }
                    Primitive::Llsc => {
                        if let Some(serial) = self.bare_serial.take() {
                            // Bare SC: no LL needed — we know both the
                            // expected value (us) and the serial.
                            self.state = RelState::WaitBareSc;
                            return Step::Op(MemOp::StoreConditional {
                                addr: self.lock.tail,
                                value: 0,
                                serial: Some(serial),
                            });
                        }
                        self.state = RelState::WaitLl;
                        Step::Op(MemOp::LoadLinked {
                            addr: self.lock.tail,
                        })
                    }
                    Primitive::FetchPhi => {
                        // Swap-only release (MCS, Algorithm 5): swap nil
                        // in and repair if we raced with an enqueue.
                        self.state = RelState::WaitSwapOut;
                        Step::Op(MemOp::FetchPhi {
                            addr: self.lock.tail,
                            op: PhiOp::Store(0),
                        })
                    }
                }
            }
            RelState::WaitCas => match last.expect("CAS result") {
                OpResult::CasDone { success: true, .. } => self.finish(),
                OpResult::CasDone { success: false, .. } => {
                    // Someone is enqueueing behind us: wait for the link.
                    self.state = RelState::SpinNext;
                    Step::Compute(SPIN_DELAY)
                }
                other => panic!("expected CasDone, got {other:?}"),
            },
            RelState::WaitLl => {
                let OpResult::Loaded { value, serial, .. } = last.expect("LL result") else {
                    panic!("expected Loaded");
                };
                if value == self.qnode.id() {
                    self.state = RelState::WaitSc;
                    Step::Op(MemOp::StoreConditional {
                        addr: self.lock.tail,
                        value: 0,
                        serial,
                    })
                } else {
                    // Tail moved on: a successor is linking itself.
                    self.state = RelState::SpinNext;
                    Step::Compute(SPIN_DELAY)
                }
            }
            RelState::WaitBareSc => match last.expect("SC result") {
                OpResult::ScDone { success: true } => {
                    // The single-access release the paper promises.
                    self.bare_sc_hits = 1;
                    self.finish()
                }
                OpResult::ScDone { success: false } => {
                    // A successor enqueued (the serial moved on): fall
                    // back to the ordinary release.
                    self.state = RelState::WaitLl;
                    Step::Op(MemOp::LoadLinked {
                        addr: self.lock.tail,
                    })
                }
                other => panic!("expected ScDone, got {other:?}"),
            },
            RelState::WaitSc => match last.expect("SC result") {
                OpResult::ScDone { success: true } => self.finish(),
                OpResult::ScDone { success: false } => {
                    self.state = RelState::WaitLl;
                    Step::Op(MemOp::LoadLinked {
                        addr: self.lock.tail,
                    })
                }
                other => panic!("expected ScDone, got {other:?}"),
            },
            RelState::SpinNext => {
                self.state = RelState::WaitSpinNext;
                Step::Op(MemOp::Load {
                    addr: self.qnode.next,
                })
            }
            RelState::WaitSpinNext => {
                let next = last.expect("spin read").value().expect("load value");
                if next != 0 {
                    self.unlock_successor(next)
                } else {
                    self.state = RelState::SpinNext;
                    Step::Compute(SPIN_DELAY)
                }
            }
            RelState::WaitSwapOut => {
                let OpResult::Fetched { old } = last.expect("swap result") else {
                    panic!("expected Fetched");
                };
                if old == self.qnode.id() {
                    // Nobody slipped in: done.
                    return self.finish();
                }
                // old != us: processes enqueued after us and we have now
                // pulled them off the queue. Put them back and hand over.
                self.state = RelState::WaitUsurperSwap { old_tail: old };
                Step::Op(MemOp::FetchPhi {
                    addr: self.lock.tail,
                    op: PhiOp::Store(old),
                })
            }
            RelState::WaitUsurperSwap { .. } => {
                let OpResult::Fetched { old: usurper } = last.expect("swap result") else {
                    panic!("expected Fetched");
                };
                self.state = RelState::FapSpinNext { usurper };
                Step::Op(MemOp::Load {
                    addr: self.qnode.next,
                })
            }
            RelState::FapSpinNext { usurper } => {
                self.state = RelState::FapWaitSpinNext { usurper };
                Step::Op(MemOp::Load {
                    addr: self.qnode.next,
                })
            }
            RelState::FapWaitSpinNext { usurper } => {
                let next = last.expect("spin read").value().expect("load value");
                if next == 0 {
                    self.state = RelState::FapSpinNext { usurper };
                    return Step::Compute(SPIN_DELAY);
                }
                if usurper != 0 {
                    // An usurper grabbed the lock word while it was nil;
                    // give it our successors by linking them behind it.
                    self.state = RelState::WaitHandoff;
                    Step::Op(MemOp::Store {
                        addr: Addr::new(usurper),
                        value: next,
                    })
                } else {
                    self.unlock_successor(next)
                }
            }
            RelState::WaitHandoff => self.finish(),
            RelState::DropTail => Step::Done,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::submachine::drive_sync;
    use std::collections::HashMap;

    /// A sequential memory for MCS logic tests.
    #[derive(Default)]
    struct Mem {
        words: HashMap<u64, u64>,
        reserved: bool,
    }

    impl Mem {
        fn get(&self, a: Addr) -> u64 {
            self.words.get(&a.as_u64()).copied().unwrap_or(0)
        }
        fn eval(&mut self, op: MemOp) -> OpResult {
            match op {
                MemOp::Load { addr } | MemOp::LoadExclusive { addr } => OpResult::Loaded {
                    value: self.get(addr),
                    serial: None,
                    reserved: false,
                },
                MemOp::LoadLinked { addr } => {
                    self.reserved = true;
                    OpResult::Loaded {
                        value: self.get(addr),
                        serial: None,
                        reserved: true,
                    }
                }
                MemOp::Store { addr, value } => {
                    self.words.insert(addr.as_u64(), value);
                    OpResult::Stored
                }
                MemOp::FetchPhi { addr, op } => {
                    let old = self.get(addr);
                    self.words.insert(addr.as_u64(), op.apply(old));
                    OpResult::Fetched { old }
                }
                MemOp::Cas {
                    addr,
                    expected,
                    new,
                } => {
                    let observed = self.get(addr);
                    if observed == expected {
                        self.words.insert(addr.as_u64(), new);
                        OpResult::CasDone {
                            success: true,
                            observed,
                        }
                    } else {
                        OpResult::CasDone {
                            success: false,
                            observed,
                        }
                    }
                }
                MemOp::StoreConditional { addr, value, .. } => {
                    if self.reserved {
                        self.reserved = false;
                        self.words.insert(addr.as_u64(), value);
                        OpResult::ScDone { success: true }
                    } else {
                        OpResult::ScDone { success: false }
                    }
                }
                MemOp::DropCopy { .. } => OpResult::Stored,
            }
        }
    }

    const TAIL: Addr = Addr::new(0x100);

    fn lock() -> McsLock {
        McsLock { tail: TAIL }
    }

    fn qnode(n: u64) -> McsQnode {
        McsQnode::at(Addr::new(0x1000 + n * 64))
    }

    #[test]
    fn qnode_layout() {
        let q = McsQnode::at(Addr::new(0x40));
        assert_eq!(q.next, Addr::new(0x40));
        assert_eq!(q.locked, Addr::new(0x48));
        assert_eq!(q.id(), 0x40);
    }

    #[test]
    fn uncontended_acquire_release_each_primitive() {
        for prim in Primitive::ALL {
            let mut mem = Mem::default();
            let mut rng = SimRng::new(1);
            let q = qnode(0);
            let mut acq = McsAcquire::new(lock(), q, PrimChoice::plain(prim));
            drive_sync(&mut acq, &mut rng, 1000, |op| mem.eval(op));
            assert_eq!(mem.get(TAIL), q.id(), "{prim}: tail points at us");

            let mut rel = McsRelease::new(lock(), q, PrimChoice::plain(prim));
            drive_sync(&mut rel, &mut rng, 1000, |op| mem.eval(op));
            assert_eq!(mem.get(TAIL), 0, "{prim}: tail cleared");
        }
    }

    #[test]
    fn queued_acquire_spins_until_handoff() {
        let mut mem = Mem::default();
        let mut rng = SimRng::new(1);
        let (q0, q1) = (qnode(0), qnode(1));

        // P0 acquires.
        let mut acq0 = McsAcquire::new(lock(), q0, PrimChoice::plain(Primitive::Cas));
        drive_sync(&mut acq0, &mut rng, 1000, |op| mem.eval(op));

        // P1 starts acquiring: it must link behind P0 and spin.
        let mut acq1 = McsAcquire::new(lock(), q1, PrimChoice::plain(Primitive::Cas));
        let mut last = None;
        let mut spun = 0;
        let acquired_after_release = loop {
            match acq1.step(last.take(), &mut rng) {
                Step::Op(op) => last = Some(mem.eval(op)),
                Step::Compute(_) => {
                    spun += 1;
                    if spun == 3 {
                        // Release P0 mid-spin.
                        let mut rel0 =
                            McsRelease::new(lock(), q0, PrimChoice::plain(Primitive::Cas));
                        drive_sync(&mut rel0, &mut rng, 1000, |op| mem.eval(op));
                    }
                    assert!(spun < 100, "P1 never got the lock");
                }
                Step::Done => break true,
            }
        };
        assert!(acquired_after_release);
        assert_eq!(mem.get(q0.next), q1.id(), "P0's next linked to P1");
        assert_eq!(mem.get(q1.locked), 0, "P0 unlocked P1 on release");
        assert_eq!(mem.get(TAIL), q1.id(), "tail now points at P1");
    }

    #[test]
    fn release_with_waiting_successor_hands_off_directly() {
        let mut mem = Mem::default();
        let mut rng = SimRng::new(1);
        let (q0, q1) = (qnode(0), qnode(1));
        // Queue state: P0 holds, P1 linked and spinning.
        mem.words.insert(TAIL.as_u64(), q1.id());
        mem.words.insert(q0.next.as_u64(), q1.id());
        mem.words.insert(q1.locked.as_u64(), 1);

        let mut rel = McsRelease::new(lock(), q0, PrimChoice::plain(Primitive::Cas));
        let ops = drive_sync(&mut rel, &mut rng, 100, |op| mem.eval(op));
        assert_eq!(ops, 2, "read next + unlock successor");
        assert_eq!(mem.get(q1.locked), 0);
        assert_eq!(mem.get(TAIL), q1.id(), "tail untouched");
    }

    #[test]
    fn swap_only_release_repairs_usurped_queue() {
        // Scenario from the MCS paper: P0 releases with swap; between
        // P1's swap-in and link-store, P0's release swaps the tail to
        // nil; an usurper P2 then swaps itself in. P0 must splice P1
        // behind P2.
        let mut mem = Mem::default();
        let mut rng = SimRng::new(1);
        let (q0, q1, q2) = (qnode(0), qnode(1), qnode(2));

        // P1 has swapped itself in (tail = q1) but NOT yet linked into
        // q0.next.
        mem.words.insert(TAIL.as_u64(), q1.id());
        mem.words.insert(q1.locked.as_u64(), 1);

        let mut rel = McsRelease::new(lock(), q0, PrimChoice::plain(Primitive::FetchPhi));
        let mut last = None;
        let mut step_count = 0;
        loop {
            step_count += 1;
            assert!(step_count < 200, "release did not finish");
            match rel.step(last.take(), &mut rng) {
                Step::Op(op) => {
                    last = Some(mem.eval(op));
                    // After P0's first swap (tail -> 0), P2 usurps and
                    // P1 completes its link.
                    if step_count == 2 {
                        assert_eq!(mem.get(TAIL), 0, "P0 swapped nil in");
                        mem.words.insert(TAIL.as_u64(), q2.id()); // P2 swaps in (sees nil => holds lock)
                        mem.words.insert(q0.next.as_u64(), q1.id()); // P1 finishes its link
                    }
                }
                Step::Compute(_) => {}
                Step::Done => break,
            }
        }
        // P0 restored the tail to q1 (the original old_tail) and gave
        // the usurper P2 the orphaned successors: q2.next = q1.
        assert_eq!(mem.get(TAIL), q1.id());
        assert_eq!(
            mem.get(q2.next),
            q1.id(),
            "usurper inherits the orphaned queue"
        );
        assert_eq!(mem.get(q1.locked), 1, "P1 still waits (P2 holds the lock)");
    }

    #[test]
    fn llsc_release_retries_sc() {
        let mut mem = Mem::default();
        let mut rng = SimRng::new(1);
        let q0 = qnode(0);
        mem.words.insert(TAIL.as_u64(), q0.id());
        let mut rel = McsRelease::new(lock(), q0, PrimChoice::plain(Primitive::Llsc));
        let mut failed_once = false;
        drive_sync(&mut rel, &mut rng, 100, |op| {
            if matches!(op, MemOp::StoreConditional { .. }) && !failed_once {
                failed_once = true;
                mem.reserved = false;
                return OpResult::ScDone { success: false };
            }
            mem.eval(op)
        });
        assert!(failed_once);
        assert_eq!(mem.get(TAIL), 0);
    }
}
