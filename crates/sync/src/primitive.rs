//! The primitive axis of the paper's experiments.

/// Which universal/atomic primitive a workload is built on — the FAΦ /
/// LL-SC / CAS axis of Figures 3–6.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Primitive {
    /// `fetch_and_Φ` (fetch_and_add for counters, test_and_set for TTS
    /// locks, fetch_and_store for MCS queues).
    FetchPhi,
    /// `load_linked` / `store_conditional`, also used to *simulate*
    /// swap and compare_and_swap where the algorithm needs them.
    Llsc,
    /// `compare_and_swap`, also used to simulate swap where needed.
    Cas,
}

impl Primitive {
    /// All primitives in the paper's reporting order.
    pub const ALL: [Primitive; 3] = [Primitive::FetchPhi, Primitive::Llsc, Primitive::Cas];

    /// The label used in the paper's figures.
    pub fn label(self) -> &'static str {
        match self {
            Primitive::FetchPhi => "FAP",
            Primitive::Llsc => "LLSC",
            Primitive::Cas => "CAS",
        }
    }

    /// `true` if this primitive can execute at the home memory without
    /// migrating the line (`SyncConfig::home_atomics` — the modern
    /// ARM-LSE-style *fourth* implementation point, beyond the paper's
    /// cached/uncached/LL-SC trio). FAΦ and CAS are single round-trip
    /// read-modify-writes and qualify; LL/SC is split across two
    /// operations whose reservation is inherently cache-side, so it
    /// does not.
    pub fn supports_home_atomics(self) -> bool {
        match self {
            Primitive::FetchPhi | Primitive::Cas => true,
            Primitive::Llsc => false,
        }
    }
}

impl std::fmt::Display for Primitive {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.label())
    }
}

/// A primitive choice plus the auxiliary-instruction knobs of §3.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PrimChoice {
    /// The primitive family.
    pub prim: Primitive,
    /// Use `load_exclusive` for the read preceding a CAS ("the intent is
    /// to make it more likely that compare_and_swap will not have to go
    /// to memory"). Meaningful only with [`Primitive::Cas`] under the
    /// INV policy; "load_linked cannot be exclusive: otherwise livelock
    /// is likely to occur".
    pub load_exclusive: bool,
    /// Issue `drop_copy` after each update to self-invalidate the line.
    pub drop_copy: bool,
}

impl PrimChoice {
    /// A plain choice with no auxiliary instructions.
    pub fn plain(prim: Primitive) -> Self {
        PrimChoice {
            prim,
            load_exclusive: false,
            drop_copy: false,
        }
    }

    /// Enables `load_exclusive`.
    pub fn with_load_exclusive(mut self) -> Self {
        self.load_exclusive = true;
        self
    }

    /// Enables `drop_copy`.
    pub fn with_drop_copy(mut self) -> Self {
        self.drop_copy = true;
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn labels_match_paper() {
        assert_eq!(Primitive::FetchPhi.label(), "FAP");
        assert_eq!(Primitive::Llsc.label(), "LLSC");
        assert_eq!(format!("{}", Primitive::Cas), "CAS");
    }

    #[test]
    fn home_atomics_cover_the_single_round_trip_primitives() {
        assert!(Primitive::FetchPhi.supports_home_atomics());
        assert!(Primitive::Cas.supports_home_atomics());
        assert!(!Primitive::Llsc.supports_home_atomics());
    }

    #[test]
    fn builder_toggles() {
        let c = PrimChoice::plain(Primitive::Cas)
            .with_load_exclusive()
            .with_drop_copy();
        assert!(c.load_exclusive);
        assert!(c.drop_copy);
        let p = PrimChoice::plain(Primitive::FetchPhi);
        assert!(!p.load_exclusive && !p.drop_copy);
    }
}
