//! A centralized reader-writer lock.
//!
//! The paper lists reader-writer locks \[21\] among the synchronization
//! styles that "need or benefit from compare_and_swap" (§2.2). This is
//! the centralized counter-based variant: one word encodes a writer bit
//! and a reader count, manipulated with CAS or LL/SC (a `fetch_and_Φ`-
//! only machine cannot implement the conditional acquire path, which is
//! precisely Herlihy's point about levels of the hierarchy — though it
//! *can* execute the unconditional reader release, and
//! [`ReadRelease`] uses `fetch_and_add` when asked to).
//!
//! Writers are exclusive; readers are concurrent with each other.
//! Acquisition uses test-and-test-and-set style spinning with bounded
//! exponential backoff.

use crate::backoff::Backoff;
use crate::primitive::Primitive;
use crate::submachine::{Step, SubMachine};
use dsm_protocol::{MemOp, OpResult, PhiOp};
use dsm_sim::{Addr, SimRng};

/// The writer-held bit in the lock word (the low bits count readers).
pub const WRITER_BIT: u64 = 1 << 63;

/// Acquires the lock for reading: spins until no writer holds it, then
/// atomically increments the reader count.
#[derive(Debug, Clone)]
pub struct ReadAcquire {
    lock: Addr,
    prim: Primitive,
    backoff: Backoff,
    state: RwState,
}

/// Releases a read hold: atomically decrements the reader count.
#[derive(Debug, Clone)]
pub struct ReadRelease {
    lock: Addr,
    prim: Primitive,
    state: RwState,
}

/// Acquires the lock for writing: spins until the word is 0 (no writer,
/// no readers), then atomically sets the writer bit.
#[derive(Debug, Clone)]
pub struct WriteAcquire {
    lock: Addr,
    prim: Primitive,
    backoff: Backoff,
    state: RwState,
}

/// Releases a write hold: an ordinary store of 0.
#[derive(Debug, Clone)]
pub struct WriteRelease {
    lock: Addr,
    done: bool,
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum RwState {
    Read,
    WaitRead,
    WaitSwap { observed: u64 },
    WaitFetch,
}

fn assert_universal(prim: Primitive) {
    assert!(
        prim != Primitive::FetchPhi,
        "fetch_and_Φ alone cannot implement the conditional RW-lock acquire \
         (it is at level 2 of Herlihy's hierarchy); use CAS or LL/SC"
    );
}

impl ReadAcquire {
    /// Creates a read acquire using `prim` (CAS or LL/SC).
    ///
    /// # Panics
    ///
    /// Panics if `prim` is [`Primitive::FetchPhi`].
    pub fn new(lock: Addr, prim: Primitive) -> Self {
        assert_universal(prim);
        ReadAcquire {
            lock,
            prim,
            backoff: Backoff::default(),
            state: RwState::Read,
        }
    }
}

impl SubMachine for ReadAcquire {
    fn step(&mut self, last: Option<OpResult>, rng: &mut SimRng) -> Step {
        match self.state {
            RwState::Read => {
                self.state = RwState::WaitRead;
                match self.prim {
                    Primitive::Llsc => Step::Op(MemOp::LoadLinked { addr: self.lock }),
                    _ => Step::Op(MemOp::Load { addr: self.lock }),
                }
            }
            RwState::WaitRead => {
                let result = last.expect("lock read");
                let v = result.value().expect("load value");
                if v & WRITER_BIT != 0 {
                    self.state = RwState::Read;
                    return Step::Compute(self.backoff.next(rng));
                }
                self.state = RwState::WaitSwap { observed: v };
                match self.prim {
                    Primitive::Llsc => {
                        let serial = match result {
                            OpResult::Loaded { serial, .. } => serial,
                            _ => None,
                        };
                        Step::Op(MemOp::StoreConditional {
                            addr: self.lock,
                            value: v + 1,
                            serial,
                        })
                    }
                    _ => Step::Op(MemOp::Cas {
                        addr: self.lock,
                        expected: v,
                        new: v + 1,
                    }),
                }
            }
            RwState::WaitSwap { .. } => match last.expect("swap result") {
                OpResult::CasDone { success: true, .. } | OpResult::ScDone { success: true } => {
                    Step::Done
                }
                OpResult::CasDone { success: false, .. } | OpResult::ScDone { success: false } => {
                    self.state = RwState::Read;
                    Step::Compute(self.backoff.next(rng))
                }
                other => panic!("unexpected {other:?}"),
            },
            RwState::WaitFetch => unreachable!("read acquire never fetches"),
        }
    }
}

impl ReadRelease {
    /// Creates a read release. With [`Primitive::FetchPhi`] the
    /// decrement is a single unconditional `fetch_and_add(-1)`; the
    /// universal primitives use their retry loops.
    pub fn new(lock: Addr, prim: Primitive) -> Self {
        ReadRelease {
            lock,
            prim,
            state: RwState::Read,
        }
    }
}

impl SubMachine for ReadRelease {
    fn step(&mut self, last: Option<OpResult>, _rng: &mut SimRng) -> Step {
        match self.state {
            RwState::Read => match self.prim {
                Primitive::FetchPhi => {
                    self.state = RwState::WaitFetch;
                    Step::Op(MemOp::FetchPhi {
                        addr: self.lock,
                        op: PhiOp::Add(u64::MAX),
                    })
                }
                Primitive::Llsc => {
                    self.state = RwState::WaitRead;
                    Step::Op(MemOp::LoadLinked { addr: self.lock })
                }
                Primitive::Cas => {
                    self.state = RwState::WaitRead;
                    Step::Op(MemOp::Load { addr: self.lock })
                }
            },
            RwState::WaitFetch => {
                let OpResult::Fetched { old } = last.expect("fetch result") else {
                    panic!("expected Fetched");
                };
                debug_assert!(old & !WRITER_BIT > 0, "releasing an unheld read lock");
                Step::Done
            }
            RwState::WaitRead => {
                let result = last.expect("lock read");
                let v = result.value().expect("load value");
                debug_assert!(v & !WRITER_BIT > 0, "releasing an unheld read lock");
                self.state = RwState::WaitSwap { observed: v };
                match self.prim {
                    Primitive::Llsc => {
                        let serial = match result {
                            OpResult::Loaded { serial, .. } => serial,
                            _ => None,
                        };
                        Step::Op(MemOp::StoreConditional {
                            addr: self.lock,
                            value: v - 1,
                            serial,
                        })
                    }
                    _ => Step::Op(MemOp::Cas {
                        addr: self.lock,
                        expected: v,
                        new: v - 1,
                    }),
                }
            }
            RwState::WaitSwap { .. } => match last.expect("swap result") {
                OpResult::CasDone { success: true, .. } | OpResult::ScDone { success: true } => {
                    Step::Done
                }
                OpResult::CasDone { success: false, .. } | OpResult::ScDone { success: false } => {
                    self.state = RwState::Read;
                    // Retry immediately: the decrement is unconditional.
                    self.step(None, _rng)
                }
                other => panic!("unexpected {other:?}"),
            },
        }
    }
}

impl WriteAcquire {
    /// Creates a write acquire using `prim` (CAS or LL/SC).
    ///
    /// # Panics
    ///
    /// Panics if `prim` is [`Primitive::FetchPhi`].
    pub fn new(lock: Addr, prim: Primitive) -> Self {
        assert_universal(prim);
        WriteAcquire {
            lock,
            prim,
            backoff: Backoff::default(),
            state: RwState::Read,
        }
    }
}

impl SubMachine for WriteAcquire {
    fn step(&mut self, last: Option<OpResult>, rng: &mut SimRng) -> Step {
        match self.state {
            RwState::Read => {
                self.state = RwState::WaitRead;
                match self.prim {
                    Primitive::Llsc => Step::Op(MemOp::LoadLinked { addr: self.lock }),
                    _ => Step::Op(MemOp::Load { addr: self.lock }),
                }
            }
            RwState::WaitRead => {
                let result = last.expect("lock read");
                let v = result.value().expect("load value");
                if v != 0 {
                    // Readers active or writer present: back off.
                    self.state = RwState::Read;
                    return Step::Compute(self.backoff.next(rng));
                }
                self.state = RwState::WaitSwap { observed: v };
                match self.prim {
                    Primitive::Llsc => {
                        let serial = match result {
                            OpResult::Loaded { serial, .. } => serial,
                            _ => None,
                        };
                        Step::Op(MemOp::StoreConditional {
                            addr: self.lock,
                            value: WRITER_BIT,
                            serial,
                        })
                    }
                    _ => Step::Op(MemOp::Cas {
                        addr: self.lock,
                        expected: 0,
                        new: WRITER_BIT,
                    }),
                }
            }
            RwState::WaitSwap { .. } => match last.expect("swap result") {
                OpResult::CasDone { success: true, .. } | OpResult::ScDone { success: true } => {
                    Step::Done
                }
                OpResult::CasDone { success: false, .. } | OpResult::ScDone { success: false } => {
                    self.state = RwState::Read;
                    Step::Compute(self.backoff.next(rng))
                }
                other => panic!("unexpected {other:?}"),
            },
            RwState::WaitFetch => unreachable!("write acquire never fetches"),
        }
    }
}

impl WriteRelease {
    /// Creates a write release.
    pub fn new(lock: Addr) -> Self {
        WriteRelease { lock, done: false }
    }
}

impl SubMachine for WriteRelease {
    fn step(&mut self, _last: Option<OpResult>, _rng: &mut SimRng) -> Step {
        if self.done {
            Step::Done
        } else {
            self.done = true;
            Step::Op(MemOp::Store {
                addr: self.lock,
                value: 0,
            })
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::submachine::drive_sync;

    struct Mem {
        lock: u64,
        reserved: bool,
    }

    impl Mem {
        fn eval(&mut self, op: MemOp) -> OpResult {
            match op {
                MemOp::Load { .. } => OpResult::Loaded {
                    value: self.lock,
                    serial: None,
                    reserved: false,
                },
                MemOp::LoadLinked { .. } => {
                    self.reserved = true;
                    OpResult::Loaded {
                        value: self.lock,
                        serial: None,
                        reserved: true,
                    }
                }
                MemOp::Store { value, .. } => {
                    self.lock = value;
                    OpResult::Stored
                }
                MemOp::FetchPhi { op, .. } => {
                    let old = self.lock;
                    self.lock = op.apply(old);
                    OpResult::Fetched { old }
                }
                MemOp::Cas { expected, new, .. } => {
                    let observed = self.lock;
                    if observed == expected {
                        self.lock = new;
                        OpResult::CasDone {
                            success: true,
                            observed,
                        }
                    } else {
                        OpResult::CasDone {
                            success: false,
                            observed,
                        }
                    }
                }
                MemOp::StoreConditional { value, .. } => {
                    if self.reserved {
                        self.reserved = false;
                        self.lock = value;
                        OpResult::ScDone { success: true }
                    } else {
                        OpResult::ScDone { success: false }
                    }
                }
                other => panic!("unexpected {other:?}"),
            }
        }
    }

    const L: Addr = Addr::new(0x40);

    #[test]
    fn readers_stack_up_and_drain() {
        for prim in [Primitive::Cas, Primitive::Llsc] {
            let mut mem = Mem {
                lock: 0,
                reserved: false,
            };
            let mut rng = SimRng::new(1);
            for expected in 1..=3u64 {
                let mut a = ReadAcquire::new(L, prim);
                drive_sync(&mut a, &mut rng, 100, |op| mem.eval(op));
                assert_eq!(mem.lock, expected, "{prim}");
            }
            for expected in (0..=2u64).rev() {
                let mut r = ReadRelease::new(L, prim);
                drive_sync(&mut r, &mut rng, 100, |op| mem.eval(op));
                assert_eq!(mem.lock, expected, "{prim}");
            }
        }
    }

    #[test]
    fn fetch_add_read_release() {
        let mut mem = Mem {
            lock: 2,
            reserved: false,
        };
        let mut rng = SimRng::new(1);
        let mut r = ReadRelease::new(L, Primitive::FetchPhi);
        let ops = drive_sync(&mut r, &mut rng, 100, |op| mem.eval(op));
        assert_eq!(ops, 1, "unconditional decrement is a single fetch_and_add");
        assert_eq!(mem.lock, 1);
    }

    #[test]
    fn writer_excludes_and_releases() {
        let mut mem = Mem {
            lock: 0,
            reserved: false,
        };
        let mut rng = SimRng::new(1);
        let mut w = WriteAcquire::new(L, Primitive::Cas);
        drive_sync(&mut w, &mut rng, 100, |op| mem.eval(op));
        assert_eq!(mem.lock, WRITER_BIT);
        let mut r = WriteRelease::new(L);
        drive_sync(&mut r, &mut rng, 100, |op| mem.eval(op));
        assert_eq!(mem.lock, 0);
    }

    #[test]
    fn reader_spins_while_writer_holds() {
        let mut mem = Mem {
            lock: WRITER_BIT,
            reserved: false,
        };
        let mut rng = SimRng::new(1);
        let mut a = ReadAcquire::new(L, Primitive::Cas);
        let mut reads = 0;
        let mut last = None;
        // Step through a few spins, then release the writer.
        for _ in 0..200 {
            match a.step(last.take(), &mut rng) {
                Step::Op(op) => {
                    if matches!(op, MemOp::Load { .. }) {
                        reads += 1;
                        if reads == 4 {
                            mem.lock = 0; // writer releases
                        }
                    }
                    last = Some(mem.eval(op));
                }
                Step::Compute(_) => {}
                Step::Done => {
                    assert_eq!(mem.lock, 1);
                    return;
                }
            }
        }
        panic!("reader never acquired");
    }

    #[test]
    fn writer_spins_while_readers_present() {
        let mut mem = Mem {
            lock: 2,
            reserved: false,
        };
        let mut rng = SimRng::new(1);
        let mut w = WriteAcquire::new(L, Primitive::Llsc);
        let mut reads = 0;
        let mut last = None;
        for _ in 0..400 {
            match w.step(last.take(), &mut rng) {
                Step::Op(op) => {
                    if matches!(op, MemOp::LoadLinked { .. }) {
                        reads += 1;
                        if reads == 3 {
                            mem.lock = 0; // readers drain
                        }
                    }
                    last = Some(mem.eval(op));
                }
                Step::Compute(_) => {}
                Step::Done => {
                    assert_eq!(mem.lock, WRITER_BIT);
                    return;
                }
            }
        }
        panic!("writer never acquired");
    }

    #[test]
    #[should_panic(expected = "level 2 of Herlihy's hierarchy")]
    fn fetch_phi_cannot_acquire() {
        let _ = WriteAcquire::new(L, Primitive::FetchPhi);
    }
}
