//! A lock-free (Treiber) stack — the §2.2 expressive-power story made
//! executable.
//!
//! The paper argues that `compare_and_swap` "can cause a problem if the
//! datum is a pointer and if a pointer can retain its original value
//! after deallocating and reallocating the storage accessed by it" (the
//! ABA problem), while `load_linked`/`store_conditional` — whose
//! reservations are invalidated by *any* write — does not suffer from
//! it. The classic victim is this stack.
//!
//! Three head-pointer disciplines are provided:
//!
//! * [`StackPrim::CasPlain`] — raw pointers + CAS. **ABA-vulnerable**:
//!   see the demonstration in `tests/lockfree_stack.rs`.
//! * [`StackPrim::CasCounted`] — a generation count packed into the
//!   upper 32 bits of the head word, the standard software fix (and the
//!   in-memory analogue of the paper's §3.1 serial-number proposal).
//! * [`StackPrim::Llsc`] — LL/SC; safe by construction.
//!
//! Node layout: each node is one cache line whose word 0 is `next` and
//! word 1 is a user value. A node is named by the address of its `next`
//! word; 0 is nil.

use crate::submachine::{Step, SubMachine};
use dsm_protocol::{MemOp, OpResult};
use dsm_sim::{Addr, SimRng};

/// Which primitive discipline manipulates the stack head.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum StackPrim {
    /// Raw pointer CAS (ABA-vulnerable).
    CasPlain,
    /// CAS over a `(generation << 32) | pointer` packed word.
    CasCounted,
    /// Load-linked / store-conditional.
    Llsc,
}

/// Packs a generation count and a (32-bit) node address into one word.
pub fn pack(generation: u32, node: u64) -> u64 {
    debug_assert!(
        node <= u32::MAX as u64,
        "node addresses must fit in 32 bits"
    );
    ((generation as u64) << 32) | node
}

/// Extracts the node address from a packed head word.
pub fn unpack_node(word: u64) -> u64 {
    word & 0xFFFF_FFFF
}

/// Extracts the generation count from a packed head word.
pub fn unpack_gen(word: u64) -> u32 {
    (word >> 32) as u32
}

fn head_node(prim: StackPrim, head_word: u64) -> u64 {
    match prim {
        StackPrim::CasCounted => unpack_node(head_word),
        _ => head_word,
    }
}

/// One push of `node` onto the stack headed at `top`.
#[derive(Debug, Clone)]
pub struct StackPush {
    top: Addr,
    node: Addr,
    prim: StackPrim,
    state: PushState,
    /// Failed attempts (for statistics).
    pub retries: u64,
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum PushState {
    ReadTop,
    WaitTop,
    WaitLink { observed: u64, serial: Option<u64> },
    WaitSwap { observed: u64 },
}

impl StackPush {
    /// Creates a push of the node whose `next` word is at `node`.
    pub fn new(top: Addr, node: Addr, prim: StackPrim) -> Self {
        StackPush {
            top,
            node,
            prim,
            state: PushState::ReadTop,
            retries: 0,
        }
    }
}

impl SubMachine for StackPush {
    fn step(&mut self, last: Option<OpResult>, _rng: &mut SimRng) -> Step {
        match self.state {
            PushState::ReadTop => {
                self.state = PushState::WaitTop;
                match self.prim {
                    StackPrim::Llsc => Step::Op(MemOp::LoadLinked { addr: self.top }),
                    _ => Step::Op(MemOp::Load { addr: self.top }),
                }
            }
            PushState::WaitTop => {
                let result = last.expect("top read");
                let observed = result.value().expect("load value");
                let serial = match result {
                    OpResult::Loaded { serial, .. } => serial,
                    _ => None,
                };
                self.state = PushState::WaitLink { observed, serial };
                // Link our node in front of the observed head.
                Step::Op(MemOp::Store {
                    addr: self.node,
                    value: head_node(self.prim, observed),
                })
            }
            PushState::WaitLink { observed, serial } => {
                let new = match self.prim {
                    StackPrim::CasPlain => self.node.as_u64(),
                    StackPrim::CasCounted => {
                        pack(unpack_gen(observed).wrapping_add(1), self.node.as_u64())
                    }
                    StackPrim::Llsc => self.node.as_u64(),
                };
                self.state = PushState::WaitSwap { observed };
                match self.prim {
                    StackPrim::Llsc => {
                        // Note: the reservation placed by the LL in
                        // ReadTop survives our store to the (distinct)
                        // node line only on machines whose reservations
                        // track a specific address — which this
                        // simulator's do.
                        Step::Op(MemOp::StoreConditional {
                            addr: self.top,
                            value: new,
                            serial,
                        })
                    }
                    _ => Step::Op(MemOp::Cas {
                        addr: self.top,
                        expected: observed,
                        new,
                    }),
                }
            }
            PushState::WaitSwap { .. } => match last.expect("swap result") {
                OpResult::CasDone { success: true, .. } | OpResult::ScDone { success: true } => {
                    Step::Done
                }
                OpResult::CasDone { success: false, .. } | OpResult::ScDone { success: false } => {
                    self.retries += 1;
                    self.state = PushState::ReadTop;
                    // Retry from a fresh read of the head.
                    self.step(None, _rng)
                }
                other => panic!("unexpected swap result {other:?}"),
            },
        }
    }
}

/// One pop from the stack headed at `top`.
///
/// After [`Step::Done`], [`popped`](StackPop::popped) yields the node's
/// `next`-word address, or `None` if the stack was empty.
#[derive(Debug, Clone)]
pub struct StackPop {
    top: Addr,
    prim: StackPrim,
    state: PopState,
    result: Option<u64>,
    /// Failed attempts (for statistics).
    pub retries: u64,
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum PopState {
    ReadTop,
    WaitTop,
    WaitNext { observed: u64, serial: Option<u64> },
    WaitSwap { observed: u64 },
}

impl StackPop {
    /// Creates a pop.
    pub fn new(top: Addr, prim: StackPrim) -> Self {
        StackPop {
            top,
            prim,
            state: PopState::ReadTop,
            result: None,
            retries: 0,
        }
    }

    /// The popped node (its `next`-word address), or `None` for an
    /// empty stack. Meaningful only after the sub-machine finishes.
    pub fn popped(&self) -> Option<u64> {
        self.result.filter(|&n| n != 0)
    }
}

impl SubMachine for StackPop {
    fn step(&mut self, last: Option<OpResult>, _rng: &mut SimRng) -> Step {
        match self.state {
            PopState::ReadTop => {
                self.state = PopState::WaitTop;
                match self.prim {
                    StackPrim::Llsc => Step::Op(MemOp::LoadLinked { addr: self.top }),
                    _ => Step::Op(MemOp::Load { addr: self.top }),
                }
            }
            PopState::WaitTop => {
                let result = last.expect("top read");
                let observed = result.value().expect("load value");
                let serial = match result {
                    OpResult::Loaded { serial, .. } => serial,
                    _ => None,
                };
                if head_node(self.prim, observed) == 0 {
                    self.result = Some(0);
                    return Step::Done;
                }
                self.state = PopState::WaitNext { observed, serial };
                Step::Op(MemOp::Load {
                    addr: Addr::new(head_node(self.prim, observed)),
                })
            }
            PopState::WaitNext { observed, serial } => {
                let next = last.expect("next read").value().expect("load value");
                let new = match self.prim {
                    StackPrim::CasPlain | StackPrim::Llsc => next,
                    StackPrim::CasCounted => pack(unpack_gen(observed).wrapping_add(1), next),
                };
                self.state = PopState::WaitSwap { observed };
                match self.prim {
                    StackPrim::Llsc => Step::Op(MemOp::StoreConditional {
                        addr: self.top,
                        value: new,
                        serial,
                    }),
                    _ => Step::Op(MemOp::Cas {
                        addr: self.top,
                        expected: observed,
                        new,
                    }),
                }
            }
            PopState::WaitSwap { observed } => match last.expect("swap result") {
                OpResult::CasDone { success: true, .. } | OpResult::ScDone { success: true } => {
                    self.result = Some(head_node(self.prim, observed));
                    Step::Done
                }
                OpResult::CasDone { success: false, .. } | OpResult::ScDone { success: false } => {
                    self.retries += 1;
                    self.state = PopState::ReadTop;
                    self.step(None, _rng)
                }
                other => panic!("unexpected swap result {other:?}"),
            },
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::submachine::drive_sync;
    use std::collections::HashMap;

    #[derive(Default)]
    struct Mem {
        words: HashMap<u64, u64>,
        reserved: Option<u64>,
    }

    impl Mem {
        fn get(&self, a: u64) -> u64 {
            self.words.get(&a).copied().unwrap_or(0)
        }
        fn eval(&mut self, op: MemOp) -> OpResult {
            match op {
                MemOp::Load { addr } => OpResult::Loaded {
                    value: self.get(addr.as_u64()),
                    serial: None,
                    reserved: false,
                },
                MemOp::LoadLinked { addr } => {
                    self.reserved = Some(addr.as_u64());
                    OpResult::Loaded {
                        value: self.get(addr.as_u64()),
                        serial: None,
                        reserved: true,
                    }
                }
                MemOp::Store { addr, value } => {
                    // Any write to the reserved address clears it.
                    if self.reserved == Some(addr.as_u64()) {
                        self.reserved = None;
                    }
                    self.words.insert(addr.as_u64(), value);
                    OpResult::Stored
                }
                MemOp::Cas {
                    addr,
                    expected,
                    new,
                } => {
                    let observed = self.get(addr.as_u64());
                    if observed == expected {
                        self.words.insert(addr.as_u64(), new);
                        OpResult::CasDone {
                            success: true,
                            observed,
                        }
                    } else {
                        OpResult::CasDone {
                            success: false,
                            observed,
                        }
                    }
                }
                MemOp::StoreConditional { addr, value, .. } => {
                    if self.reserved == Some(addr.as_u64()) {
                        self.reserved = None;
                        self.words.insert(addr.as_u64(), value);
                        OpResult::ScDone { success: true }
                    } else {
                        OpResult::ScDone { success: false }
                    }
                }
                other => panic!("unexpected {other:?}"),
            }
        }
    }

    const TOP: Addr = Addr::new(0x100);

    fn node(i: u64) -> Addr {
        Addr::new(0x1000 + i * 64)
    }

    #[test]
    fn pack_round_trips() {
        let w = pack(7, 0x1234);
        assert_eq!(unpack_gen(w), 7);
        assert_eq!(unpack_node(w), 0x1234);
        assert_eq!(unpack_node(pack(u32::MAX, 0)), 0);
    }

    fn push_pop_sequence(prim: StackPrim) {
        let mut mem = Mem::default();
        let mut rng = SimRng::new(1);
        // Push nodes 0, 1, 2.
        for i in 0..3 {
            let mut p = StackPush::new(TOP, node(i), prim);
            drive_sync(&mut p, &mut rng, 100, |op| mem.eval(op));
        }
        // Pop yields LIFO order: 2, 1, 0, then empty.
        for expect in [Some(node(2)), Some(node(1)), Some(node(0)), None] {
            let mut p = StackPop::new(TOP, prim);
            drive_sync(&mut p, &mut rng, 100, |op| mem.eval(op));
            assert_eq!(p.popped(), expect.map(|a| a.as_u64()), "{prim:?}");
        }
    }

    #[test]
    fn lifo_order_cas_plain() {
        push_pop_sequence(StackPrim::CasPlain);
    }

    #[test]
    fn lifo_order_cas_counted() {
        push_pop_sequence(StackPrim::CasCounted);
    }

    #[test]
    fn lifo_order_llsc() {
        push_pop_sequence(StackPrim::Llsc);
    }

    #[test]
    fn counted_cas_bumps_generation() {
        let mut mem = Mem::default();
        let mut rng = SimRng::new(1);
        let mut p = StackPush::new(TOP, node(0), StackPrim::CasCounted);
        drive_sync(&mut p, &mut rng, 100, |op| mem.eval(op));
        assert_eq!(unpack_gen(mem.get(TOP.as_u64())), 1);
        let mut p = StackPop::new(TOP, StackPrim::CasCounted);
        drive_sync(&mut p, &mut rng, 100, |op| mem.eval(op));
        assert_eq!(unpack_gen(mem.get(TOP.as_u64())), 2);
        assert_eq!(unpack_node(mem.get(TOP.as_u64())), 0);
    }

    #[test]
    fn push_retries_on_interference() {
        let mut mem = Mem::default();
        let mut rng = SimRng::new(1);
        let mut p = StackPush::new(TOP, node(0), StackPrim::CasPlain);
        let mut interfered = false;
        drive_sync(&mut p, &mut rng, 100, |op| {
            if matches!(op, MemOp::Cas { .. }) && !interfered {
                interfered = true;
                // Someone else pushed node 9 meanwhile.
                mem.words.insert(TOP.as_u64(), node(9).as_u64());
            }
            mem.eval(op)
        });
        assert_eq!(p.retries, 1);
        // Our node now heads the stack and links to node 9.
        assert_eq!(mem.get(TOP.as_u64()), node(0).as_u64());
        assert_eq!(mem.get(node(0).as_u64()), node(9).as_u64());
    }

    /// The scripted ABA schedule from §2.2: P1 reads top=A and A.next=B;
    /// meanwhile A and B are popped and A is pushed back (with a
    /// different successor). P1's plain CAS then succeeds and corrupts
    /// the stack; the counted CAS fails and retries safely.
    fn aba_schedule(prim: StackPrim) -> (Mem, bool) {
        let mut mem = Mem::default();
        let mut rng = SimRng::new(1);
        // Stack: A -> B -> C.
        for i in [2u64, 1, 0] {
            let mut p = StackPush::new(TOP, node(i), prim);
            drive_sync(&mut p, &mut rng, 100, |op| mem.eval(op));
        }
        let (a, b, c) = (node(0).as_u64(), node(1).as_u64(), node(2).as_u64());

        // P1 starts a pop and is "preempted" right before its swap.
        let mut victim = StackPop::new(TOP, prim);
        let mut last = None;
        let mut interfered = false;
        loop {
            match victim.step(last.take(), &mut rng) {
                Step::Op(op) => {
                    if !interfered
                        && matches!(op, MemOp::Cas { .. } | MemOp::StoreConditional { .. })
                    {
                        interfered = true;
                        // --- interference: pop A, pop B, push A back ---
                        for _ in 0..2 {
                            let mut p = StackPop::new(TOP, prim);
                            drive_sync(&mut p, &mut rng, 100, |o| mem.eval(o));
                        }
                        let mut p = StackPush::new(TOP, node(0), prim);
                        drive_sync(&mut p, &mut rng, 100, |o| mem.eval(o));
                        // Stack is now A -> C; B is "free".
                        assert_eq!(head_node(prim, mem.get(TOP.as_u64())), a);
                        assert_eq!(mem.get(a), c);
                        // --- victim resumes its swap ---
                        last = Some(mem.eval(op));
                    } else {
                        last = Some(mem.eval(op));
                    }
                }
                Step::Compute(_) => {}
                Step::Done => break,
            }
        }
        let _ = b;
        // Did the victim's first swap succeed (true = ABA bit us)?
        let corrupted = victim.retries == 0;
        (mem, corrupted)
    }

    #[test]
    fn plain_cas_suffers_aba_corruption() {
        let (mem, corrupted) = aba_schedule(StackPrim::CasPlain);
        assert!(corrupted, "plain CAS must not detect the ABA writes");
        // The stack head now points at B, which was freed: corruption.
        assert_eq!(mem.get(TOP.as_u64()), node(1).as_u64());
    }

    #[test]
    fn counted_cas_survives_aba() {
        let (mem, corrupted) = aba_schedule(StackPrim::CasCounted);
        assert!(!corrupted, "the generation count must force a retry");
        // The retry popped the real head A; C remains.
        assert_eq!(unpack_node(mem.get(TOP.as_u64())), node(2).as_u64());
    }

    #[test]
    fn llsc_survives_aba() {
        let (mem, corrupted) = aba_schedule(StackPrim::Llsc);
        assert!(
            !corrupted,
            "the interfering writes must clear the reservation"
        );
        assert_eq!(
            head_node(StackPrim::Llsc, mem.get(TOP.as_u64())),
            node(2).as_u64()
        );
    }
}
