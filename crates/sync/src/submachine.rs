//! Composable sub-state-machines for synchronization algorithms.
//!
//! A [`SubMachine`] is a resumable fragment of a processor program: a
//! lock acquire, a lock release, a counter update. Workload programs
//! drive one sub-machine at a time, feeding it operation results until
//! it reports [`Step::Done`].

use dsm_protocol::{MemOp, OpResult};
use dsm_sim::SimRng;

/// One step of a sub-machine.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Step {
    /// Issue this memory operation and come back with its result.
    Op(MemOp),
    /// Compute locally (e.g. backoff) and come back with `last == None`.
    Compute(u64),
    /// The fragment finished.
    Done,
}

/// A resumable program fragment.
///
/// The first call to [`step`](SubMachine::step) receives `last == None`;
/// each later call receives the result of the operation the sub-machine
/// requested (or `None` after a [`Step::Compute`]).
pub trait SubMachine: Send {
    /// Advances the fragment.
    fn step(&mut self, last: Option<OpResult>, rng: &mut SimRng) -> Step;
}

/// Drives `sub` to completion against a closure that synchronously
/// evaluates operations — used by unit tests to check sub-machine logic
/// without a full machine.
///
/// Returns the number of operations issued.
///
/// # Panics
///
/// Panics if the sub-machine runs for more than `fuel` steps.
pub fn drive_sync<M, F>(sub: &mut M, rng: &mut SimRng, fuel: usize, mut eval: F) -> usize
where
    M: SubMachine + ?Sized,
    F: FnMut(MemOp) -> OpResult,
{
    let mut last = None;
    let mut ops = 0;
    for _ in 0..fuel {
        match sub.step(last.take(), rng) {
            Step::Op(op) => {
                ops += 1;
                last = Some(eval(op));
            }
            Step::Compute(_) => {}
            Step::Done => return ops,
        }
    }
    panic!("sub-machine did not finish within {fuel} steps");
}

#[cfg(test)]
mod tests {
    use super::*;
    use dsm_protocol::PhiOp;
    use dsm_sim::Addr;

    struct TwoOps {
        n: u8,
    }

    impl SubMachine for TwoOps {
        fn step(&mut self, last: Option<OpResult>, _rng: &mut SimRng) -> Step {
            if self.n > 0 {
                assert!(last.is_some() || self.n == 2);
            }
            match self.n {
                0 | 1 => {
                    self.n += 1;
                    Step::Op(MemOp::FetchPhi {
                        addr: Addr::new(0),
                        op: PhiOp::Add(1),
                    })
                }
                _ => Step::Done,
            }
        }
    }

    #[test]
    fn drive_sync_counts_ops() {
        let mut rng = SimRng::new(1);
        let mut m = TwoOps { n: 0 };
        let ops = drive_sync(&mut m, &mut rng, 100, |_| OpResult::Fetched { old: 0 });
        assert_eq!(ops, 2);
    }

    #[test]
    #[should_panic(expected = "did not finish")]
    fn drive_sync_fuel_limit() {
        struct Forever;
        impl SubMachine for Forever {
            fn step(&mut self, _: Option<OpResult>, _: &mut SimRng) -> Step {
                Step::Compute(1)
            }
        }
        let mut rng = SimRng::new(1);
        drive_sync(&mut Forever, &mut rng, 10, |_| OpResult::Stored);
    }
}
