//! Test-and-test-and-set lock with bounded exponential backoff.
//!
//! The paper replaced the SPLASH library locks with "an assembly
//! language implementation of the test-and-test-and-set lock with
//! bounded exponential backoff implemented using the atomic primitives
//! and auxiliary instructions under study". This module reproduces that
//! lock for each primitive family:
//!
//! * **FAΦ** — the set attempt is a `test_and_set`;
//! * **CAS** — the attempt is `compare_and_swap(lock, 0, 1)`;
//! * **LL/SC** — the attempt is `load_linked`; if the value is 0,
//!   `store_conditional(1)`.

use crate::backoff::Backoff;
use crate::primitive::{PrimChoice, Primitive};
use crate::submachine::{Step, SubMachine};
use dsm_protocol::{MemOp, OpResult, PhiOp};
use dsm_sim::{Addr, SimRng};

/// Acquire side of the TTS lock.
///
/// # Example
///
/// ```
/// use dsm_sim::{Addr, SimRng};
/// use dsm_sync::{drive_sync, PrimChoice, Primitive, TtsAcquire};
/// use dsm_protocol::{MemOp, OpResult, PhiOp};
///
/// let mut rng = SimRng::new(3);
/// let mut acq = TtsAcquire::new(Addr::new(32), PrimChoice::plain(Primitive::FetchPhi));
/// let mut lock = 0u64;
/// drive_sync(&mut acq, &mut rng, 100, |op| match op {
///     MemOp::Load { .. } => OpResult::Loaded { value: lock, serial: None, reserved: false },
///     MemOp::FetchPhi { op: PhiOp::TestAndSet, .. } => {
///         let old = lock;
///         lock = 1;
///         OpResult::Fetched { old }
///     }
///     other => panic!("unexpected {other:?}"),
/// });
/// assert_eq!(lock, 1, "lock acquired");
/// ```
#[derive(Debug, Clone)]
pub struct TtsAcquire {
    lock: Addr,
    choice: PrimChoice,
    backoff: Backoff,
    state: State,
    /// Failed set attempts (for statistics).
    pub attempts_failed: u64,
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum State {
    Test,
    WaitTest,
    WaitSet,
    WaitLl,
    WaitSc,
}

impl TtsAcquire {
    /// Creates an acquire of `lock` with the default backoff.
    pub fn new(lock: Addr, choice: PrimChoice) -> Self {
        Self::with_backoff(lock, choice, Backoff::default())
    }

    /// Creates an acquire with a specific backoff configuration.
    pub fn with_backoff(lock: Addr, choice: PrimChoice, backoff: Backoff) -> Self {
        TtsAcquire {
            lock,
            choice,
            backoff,
            state: State::Test,
            attempts_failed: 0,
        }
    }

    /// Resets for a fresh acquisition.
    pub fn reset(&mut self) {
        self.state = State::Test;
        self.backoff.reset();
    }

    fn attempt(&mut self) -> Step {
        match self.choice.prim {
            Primitive::FetchPhi => {
                self.state = State::WaitSet;
                Step::Op(MemOp::FetchPhi {
                    addr: self.lock,
                    op: PhiOp::TestAndSet,
                })
            }
            Primitive::Cas => {
                self.state = State::WaitSet;
                Step::Op(MemOp::Cas {
                    addr: self.lock,
                    expected: 0,
                    new: 1,
                })
            }
            Primitive::Llsc => {
                self.state = State::WaitLl;
                Step::Op(MemOp::LoadLinked { addr: self.lock })
            }
        }
    }

    fn failed(&mut self, rng: &mut SimRng) -> Step {
        self.attempts_failed += 1;
        self.state = State::Test;
        Step::Compute(self.backoff.next(rng))
    }
}

impl SubMachine for TtsAcquire {
    fn step(&mut self, last: Option<OpResult>, rng: &mut SimRng) -> Step {
        match self.state {
            // The "test" read: spin until the lock looks free.
            State::Test => {
                self.state = State::WaitTest;
                Step::Op(MemOp::Load { addr: self.lock })
            }
            State::WaitTest => {
                let value = last
                    .expect("result of test read")
                    .value()
                    .expect("load value");
                if value == 0 {
                    self.attempt()
                } else {
                    self.state = State::Test;
                    Step::Compute(self.backoff.next(rng))
                }
            }
            State::WaitSet => match last.expect("result of set attempt") {
                OpResult::Fetched { old } => {
                    if old == 0 {
                        Step::Done
                    } else {
                        self.failed(rng)
                    }
                }
                OpResult::CasDone { success, .. } => {
                    if success {
                        Step::Done
                    } else {
                        self.failed(rng)
                    }
                }
                other => panic!("unexpected set-attempt result {other:?}"),
            },
            State::WaitLl => {
                let OpResult::Loaded { value, serial, .. } = last.expect("result of LL") else {
                    panic!("expected Loaded");
                };
                if value == 0 {
                    self.state = State::WaitSc;
                    Step::Op(MemOp::StoreConditional {
                        addr: self.lock,
                        value: 1,
                        serial,
                    })
                } else {
                    self.failed(rng)
                }
            }
            State::WaitSc => match last.expect("result of SC") {
                OpResult::ScDone { success: true } => Step::Done,
                OpResult::ScDone { success: false } => self.failed(rng),
                other => panic!("expected ScDone, got {other:?}"),
            },
        }
    }
}

/// Release side of the TTS lock: a single ordinary store of 0 (plus an
/// optional `drop_copy`).
#[derive(Debug, Clone)]
pub struct TtsRelease {
    lock: Addr,
    drop_copy: bool,
    state: u8,
}

impl TtsRelease {
    /// Creates a release of `lock`.
    pub fn new(lock: Addr, choice: PrimChoice) -> Self {
        TtsRelease {
            lock,
            drop_copy: choice.drop_copy,
            state: 0,
        }
    }

    /// Resets for another release.
    pub fn reset(&mut self) {
        self.state = 0;
    }
}

impl SubMachine for TtsRelease {
    fn step(&mut self, _last: Option<OpResult>, _rng: &mut SimRng) -> Step {
        match self.state {
            0 => {
                self.state = 1;
                Step::Op(MemOp::Store {
                    addr: self.lock,
                    value: 0,
                })
            }
            1 if self.drop_copy => {
                self.state = 2;
                Step::Op(MemOp::DropCopy { addr: self.lock })
            }
            _ => {
                self.state = 0;
                Step::Done
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::submachine::drive_sync;

    struct LockMem {
        lock: u64,
        reserved: bool,
        /// Pretend the lock is held for the first `busy_reads` reads.
        busy_reads: u64,
    }

    impl LockMem {
        fn eval(&mut self, op: MemOp) -> OpResult {
            match op {
                MemOp::Load { .. } => {
                    let v = if self.busy_reads > 0 {
                        self.busy_reads -= 1;
                        1
                    } else {
                        self.lock
                    };
                    OpResult::Loaded {
                        value: v,
                        serial: None,
                        reserved: false,
                    }
                }
                MemOp::LoadLinked { .. } => {
                    self.reserved = true;
                    OpResult::Loaded {
                        value: self.lock,
                        serial: None,
                        reserved: true,
                    }
                }
                MemOp::FetchPhi {
                    op: PhiOp::TestAndSet,
                    ..
                } => {
                    let old = self.lock;
                    self.lock = 1;
                    OpResult::Fetched { old }
                }
                MemOp::Cas { expected, new, .. } => {
                    let observed = self.lock;
                    if observed == expected {
                        self.lock = new;
                        OpResult::CasDone {
                            success: true,
                            observed,
                        }
                    } else {
                        OpResult::CasDone {
                            success: false,
                            observed,
                        }
                    }
                }
                MemOp::StoreConditional { value, .. } => {
                    if self.reserved {
                        self.lock = value;
                        self.reserved = false;
                        OpResult::ScDone { success: true }
                    } else {
                        OpResult::ScDone { success: false }
                    }
                }
                MemOp::Store { value, .. } => {
                    self.lock = value;
                    OpResult::Stored
                }
                MemOp::DropCopy { .. } => OpResult::Stored,
                other => panic!("unexpected {other:?}"),
            }
        }
    }

    fn acquire_with(prim: Primitive, busy_reads: u64) -> (LockMem, u64) {
        let mut mem = LockMem {
            lock: 0,
            reserved: false,
            busy_reads,
        };
        let mut rng = SimRng::new(5);
        let mut acq = TtsAcquire::new(Addr::new(32), PrimChoice::plain(prim));
        let ops = drive_sync(&mut acq, &mut rng, 1000, |op| mem.eval(op));
        (mem, ops as u64)
    }

    #[test]
    fn acquires_free_lock_with_each_primitive() {
        for prim in Primitive::ALL {
            let (mem, _) = acquire_with(prim, 0);
            assert_eq!(mem.lock, 1, "{prim} failed to acquire");
        }
    }

    #[test]
    fn spins_while_held_then_acquires() {
        let (mem, ops) = acquire_with(Primitive::Cas, 5);
        assert_eq!(mem.lock, 1);
        // 5 busy reads + 1 free read + 1 CAS.
        assert_eq!(ops, 7);
    }

    #[test]
    fn llsc_acquire_uses_ll_sc_pair() {
        let mut mem = LockMem {
            lock: 0,
            reserved: false,
            busy_reads: 0,
        };
        let mut rng = SimRng::new(5);
        let mut acq = TtsAcquire::new(Addr::new(32), PrimChoice::plain(Primitive::Llsc));
        let mut kinds = Vec::new();
        drive_sync(&mut acq, &mut rng, 100, |op| {
            kinds.push(format!("{op:?}").split(' ').next().unwrap().to_string());
            mem.eval(op)
        });
        assert!(kinds.iter().any(|k| k.contains("LoadLinked")));
        assert!(kinds.iter().any(|k| k.contains("StoreConditional")));
    }

    #[test]
    fn release_stores_zero() {
        let mut mem = LockMem {
            lock: 1,
            reserved: false,
            busy_reads: 0,
        };
        let mut rng = SimRng::new(5);
        let mut rel = TtsRelease::new(Addr::new(32), PrimChoice::plain(Primitive::Cas));
        let ops = drive_sync(&mut rel, &mut rng, 10, |op| mem.eval(op));
        assert_eq!(ops, 1);
        assert_eq!(mem.lock, 0);
    }

    #[test]
    fn release_with_drop_copy() {
        let mut mem = LockMem {
            lock: 1,
            reserved: false,
            busy_reads: 0,
        };
        let mut rng = SimRng::new(5);
        let mut rel = TtsRelease::new(
            Addr::new(32),
            PrimChoice::plain(Primitive::Cas).with_drop_copy(),
        );
        let ops = drive_sync(&mut rel, &mut rng, 10, |op| mem.eval(op));
        assert_eq!(ops, 2);
        assert_eq!(mem.lock, 0);
    }

    #[test]
    fn backoff_counts_failed_attempts() {
        // The CAS attempt fails once (lock grabbed between test and set).
        struct Race {
            inner: LockMem,
            raced: bool,
        }
        let mut mem = Race {
            inner: LockMem {
                lock: 0,
                reserved: false,
                busy_reads: 0,
            },
            raced: false,
        };
        let mut rng = SimRng::new(5);
        let mut acq = TtsAcquire::new(Addr::new(32), PrimChoice::plain(Primitive::Cas));
        drive_sync(&mut acq, &mut rng, 1000, |op| {
            if matches!(op, MemOp::Cas { .. }) && !mem.raced {
                mem.raced = true;
                return OpResult::CasDone {
                    success: false,
                    observed: 1,
                };
            }
            mem.inner.eval(op)
        });
        assert_eq!(acq.attempts_failed, 1);
        assert_eq!(mem.inner.lock, 1);
    }
}
