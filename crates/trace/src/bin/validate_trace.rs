//! Validates Chrome/Perfetto `trace_event` JSON files produced by the
//! simulator's `--trace` option (used by the CI smoke step).
//!
//! Usage: `validate_trace FILE.json [FILE.json ...]`
//!
//! Exits nonzero, naming the offending file, if any input fails to
//! parse or violates the trace_event schema.

use std::process::ExitCode;

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    if args.is_empty() {
        eprintln!("usage: validate_trace FILE.json [FILE.json ...]");
        return ExitCode::FAILURE;
    }
    let mut failed = false;
    for path in &args {
        let text = match std::fs::read_to_string(path) {
            Ok(t) => t,
            Err(e) => {
                eprintln!("{path}: cannot read: {e}");
                failed = true;
                continue;
            }
        };
        match dsm_trace::perfetto::validate(&text) {
            Ok(summary) => {
                println!(
                    "{path}: ok — {} events, {} nodes, {} slices, {} flows \
                     ({} starts / {} finishes)",
                    summary.events,
                    summary.pids,
                    summary.slices,
                    summary.flow_starts.min(summary.flow_finishes),
                    summary.flow_starts,
                    summary.flow_finishes,
                );
            }
            Err(e) => {
                eprintln!("{path}: INVALID: {e}");
                failed = true;
            }
        }
    }
    if failed {
        ExitCode::FAILURE
    } else {
        ExitCode::SUCCESS
    }
}
