//! The structured event vocabulary every sink consumes.
//!
//! A [`TraceEvent`] is a cycle-stamped fact about the simulated machine:
//! a message entering the network, a server busy interval, a completed
//! memory operation, a coherence-state transition, a reservation event,
//! or a queue-occupancy sample. Events carry only plain identifiers and
//! `&'static str` labels, so recording one never allocates.

use dsm_sim::{Cycle, LineAddr, NodeId, ProcId};

/// A coherence-state label: the state name plus its small integer
/// argument (sharer count for `Shared`, owner node for `Dirty`, way
/// count, ...). Kept label-shaped so `dsm-trace` does not depend on the
/// protocol crate's state enums.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct StateLabel {
    /// State name, e.g. `"Shared"`, `"Dirty"`, `"Uncached"`,
    /// `"Exclusive"`, `"Invalid"`.
    pub name: &'static str,
    /// The state's argument: sharer count, owner node number, or 0.
    pub n: u32,
}

impl StateLabel {
    /// A label with no argument.
    pub const fn plain(name: &'static str) -> Self {
        StateLabel { name, n: 0 }
    }
}

/// One structured, cycle-stamped observation of the machine.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TraceEvent {
    /// A message entered the network ([`Category::Msg`]).
    MsgSend {
        /// Send time.
        at: Cycle,
        /// Sending node.
        src: NodeId,
        /// Destination node.
        dst: NodeId,
        /// The cache line concerned.
        line: LineAddr,
        /// Message kind label (e.g. `"GetX"`, `"DataS"`).
        kind: &'static str,
        /// Message size in flits.
        flits: u64,
        /// Mesh hops from `src` to `dst`.
        hops: u32,
        /// When the network will deliver it.
        deliver_at: Cycle,
        /// Flow id linking this send to its delivery (and, through the
        /// per-transaction chain of messages, request to reply).
        flow: u64,
    },
    /// A server (home memory module or cache controller) serviced a
    /// delivered message ([`Category::Msg`]).
    MsgService {
        /// When service began (arrival, or later if the server was
        /// busy).
        start: Cycle,
        /// When service finished.
        finish: Cycle,
        /// The serving node.
        dst: NodeId,
        /// Message kind label.
        kind: &'static str,
        /// `true` if served by the home memory module/directory,
        /// `false` if by the cache controller.
        home: bool,
        /// Flow id matching the [`TraceEvent::MsgSend`].
        flow: u64,
    },
    /// A processor's memory operation retired ([`Category::Op`]).
    Op {
        /// The issuing processor.
        proc: ProcId,
        /// Issue time.
        issued: Cycle,
        /// Retire time.
        retired: Cycle,
        /// Operation label (e.g. `"Cas"`, `"LoadLinked"`).
        label: &'static str,
        /// Completed without any network traffic.
        local: bool,
        /// Serialized network messages on the critical path.
        chain: u32,
    },
    /// A failed atomic attempt the processor will have to retry
    /// ([`Category::Retry`]): failed CAS, failed SC, unreserved LL.
    Retry {
        /// When the failure retired.
        at: Cycle,
        /// The retrying processor.
        proc: ProcId,
        /// What failed: `"cas-fail"`, `"sc-fail"`, `"ll-unreserved"`.
        label: &'static str,
    },
    /// An LL/SC reservation event ([`Category::Resv`]).
    Reservation {
        /// Event time.
        at: Cycle,
        /// The node concerned.
        node: NodeId,
        /// What happened: `"ll-reserved"`, `"wipe"`, ...
        label: &'static str,
    },
    /// A home-directory state transition ([`Category::State`]).
    DirTransition {
        /// Transition time.
        at: Cycle,
        /// The home node.
        node: NodeId,
        /// The line whose directory entry changed.
        line: LineAddr,
        /// State before the transition.
        from: StateLabel,
        /// State after the transition.
        to: StateLabel,
    },
    /// A cache-line state transition at a cache controller
    /// ([`Category::State`]).
    CacheTransition {
        /// Transition time.
        at: Cycle,
        /// The caching node.
        node: NodeId,
        /// The line whose state changed.
        line: LineAddr,
        /// State before (`"Invalid"` if not resident).
        from: StateLabel,
        /// State after (`"Invalid"` if evicted/invalidated).
        to: StateLabel,
    },
    /// A home-node occupancy sample ([`Category::Queue`]): requests
    /// parked behind busy lines plus lines mid-transaction.
    QueueDepth {
        /// Sample time.
        at: Cycle,
        /// The home node.
        node: NodeId,
        /// Parked requests + busy lines at that home.
        depth: u64,
    },
    /// An injected memory operation began: the opening of an operation
    /// span ([`Category::Span`]). Every message and server interval the
    /// operation causes — including invalidation fan-out triggered at
    /// the home — is attributed to the span via flow correlation, so a
    /// span's child [`TraceEvent::SpanPhase`] events decompose its
    /// latency.
    SpanBegin {
        /// Issue time (span open).
        at: Cycle,
        /// The span id (unique per tracer, never 0).
        span: u64,
        /// The issuing processor.
        proc: ProcId,
        /// Operation label (e.g. `"Cas"`, `"LoadLinked"`).
        op: &'static str,
        /// The cache line the operation targets.
        line: LineAddr,
    },
    /// A child phase of an operation span ([`Category::Span`]): one
    /// network hop (`"net"`), a wait behind a busy server (`"queue"`),
    /// a directory service (`"dir"`), an invalidation delivery
    /// (`"inval"`), a reply/forward delivery, or a cache-controller
    /// service. Phases may overlap in time (invalidation fan-out is
    /// parallel); the analyzer's critical-path decomposition clamps
    /// them into additive components.
    SpanPhase {
        /// Phase start.
        start: Cycle,
        /// Phase end.
        end: Cycle,
        /// The owning span.
        span: u64,
        /// The node where the phase happened (server or receiver).
        node: NodeId,
        /// Phase label: `"net"`, `"queue"`, `"dir"`, `"inval"`,
        /// `"reply"`, `"fwd"`, `"cachesvc"`.
        phase: &'static str,
    },
    /// An operation span closed ([`Category::Span`]): the operation
    /// retired, successfully or as a failed attempt the processor will
    /// retry.
    SpanEnd {
        /// Retire time (span close).
        at: Cycle,
        /// The span id from the matching [`TraceEvent::SpanBegin`].
        span: u64,
        /// The issuing processor.
        proc: ProcId,
        /// `"ok"`, or the failure kind: `"cas-fail"`, `"sc-fail"`,
        /// `"ll-unreserved"`.
        outcome: &'static str,
    },
}

impl TraceEvent {
    /// The category this event belongs to.
    pub fn category(&self) -> Category {
        match self {
            TraceEvent::MsgSend { .. } | TraceEvent::MsgService { .. } => Category::Msg,
            TraceEvent::Op { .. } => Category::Op,
            TraceEvent::Retry { .. } => Category::Retry,
            TraceEvent::Reservation { .. } => Category::Resv,
            TraceEvent::DirTransition { .. } | TraceEvent::CacheTransition { .. } => {
                Category::State
            }
            TraceEvent::QueueDepth { .. } => Category::Queue,
            TraceEvent::SpanBegin { .. }
            | TraceEvent::SpanPhase { .. }
            | TraceEvent::SpanEnd { .. } => Category::Span,
        }
    }

    /// The event's timestamp (start time for interval events).
    pub fn at(&self) -> Cycle {
        match *self {
            TraceEvent::MsgSend { at, .. }
            | TraceEvent::Retry { at, .. }
            | TraceEvent::Reservation { at, .. }
            | TraceEvent::DirTransition { at, .. }
            | TraceEvent::CacheTransition { at, .. }
            | TraceEvent::QueueDepth { at, .. }
            | TraceEvent::SpanBegin { at, .. }
            | TraceEvent::SpanEnd { at, .. } => at,
            TraceEvent::MsgService { start, .. } | TraceEvent::SpanPhase { start, .. } => start,
            TraceEvent::Op { issued, .. } => issued,
        }
    }
}

/// An event category, for filtering (`cat:msg+op` in a trace spec).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Category {
    /// Message sends and server busy intervals.
    Msg,
    /// Completed memory operations.
    Op,
    /// Coherence-state transitions (directory and cache).
    State,
    /// LL/SC reservation events.
    Resv,
    /// Home-node queue-occupancy samples.
    Queue,
    /// Failed-attempt (retry) instants.
    Retry,
    /// Operation spans: begin/end plus child phases.
    Span,
}

impl Category {
    /// All categories, in spec order.
    pub const ALL: [Category; 7] = [
        Category::Msg,
        Category::Op,
        Category::State,
        Category::Resv,
        Category::Queue,
        Category::Retry,
        Category::Span,
    ];

    /// The spec keyword for this category.
    pub fn keyword(self) -> &'static str {
        match self {
            Category::Msg => "msg",
            Category::Op => "op",
            Category::State => "state",
            Category::Resv => "resv",
            Category::Queue => "queue",
            Category::Retry => "retry",
            Category::Span => "span",
        }
    }

    fn bit(self) -> u8 {
        match self {
            Category::Msg => 1,
            Category::Op => 2,
            Category::State => 4,
            Category::Resv => 8,
            Category::Queue => 16,
            Category::Retry => 32,
            Category::Span => 64,
        }
    }
}

/// A set of enabled [`Category`]s.
///
/// # Example
///
/// ```
/// use dsm_trace::{Categories, Category};
///
/// let all = Categories::all();
/// assert!(all.contains(Category::Msg));
///
/// let some: Categories = "msg+op".parse().unwrap();
/// assert!(some.contains(Category::Op));
/// assert!(!some.contains(Category::State));
///
/// assert!("msg+bogus".parse::<Categories>().is_err());
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Categories {
    bits: u8,
}

impl Categories {
    /// Every category enabled.
    pub fn all() -> Self {
        Categories { bits: 0x7f }
    }

    /// No category enabled.
    pub fn none() -> Self {
        Categories { bits: 0 }
    }

    /// Enables `cat`, returning the updated set.
    #[must_use]
    pub fn with(mut self, cat: Category) -> Self {
        self.bits |= cat.bit();
        self
    }

    /// Whether `cat` is enabled.
    pub fn contains(self, cat: Category) -> bool {
        self.bits & cat.bit() != 0
    }
}

impl Default for Categories {
    fn default() -> Self {
        Categories::all()
    }
}

/// The typed error of parsing a [`Categories`] list: the offending word
/// is preserved so callers (and tests) can match on it instead of
/// scraping a message string.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct UnknownCategory {
    /// The word that is not a category keyword.
    pub word: String,
}

impl std::fmt::Display for UnknownCategory {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "unknown trace category `{}` (expected one of \
             msg, op, state, resv, queue, retry, span)",
            self.word
        )
    }
}

impl std::error::Error for UnknownCategory {}

impl std::str::FromStr for Categories {
    type Err = UnknownCategory;

    /// Parses a `+`-separated category list, e.g. `"msg+state+queue"`.
    /// Unknown names are rejected with a typed [`UnknownCategory`]
    /// error, never silently ignored.
    fn from_str(s: &str) -> Result<Self, UnknownCategory> {
        let mut cats = Categories::none();
        for word in s.split('+') {
            let word = word.trim();
            let cat = Category::ALL
                .into_iter()
                .find(|c| c.keyword() == word)
                .ok_or_else(|| UnknownCategory { word: word.into() })?;
            cats = cats.with(cat);
        }
        Ok(cats)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn categories_round_trip() {
        for cat in Category::ALL {
            let parsed: Categories = cat.keyword().parse().unwrap();
            assert!(parsed.contains(cat));
            for other in Category::ALL {
                if other != cat {
                    assert!(!parsed.contains(other));
                }
            }
        }
    }

    #[test]
    fn event_category_and_time() {
        let ev = TraceEvent::QueueDepth {
            at: Cycle::new(7),
            node: NodeId::new(3),
            depth: 2,
        };
        assert_eq!(ev.category(), Category::Queue);
        assert_eq!(ev.at(), Cycle::new(7));
        let op = TraceEvent::Op {
            proc: ProcId::new(0),
            issued: Cycle::new(10),
            retired: Cycle::new(40),
            label: "Cas",
            local: false,
            chain: 4,
        };
        assert_eq!(op.category(), Category::Op);
        assert_eq!(op.at(), Cycle::new(10));
    }
}
