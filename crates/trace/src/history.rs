//! Concurrent-operation histories for linearizability checking.
//!
//! A [`History`] is the record a workload harness produces while a
//! machine runs: one [`HistEvent`] per completed data-structure
//! operation, stamped with the simulated cycles at which the operation
//! was invoked (its first memory access was about to issue) and at
//! which it responded (its sub-machine reported done). The intervals
//! are what the checker in [`crate::linearize`] consumes: an operation
//! may take effect at any single instant inside its `[invoked,
//! responded]` window.
//!
//! The recorded interval is a superset of the true critical window, so
//! checking is *permissive-safe*: a genuinely linearizable execution is
//! never rejected, while any execution the checker rejects is
//! non-linearizable under every narrowing of the windows too.

/// An abstract data-structure operation, as invoked.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum HistOp {
    /// Queue: append a value.
    Enqueue(u64),
    /// Queue: take the oldest value.
    Dequeue,
    /// Stack: push a value.
    Push(u64),
    /// Stack: pop the newest value.
    Pop,
    /// Set/map: add a key.
    Insert(u64),
    /// Set/map: delete a key.
    Remove(u64),
    /// Set/map: membership query.
    Contains(u64),
}

/// What an operation returned.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum HistRet {
    /// Completed with nothing to report (enqueue, push).
    Ok,
    /// Yielded a value (dequeue, pop).
    Value(u64),
    /// Found the container empty (dequeue, pop).
    Empty,
    /// Reported success or failure (insert, remove, contains).
    Bool(bool),
}

/// One completed operation: who ran it, when, what, and the answer.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct HistEvent {
    /// The invoking processor.
    pub proc: u32,
    /// Cycle at which the operation was invoked.
    pub invoked: u64,
    /// Cycle at which the operation responded (`>= invoked`).
    pub responded: u64,
    /// The operation.
    pub op: HistOp,
    /// Its return value.
    pub ret: HistRet,
}

/// A complete history: every recorded operation has responded.
///
/// Events are kept in recording order; the checker orders them by
/// cycle stamps, so recording order (which follows each processor's
/// completion order) carries no hidden information.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct History {
    events: Vec<HistEvent>,
}

impl History {
    /// Creates an empty history.
    pub fn new() -> Self {
        History::default()
    }

    /// Appends a completed operation.
    ///
    /// # Panics
    ///
    /// Panics if the event responds before it was invoked.
    pub fn push(&mut self, event: HistEvent) {
        assert!(
            event.responded >= event.invoked,
            "event responds before invocation: {event:?}"
        );
        self.events.push(event);
    }

    /// The recorded events, in recording order.
    pub fn events(&self) -> &[HistEvent] {
        &self.events
    }

    /// Number of recorded operations.
    pub fn len(&self) -> usize {
        self.events.len()
    }

    /// `true` if nothing was recorded.
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }

    /// Renders the history as stable, diffable text: one line per
    /// event, sorted by (invoked, responded, proc) so the rendering is
    /// independent of recording order.
    pub fn render(&self) -> String {
        let mut sorted = self.events.clone();
        sorted.sort_by_key(|e| (e.invoked, e.responded, e.proc));
        let mut out = String::new();
        for e in &sorted {
            out.push_str(&format!(
                "p{:02} [{:>12}, {:>12}] {:?} -> {:?}\n",
                e.proc, e.invoked, e.responded, e.op, e.ret
            ));
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ev(proc: u32, invoked: u64, responded: u64) -> HistEvent {
        HistEvent {
            proc,
            invoked,
            responded,
            op: HistOp::Enqueue(proc as u64),
            ret: HistRet::Ok,
        }
    }

    #[test]
    fn records_in_order() {
        let mut h = History::new();
        assert!(h.is_empty());
        h.push(ev(0, 5, 10));
        h.push(ev(1, 0, 3));
        assert_eq!(h.len(), 2);
        assert_eq!(h.events()[0].proc, 0);
    }

    #[test]
    #[should_panic(expected = "responds before invocation")]
    fn rejects_inverted_interval() {
        History::new().push(ev(0, 10, 5));
    }

    #[test]
    fn render_is_recording_order_independent() {
        let mut a = History::new();
        a.push(ev(0, 5, 10));
        a.push(ev(1, 0, 3));
        let mut b = History::new();
        b.push(ev(1, 0, 3));
        b.push(ev(0, 5, 10));
        assert_eq!(a.render(), b.render());
        assert!(a.render().starts_with("p01 ["));
    }
}
