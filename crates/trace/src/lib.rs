//! Structured event tracing for the DSM simulator.
//!
//! The paper's argument is about *where cycles go* — which atomic
//! primitive loses time to network hops, directory occupancy, or retry
//! storms. End-of-run aggregates (`dsm-stats`) answer "how much"; this
//! crate answers "when and where": every message, coherence-state
//! transition, reservation event, queue-occupancy sample and retired
//! operation becomes a cycle-stamped [`TraceEvent`] that can be replayed
//! into any [`TraceSink`].
//!
//! Two sinks are built in:
//!
//! * [`PerfettoSink`] — Chrome/Perfetto `trace_event` JSON. Open the
//!   file at <https://ui.perfetto.dev> (or `chrome://tracing`) and every
//!   node appears as a process with `cpu`, `cache-ctrl`, `home` and
//!   `net-out` tracks; flow arrows link each request to its reply
//!   across the mesh.
//! * [`RingSink`] — a compact fixed-width binary ring buffer that
//!   retains the most recent N events, cheap enough to leave on for
//!   long runs and dump post-mortem.
//!
//! The [`Tracer`] front end owns the sinks, per-node
//! [`NodeMetrics`](dsm_stats::NodeMetrics), and the flow-id
//! bookkeeping. It is configured by
//! a [`TraceSpec`] parsed from `--trace[=SPEC]` or the `DSM_TRACE`
//! environment variable — see [`TraceSpec::from_spec`] for the grammar.
//!
//! # Determinism
//!
//! Trace output is part of the simulator's reproducibility contract:
//! the same job produces byte-identical trace files regardless of
//! `--jobs`, host, or scheduling, because nothing in this crate reads a
//! clock, a random source, or unordered-container iteration order.
//!
//! # Example
//!
//! ```
//! use dsm_trace::{Tracer, TraceSpec};
//! use dsm_sim::{Cycle, LineAddr, NodeId, ProcId};
//!
//! let spec = TraceSpec::from_spec("perfetto,cat:msg+op").unwrap();
//! let mut tracer = Tracer::new(&spec, 4);
//!
//! // The machine drives the tracer as it simulates...
//! let flow = tracer.msg_send(
//!     Cycle::new(100),            // send time
//!     NodeId::new(0),             // src
//!     NodeId::new(3),             // dst
//!     LineAddr::new(42),          // line
//!     "GetX",                     // message kind
//!     2,                          // flits
//!     3,                          // hops
//!     Cycle::new(118),            // delivery time
//! );
//! tracer.msg_service(
//!     Cycle::new(118), Cycle::new(138),
//!     NodeId::new(0), NodeId::new(3),
//!     "GetX", true,
//!     "dir",                      // span phase label for the service
//! );
//! tracer.op(ProcId::new(0), Cycle::new(100), Cycle::new(160), "Store", false, 2);
//!
//! // ...and the JSON validates against the trace_event schema.
//! let json = tracer.perfetto_json().unwrap();
//! let summary = dsm_trace::perfetto::validate(&json).unwrap();
//! assert_eq!(summary.flow_starts, summary.flow_finishes);
//! assert_eq!(flow, 0);
//! ```

#![deny(missing_docs)]

pub mod event;
pub mod history;
pub mod linearize;
pub mod perfetto;
pub mod ring;
pub mod sink;
pub mod spec;
pub mod tracer;

pub use event::{Categories, Category, StateLabel, TraceEvent, UnknownCategory};
pub use history::{HistEvent, HistOp, HistRet, History};
pub use linearize::{
    assert_linearizable, check, FifoQueueSpec, LifoStackSpec, Rejection, SeqSpec, SetSpec,
};
pub use perfetto::PerfettoSink;
pub use ring::{RecordKind, RingFile, RingRecord, RingSink};
pub use sink::TraceSink;
pub use spec::{SpecError, TraceSpec};
pub use tracer::Tracer;
