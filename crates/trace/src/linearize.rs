//! A Wing–Gong-style linearizability checker for complete histories.
//!
//! Given a [`History`] and a sequential specification ([`SeqSpec`]),
//! [`check`] searches for a *linearization*: a total order of the
//! operations that (a) respects real time — if operation `a` responded
//! before operation `b` was invoked, `a` comes first — and (b) is a
//! legal sequential execution of the specification. The search is the
//! classic Wing & Gong recursion: repeatedly pick a *minimal* pending
//! operation (one invoked no later than every pending operation's
//! response) whose effect is legal in the current abstract state,
//! apply it, and recurse; memoizing on (set of linearized operations,
//! abstract state) keeps the search from re-exploring equivalent
//! frontiers.
//!
//! The checker is exact, not a heuristic: `Ok` means a linearization
//! exists, [`Rejection::NotLinearizable`] means none exists. Histories
//! are capped at [`MAX_OPS`] operations so test inputs stay bounded —
//! the cap is a deliberate test-suite budget, reported loudly rather
//! than silently truncated.

use crate::history::{HistEvent, HistOp, HistRet, History};
use std::collections::HashSet;
use std::hash::Hash;

/// Hard cap on checkable history size (operations).
pub const MAX_OPS: usize = 256;

/// A sequential specification: an abstract state plus a transition
/// relation saying which (operation, return) pairs are legal.
pub trait SeqSpec {
    /// The abstract state (e.g. the queue's contents).
    type State: Clone + Eq + Hash;

    /// The state of a freshly created object.
    fn init(&self) -> Self::State;

    /// If `op` returning `ret` is legal in `state`, the successor
    /// state; `None` if illegal at this point.
    ///
    /// # Panics
    ///
    /// Implementations panic when `op` does not belong to the
    /// specification at all (e.g. a stack op in a queue history) —
    /// that is a harness bug, not a linearizability violation.
    fn apply(&self, state: &Self::State, op: &HistOp, ret: &HistRet) -> Option<Self::State>;
}

/// Sequential FIFO queue: [`HistOp::Enqueue`] / [`HistOp::Dequeue`].
#[derive(Debug, Clone, Copy, Default)]
pub struct FifoQueueSpec;

impl SeqSpec for FifoQueueSpec {
    type State = std::collections::VecDeque<u64>;

    fn init(&self) -> Self::State {
        Self::State::new()
    }

    fn apply(&self, state: &Self::State, op: &HistOp, ret: &HistRet) -> Option<Self::State> {
        match (op, ret) {
            (HistOp::Enqueue(v), HistRet::Ok) => {
                let mut s = state.clone();
                s.push_back(*v);
                Some(s)
            }
            (HistOp::Dequeue, HistRet::Value(v)) => {
                if state.front() == Some(v) {
                    let mut s = state.clone();
                    s.pop_front();
                    Some(s)
                } else {
                    None
                }
            }
            (HistOp::Dequeue, HistRet::Empty) => state.is_empty().then(|| state.clone()),
            other => panic!("not a queue event: {other:?}"),
        }
    }
}

/// Sequential LIFO stack: [`HistOp::Push`] / [`HistOp::Pop`].
#[derive(Debug, Clone, Copy, Default)]
pub struct LifoStackSpec;

impl SeqSpec for LifoStackSpec {
    type State = Vec<u64>;

    fn init(&self) -> Self::State {
        Vec::new()
    }

    fn apply(&self, state: &Self::State, op: &HistOp, ret: &HistRet) -> Option<Self::State> {
        match (op, ret) {
            (HistOp::Push(v), HistRet::Ok) => {
                let mut s = state.clone();
                s.push(*v);
                Some(s)
            }
            (HistOp::Pop, HistRet::Value(v)) => {
                if state.last() == Some(v) {
                    let mut s = state.clone();
                    s.pop();
                    Some(s)
                } else {
                    None
                }
            }
            (HistOp::Pop, HistRet::Empty) => state.is_empty().then(|| state.clone()),
            other => panic!("not a stack event: {other:?}"),
        }
    }
}

/// Sequential set (also the hash map's key-set view):
/// [`HistOp::Insert`] / [`HistOp::Remove`] / [`HistOp::Contains`].
#[derive(Debug, Clone, Copy, Default)]
pub struct SetSpec;

impl SeqSpec for SetSpec {
    type State = std::collections::BTreeSet<u64>;

    fn init(&self) -> Self::State {
        Self::State::new()
    }

    fn apply(&self, state: &Self::State, op: &HistOp, ret: &HistRet) -> Option<Self::State> {
        match (op, ret) {
            (HistOp::Insert(k), HistRet::Bool(added)) => {
                if *added != state.contains(k) {
                    let mut s = state.clone();
                    s.insert(*k);
                    Some(s)
                } else {
                    None
                }
            }
            (HistOp::Remove(k), HistRet::Bool(deleted)) => {
                if *deleted == state.contains(k) {
                    let mut s = state.clone();
                    s.remove(k);
                    Some(s)
                } else {
                    None
                }
            }
            (HistOp::Contains(k), HistRet::Bool(found)) => {
                (*found == state.contains(k)).then(|| state.clone())
            }
            other => panic!("not a set event: {other:?}"),
        }
    }
}

/// Why a history failed the check.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Rejection {
    /// The history exceeds [`MAX_OPS`]; shrink the workload.
    TooLarge {
        /// Operations recorded.
        ops: usize,
        /// The cap.
        max: usize,
    },
    /// No linearization exists.
    NotLinearizable {
        /// Most operations any explored prefix linearized.
        linearized_best: usize,
        /// Total operations in the history.
        total: usize,
    },
}

impl std::fmt::Display for Rejection {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Rejection::TooLarge { ops, max } => write!(
                f,
                "history has {ops} operations, over the checker cap of {max}"
            ),
            Rejection::NotLinearizable {
                linearized_best,
                total,
            } => write!(
                f,
                "no linearization exists (best prefix linearized \
                 {linearized_best} of {total} operations)"
            ),
        }
    }
}

/// A bitset over up to [`MAX_OPS`] operations.
type Mask = [u64; 4];

fn bit_set(mask: &Mask, i: usize) -> bool {
    mask[i / 64] & (1 << (i % 64)) != 0
}

fn with_bit(mask: &Mask, i: usize) -> Mask {
    let mut m = *mask;
    m[i / 64] |= 1 << (i % 64);
    m
}

struct Dfs<'a, S: SeqSpec> {
    spec: &'a S,
    evs: &'a [HistEvent],
    memo: HashSet<(Mask, S::State)>,
    best: usize,
}

impl<S: SeqSpec> Dfs<'_, S> {
    fn search(&mut self, mask: &Mask, state: &S::State, done: usize) -> bool {
        if done == self.evs.len() {
            return true;
        }
        self.best = self.best.max(done);
        if !self.memo.insert((*mask, state.clone())) {
            return false;
        }
        // An operation may linearize next only if no pending operation
        // responded strictly before it was invoked.
        let min_resp = self
            .evs
            .iter()
            .enumerate()
            .filter(|&(i, _)| !bit_set(mask, i))
            .map(|(_, e)| e.responded)
            .min()
            .expect("pending events exist");
        for (i, e) in self.evs.iter().enumerate() {
            if bit_set(mask, i) || e.invoked > min_resp {
                continue;
            }
            if let Some(next) = self.spec.apply(state, &e.op, &e.ret) {
                if self.search(&with_bit(mask, i), &next, done + 1) {
                    return true;
                }
            }
        }
        false
    }
}

/// Checks `history` against `spec`. `Ok(())` iff a linearization
/// exists (the empty history trivially passes).
pub fn check<S: SeqSpec>(spec: &S, history: &History) -> Result<(), Rejection> {
    let evs = history.events();
    if evs.len() > MAX_OPS {
        return Err(Rejection::TooLarge {
            ops: evs.len(),
            max: MAX_OPS,
        });
    }
    if evs.is_empty() {
        return Ok(());
    }
    let mut dfs = Dfs {
        spec,
        evs,
        memo: HashSet::new(),
        best: 0,
    };
    if dfs.search(&[0; 4], &spec.init(), 0) {
        Ok(())
    } else {
        Err(Rejection::NotLinearizable {
            linearized_best: dfs.best,
            total: evs.len(),
        })
    }
}

/// Like [`check`], but on rejection writes the rendered history and
/// the rejection reason to an artifact file (for CI upload) and then
/// panics.
///
/// The artifact lands in the directory named by the `DSM_LIN_REJECTS`
/// environment variable, default `target/lin-rejected`, as
/// `<name>.txt`.
///
/// # Panics
///
/// Panics when the history is rejected.
pub fn assert_linearizable<S: SeqSpec>(name: &str, spec: &S, history: &History) {
    let Err(rejection) = check(spec, history) else {
        return;
    };
    let dir =
        std::env::var("DSM_LIN_REJECTS").unwrap_or_else(|_| "target/lin-rejected".to_string());
    let path = std::path::Path::new(&dir).join(format!("{name}.txt"));
    let body = format!(
        "history `{name}` rejected: {rejection}\n\n{}",
        history.render()
    );
    let saved = std::fs::create_dir_all(&dir)
        .and_then(|()| std::fs::write(&path, &body))
        .map(|()| path.display().to_string());
    match saved {
        Ok(p) => panic!("history `{name}` is not linearizable: {rejection} (written to {p})"),
        Err(e) => panic!(
            "history `{name}` is not linearizable: {rejection} \
             (artifact write failed: {e})\n{}",
            history.render()
        ),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ev(proc: u32, invoked: u64, responded: u64, op: HistOp, ret: HistRet) -> HistEvent {
        HistEvent {
            proc,
            invoked,
            responded,
            op,
            ret,
        }
    }

    fn hist(events: &[HistEvent]) -> History {
        let mut h = History::new();
        for &e in events {
            h.push(e);
        }
        h
    }

    #[test]
    fn empty_history_passes() {
        assert_eq!(check(&FifoQueueSpec, &History::new()), Ok(()));
    }

    #[test]
    fn sequential_queue_passes() {
        let h = hist(&[
            ev(0, 0, 1, HistOp::Enqueue(1), HistRet::Ok),
            ev(0, 2, 3, HistOp::Enqueue(2), HistRet::Ok),
            ev(1, 4, 5, HistOp::Dequeue, HistRet::Value(1)),
            ev(1, 6, 7, HistOp::Dequeue, HistRet::Value(2)),
            ev(1, 8, 9, HistOp::Dequeue, HistRet::Empty),
        ]);
        assert_eq!(check(&FifoQueueSpec, &h), Ok(()));
    }

    #[test]
    fn overlapping_enqueues_allow_either_order() {
        // Two concurrent enqueues; the dequeues observe 2 before 1,
        // which is legal exactly because the enqueues overlapped.
        let h = hist(&[
            ev(0, 0, 10, HistOp::Enqueue(1), HistRet::Ok),
            ev(1, 0, 10, HistOp::Enqueue(2), HistRet::Ok),
            ev(2, 11, 12, HistOp::Dequeue, HistRet::Value(2)),
            ev(2, 13, 14, HistOp::Dequeue, HistRet::Value(1)),
        ]);
        assert_eq!(check(&FifoQueueSpec, &h), Ok(()));
    }

    #[test]
    fn real_time_order_is_enforced() {
        // Enqueue(1) responded before Enqueue(2) was invoked, so
        // dequeuing 2 first is NOT linearizable.
        let h = hist(&[
            ev(0, 0, 1, HistOp::Enqueue(1), HistRet::Ok),
            ev(1, 2, 3, HistOp::Enqueue(2), HistRet::Ok),
            ev(2, 4, 5, HistOp::Dequeue, HistRet::Value(2)),
            ev(2, 6, 7, HistOp::Dequeue, HistRet::Value(1)),
        ]);
        assert!(matches!(
            check(&FifoQueueSpec, &h),
            Err(Rejection::NotLinearizable { .. })
        ));
    }

    #[test]
    fn lost_value_is_rejected() {
        // A value dequeued twice (the classic lost-update symptom).
        let h = hist(&[
            ev(0, 0, 1, HistOp::Enqueue(1), HistRet::Ok),
            ev(1, 2, 3, HistOp::Dequeue, HistRet::Value(1)),
            ev(2, 2, 3, HistOp::Dequeue, HistRet::Value(1)),
        ]);
        assert!(check(&FifoQueueSpec, &h).is_err());
    }

    #[test]
    fn empty_inside_nonempty_window_is_rejected() {
        // The queue was continuously non-empty across the dequeue's
        // whole window, so Empty is impossible.
        let h = hist(&[
            ev(0, 0, 1, HistOp::Enqueue(1), HistRet::Ok),
            ev(1, 2, 3, HistOp::Dequeue, HistRet::Empty),
        ]);
        assert!(check(&FifoQueueSpec, &h).is_err());
    }

    #[test]
    fn stack_spec_is_lifo() {
        let ok = hist(&[
            ev(0, 0, 1, HistOp::Push(1), HistRet::Ok),
            ev(0, 2, 3, HistOp::Push(2), HistRet::Ok),
            ev(1, 4, 5, HistOp::Pop, HistRet::Value(2)),
            ev(1, 6, 7, HistOp::Pop, HistRet::Value(1)),
            ev(1, 8, 9, HistOp::Pop, HistRet::Empty),
        ]);
        assert_eq!(check(&LifoStackSpec, &ok), Ok(()));
        let fifo = hist(&[
            ev(0, 0, 1, HistOp::Push(1), HistRet::Ok),
            ev(0, 2, 3, HistOp::Push(2), HistRet::Ok),
            ev(1, 4, 5, HistOp::Pop, HistRet::Value(1)),
        ]);
        assert!(check(&LifoStackSpec, &fifo).is_err());
    }

    #[test]
    fn set_spec_checks_membership_answers() {
        let ok = hist(&[
            ev(0, 0, 1, HistOp::Insert(7), HistRet::Bool(true)),
            ev(1, 2, 3, HistOp::Insert(7), HistRet::Bool(false)),
            ev(1, 4, 5, HistOp::Contains(7), HistRet::Bool(true)),
            ev(0, 6, 7, HistOp::Remove(7), HistRet::Bool(true)),
            ev(1, 8, 9, HistOp::Remove(7), HistRet::Bool(false)),
            ev(1, 10, 11, HistOp::Contains(7), HistRet::Bool(false)),
        ]);
        assert_eq!(check(&SetSpec, &ok), Ok(()));
        // Contains(true) while the key was never present in its
        // window.
        let bad = hist(&[
            ev(0, 0, 1, HistOp::Contains(7), HistRet::Bool(true)),
            ev(1, 2, 3, HistOp::Insert(7), HistRet::Bool(true)),
        ]);
        assert!(check(&SetSpec, &bad).is_err());
    }

    #[test]
    fn oversized_history_is_reported_not_truncated() {
        let mut h = History::new();
        for i in 0..(MAX_OPS as u64 + 1) {
            h.push(ev(0, 2 * i, 2 * i + 1, HistOp::Enqueue(i), HistRet::Ok));
        }
        assert_eq!(
            check(&FifoQueueSpec, &h),
            Err(Rejection::TooLarge {
                ops: MAX_OPS + 1,
                max: MAX_OPS
            })
        );
    }

    #[test]
    fn max_sized_concurrent_history_checks_quickly() {
        // 256 ops in concurrent pairs; exercises the memoization.
        let mut h = History::new();
        for i in 0..128u64 {
            h.push(ev(0, 4 * i, 4 * i + 3, HistOp::Enqueue(i), HistRet::Ok));
            h.push(ev(1, 4 * i, 4 * i + 3, HistOp::Dequeue, HistRet::Value(i)));
        }
        assert_eq!(check(&FifoQueueSpec, &h), Ok(()));
    }

    #[test]
    fn rejection_displays_human_readably() {
        let r = Rejection::NotLinearizable {
            linearized_best: 3,
            total: 5,
        };
        assert!(r.to_string().contains("3 of 5"));
        let t = Rejection::TooLarge { ops: 300, max: 256 };
        assert!(t.to_string().contains("300"));
    }
}
