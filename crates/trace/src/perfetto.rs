//! Chrome/Perfetto `trace_event` JSON export.
//!
//! [`PerfettoSink`] renders the event stream in the [Trace Event
//! Format] consumed by `chrome://tracing` and [ui.perfetto.dev]: one
//! *process* per simulated node, with four threads (tracks) per node —
//! `cpu` (operation slices and retry instants), `cache-ctrl` and
//! `home` (server busy intervals and state-transition instants), and
//! `net-out` (message transit slices). Every message carries a flow
//! (`ph:"s"` at the send, `ph:"f"` at the service interval), so a
//! request can be followed hop by hop to its reply across the mesh.
//!
//! Timestamps are simulated **cycles**, written into the format's `ts`
//! microsecond field verbatim (1 cycle renders as 1 µs); there is no
//! wall-clock anywhere in the output, which is what makes traces
//! byte-identical across hosts and worker counts.
//!
//! [Trace Event Format]: https://docs.google.com/document/d/1CvAClvFfyA5R-PhYUmn5OOQtYMH4h6I0nSsKchNAySU
//! [ui.perfetto.dev]: https://ui.perfetto.dev

use crate::event::TraceEvent;
use crate::sink::TraceSink;
use std::fmt::Write as _;
use std::io;

/// Thread (track) ids within a node's process.
const TID_CPU: u32 = 0;
const TID_CACHE: u32 = 1;
const TID_HOME: u32 = 2;
const TID_NET: u32 = 3;

/// A [`TraceSink`] producing Chrome/Perfetto `trace_event` JSON.
///
/// # Example
///
/// ```
/// use dsm_trace::{PerfettoSink, TraceEvent, TraceSink};
/// use dsm_sim::{Cycle, NodeId, ProcId};
///
/// let mut sink = PerfettoSink::new(2);
/// sink.record(&TraceEvent::Op {
///     proc: ProcId::new(1),
///     issued: Cycle::new(10),
///     retired: Cycle::new(52),
///     label: "FetchPhi",
///     local: false,
///     chain: 2,
/// });
/// let json = sink.json();
/// dsm_trace::perfetto::validate(&json).unwrap();
/// assert!(json.contains("\"FetchPhi\""));
/// ```
#[derive(Debug)]
pub struct PerfettoSink {
    entries: String,
    any: bool,
    /// Spans opened but not yet closed: the slice is emitted at
    /// [`TraceEvent::SpanEnd`], when the duration and outcome are
    /// known. BTreeMap for deterministic drain order.
    open_spans: std::collections::BTreeMap<u64, OpenSpan>,
}

/// The [`TraceEvent::SpanBegin`] fields held until the matching end.
#[derive(Debug, Clone, Copy)]
struct OpenSpan {
    ts: u64,
    op: &'static str,
    line: u64,
    pid: u32,
}

impl PerfettoSink {
    /// Creates a sink for a `nodes`-node machine, pre-populating the
    /// process/thread naming metadata so every track renders with a
    /// meaningful name.
    pub fn new(nodes: u32) -> Self {
        let mut s = PerfettoSink {
            entries: String::new(),
            any: false,
            open_spans: std::collections::BTreeMap::new(),
        };
        for n in 0..nodes {
            s.push(&format!(
                "{{\"name\":\"process_name\",\"ph\":\"M\",\"pid\":{n},\
                 \"args\":{{\"name\":\"node {n}\"}}}}"
            ));
            for (tid, name) in [
                (TID_CPU, "cpu"),
                (TID_CACHE, "cache-ctrl"),
                (TID_HOME, "home"),
                (TID_NET, "net-out"),
            ] {
                s.push(&format!(
                    "{{\"name\":\"thread_name\",\"ph\":\"M\",\"pid\":{n},\"tid\":{tid},\
                     \"args\":{{\"name\":\"{name}\"}}}}"
                ));
            }
        }
        s
    }

    fn push(&mut self, entry: &str) {
        if self.any {
            self.entries.push_str(",\n");
        }
        self.entries.push_str(entry);
        self.any = true;
    }

    /// The complete JSON document recorded so far.
    pub fn json(&self) -> String {
        format!(
            "{{\"displayTimeUnit\":\"ms\",\"traceEvents\":[\n{}\n]}}\n",
            self.entries
        )
    }
}

impl TraceSink for PerfettoSink {
    fn record(&mut self, ev: &TraceEvent) {
        let mut e = String::with_capacity(128);
        match *ev {
            TraceEvent::MsgSend {
                at,
                src,
                dst,
                line,
                kind,
                flits,
                hops,
                deliver_at,
                flow,
            } => {
                let ts = at.as_u64();
                let dur = (deliver_at - at).as_u64();
                let _ = write!(
                    e,
                    "{{\"name\":\"{kind}\",\"cat\":\"msg\",\"ph\":\"X\",\"ts\":{ts},\
                     \"dur\":{dur},\"pid\":{src},\"tid\":{TID_NET},\
                     \"args\":{{\"line\":{line},\"dst\":{dst},\"flits\":{flits},\
                     \"hops\":{hops}}}}}",
                    src = src.as_u32(),
                    dst = dst.as_u32(),
                    line = line.number(),
                );
                self.push(&e);
                e.clear();
                let _ = write!(
                    e,
                    "{{\"name\":\"msg\",\"cat\":\"flow\",\"ph\":\"s\",\"id\":{flow},\
                     \"ts\":{ts},\"pid\":{src},\"tid\":{TID_NET}}}",
                    src = src.as_u32(),
                );
                self.push(&e);
            }
            TraceEvent::MsgService {
                start,
                finish,
                dst,
                kind,
                home,
                flow,
            } => {
                let tid = if home { TID_HOME } else { TID_CACHE };
                let ts = start.as_u64();
                let dur = (finish - start).as_u64();
                let _ = write!(
                    e,
                    "{{\"name\":\"{kind}\",\"cat\":\"msg\",\"ph\":\"X\",\"ts\":{ts},\
                     \"dur\":{dur},\"pid\":{dst},\"tid\":{tid}}}",
                    dst = dst.as_u32(),
                );
                self.push(&e);
                e.clear();
                let _ = write!(
                    e,
                    "{{\"name\":\"msg\",\"cat\":\"flow\",\"ph\":\"f\",\"bp\":\"e\",\
                     \"id\":{flow},\"ts\":{ts},\"pid\":{dst},\"tid\":{tid}}}",
                    dst = dst.as_u32(),
                );
                self.push(&e);
            }
            TraceEvent::Op {
                proc,
                issued,
                retired,
                label,
                local,
                chain,
            } => {
                let _ = write!(
                    e,
                    "{{\"name\":\"{label}\",\"cat\":\"op\",\"ph\":\"X\",\
                     \"ts\":{ts},\"dur\":{dur},\"pid\":{pid},\"tid\":{TID_CPU},\
                     \"args\":{{\"chain\":{chain},\"local\":{local}}}}}",
                    ts = issued.as_u64(),
                    dur = (retired - issued).as_u64(),
                    pid = proc.as_u32(),
                );
                self.push(&e);
            }
            TraceEvent::Retry { at, proc, label } => {
                let _ = write!(
                    e,
                    "{{\"name\":\"{label}\",\"cat\":\"retry\",\"ph\":\"i\",\"s\":\"t\",\
                     \"ts\":{ts},\"pid\":{pid},\"tid\":{TID_CPU}}}",
                    ts = at.as_u64(),
                    pid = proc.as_u32(),
                );
                self.push(&e);
            }
            TraceEvent::Reservation { at, node, label } => {
                let _ = write!(
                    e,
                    "{{\"name\":\"{label}\",\"cat\":\"resv\",\"ph\":\"i\",\"s\":\"t\",\
                     \"ts\":{ts},\"pid\":{pid},\"tid\":{TID_HOME}}}",
                    ts = at.as_u64(),
                    pid = node.as_u32(),
                );
                self.push(&e);
            }
            TraceEvent::DirTransition {
                at,
                node,
                line,
                from,
                to,
            } => {
                let _ = write!(
                    e,
                    "{{\"name\":\"{f}\\u2192{t}\",\"cat\":\"state\",\"ph\":\"i\",\"s\":\"t\",\
                     \"ts\":{ts},\"pid\":{pid},\"tid\":{TID_HOME},\
                     \"args\":{{\"line\":{line},\"from_n\":{fn_},\"to_n\":{tn}}}}}",
                    f = from.name,
                    t = to.name,
                    ts = at.as_u64(),
                    pid = node.as_u32(),
                    line = line.number(),
                    fn_ = from.n,
                    tn = to.n,
                );
                self.push(&e);
            }
            TraceEvent::CacheTransition {
                at,
                node,
                line,
                from,
                to,
            } => {
                let _ = write!(
                    e,
                    "{{\"name\":\"{f}\\u2192{t}\",\"cat\":\"state\",\"ph\":\"i\",\"s\":\"t\",\
                     \"ts\":{ts},\"pid\":{pid},\"tid\":{TID_CACHE},\
                     \"args\":{{\"line\":{line},\"from_n\":{fn_},\"to_n\":{tn}}}}}",
                    f = from.name,
                    t = to.name,
                    ts = at.as_u64(),
                    pid = node.as_u32(),
                    line = line.number(),
                    fn_ = from.n,
                    tn = to.n,
                );
                self.push(&e);
            }
            TraceEvent::QueueDepth { at, node, depth } => {
                let _ = write!(
                    e,
                    "{{\"name\":\"home occupancy\",\"cat\":\"queue\",\"ph\":\"C\",\
                     \"ts\":{ts},\"pid\":{pid},\"tid\":{TID_HOME},\
                     \"args\":{{\"depth\":{depth}}}}}",
                    ts = at.as_u64(),
                    pid = node.as_u32(),
                );
                self.push(&e);
            }
            TraceEvent::SpanBegin {
                at,
                span,
                proc,
                op,
                line,
            } => {
                self.open_spans.insert(
                    span,
                    OpenSpan {
                        ts: at.as_u64(),
                        op,
                        line: line.number(),
                        pid: proc.as_u32(),
                    },
                );
            }
            TraceEvent::SpanPhase {
                start,
                end,
                span,
                node,
                phase,
            } => {
                let tid = match phase {
                    "net" => TID_NET,
                    "dir" | "queue" => TID_HOME,
                    _ => TID_CACHE,
                };
                let _ = write!(
                    e,
                    "{{\"name\":\"{phase}\",\"cat\":\"span\",\"ph\":\"X\",\"ts\":{ts},\
                     \"dur\":{dur},\"pid\":{pid},\"tid\":{tid},\
                     \"args\":{{\"span\":{span}}}}}",
                    ts = start.as_u64(),
                    dur = (end - start).as_u64(),
                    pid = node.as_u32(),
                );
                self.push(&e);
            }
            TraceEvent::SpanEnd {
                at,
                span,
                proc: _,
                outcome,
            } => {
                // A begin-less end can only come from hand-fed event
                // streams; a real tracer always begins first.
                if let Some(open) = self.open_spans.remove(&span) {
                    let _ = write!(
                        e,
                        "{{\"name\":\"{op}\",\"cat\":\"span\",\"ph\":\"X\",\"ts\":{ts},\
                         \"dur\":{dur},\"pid\":{pid},\"tid\":{TID_CPU},\
                         \"args\":{{\"span\":{span},\"line\":{line},\
                         \"outcome\":\"{outcome}\"}}}}",
                        op = open.op,
                        ts = open.ts,
                        dur = at.as_u64().saturating_sub(open.ts),
                        pid = open.pid,
                        line = open.line,
                    );
                    self.push(&e);
                }
            }
        }
    }

    fn write_to(&self, w: &mut dyn io::Write) -> io::Result<()> {
        w.write_all(self.json().as_bytes())
    }
}

// ---------------------------------------------------------------------
// Validation: a dependency-free JSON parser plus trace_event schema
// checks, used by the `validate_trace` binary, the test suite and CI.
// ---------------------------------------------------------------------

/// A parsed JSON value (just enough JSON for validation).
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// Any number (parsed as `f64`).
    Num(f64),
    /// A string (escapes decoded).
    Str(String),
    /// An array.
    Arr(Vec<Json>),
    /// An object, in source order.
    Obj(Vec<(String, Json)>),
}

impl Json {
    /// Looks up a key in an object.
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(fields) => fields.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The string payload, if this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The numeric payload, if this is a number.
    pub fn as_num(&self) -> Option<f64> {
        match self {
            Json::Num(n) => Some(*n),
            _ => None,
        }
    }
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn err(&self, what: &str) -> String {
        format!("JSON parse error at byte {}: {what}", self.pos)
    }

    fn skip_ws(&mut self) {
        while self
            .bytes
            .get(self.pos)
            .is_some_and(|b| matches!(b, b' ' | b'\t' | b'\n' | b'\r'))
        {
            self.pos += 1;
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, b: u8) -> Result<(), String> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.err(&format!("expected `{}`", b as char)))
        }
    }

    fn value(&mut self) -> Result<Json, String> {
        self.skip_ws();
        match self.peek() {
            Some(b'{') => self.object(),
            Some(b'[') => self.array(),
            Some(b'"') => Ok(Json::Str(self.string()?)),
            Some(b't') => self.literal("true", Json::Bool(true)),
            Some(b'f') => self.literal("false", Json::Bool(false)),
            Some(b'n') => self.literal("null", Json::Null),
            Some(c) if c == b'-' || c.is_ascii_digit() => self.number(),
            _ => Err(self.err("expected a value")),
        }
    }

    fn literal(&mut self, lit: &str, v: Json) -> Result<Json, String> {
        if self.bytes[self.pos..].starts_with(lit.as_bytes()) {
            self.pos += lit.len();
            Ok(v)
        } else {
            Err(self.err(&format!("expected `{lit}`")))
        }
    }

    fn number(&mut self) -> Result<Json, String> {
        let start = self.pos;
        while self
            .peek()
            .is_some_and(|b| b.is_ascii_digit() || matches!(b, b'-' | b'+' | b'.' | b'e' | b'E'))
        {
            self.pos += 1;
        }
        std::str::from_utf8(&self.bytes[start..self.pos])
            .ok()
            .and_then(|s| s.parse::<f64>().ok())
            .map(Json::Num)
            .ok_or_else(|| self.err("malformed number"))
    }

    fn string(&mut self) -> Result<String, String> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'n') => out.push('\n'),
                        Some(b't') => out.push('\t'),
                        Some(b'r') => out.push('\r'),
                        Some(b'b') => out.push('\u{8}'),
                        Some(b'f') => out.push('\u{c}'),
                        Some(b'u') => {
                            let hex = self
                                .bytes
                                .get(self.pos + 1..self.pos + 5)
                                .ok_or_else(|| self.err("truncated \\u escape"))?;
                            let code = std::str::from_utf8(hex)
                                .ok()
                                .and_then(|h| u32::from_str_radix(h, 16).ok())
                                .ok_or_else(|| self.err("bad \\u escape"))?;
                            // Surrogate pairs don't occur in our output;
                            // map lone surrogates to the replacement char.
                            out.push(char::from_u32(code).unwrap_or('\u{fffd}'));
                            self.pos += 4;
                        }
                        _ => return Err(self.err("bad escape")),
                    }
                    self.pos += 1;
                }
                Some(b) if b < 0x80 => {
                    out.push(b as char);
                    self.pos += 1;
                }
                Some(_) => {
                    // Decode one multi-byte UTF-8 scalar. Validate at
                    // most 4 bytes — validating the whole remaining
                    // input per character would be quadratic.
                    let end = (self.pos + 4).min(self.bytes.len());
                    let chunk = &self.bytes[self.pos..end];
                    let valid = match std::str::from_utf8(chunk) {
                        Ok(s) => s,
                        Err(e) if e.valid_up_to() > 0 => {
                            std::str::from_utf8(&chunk[..e.valid_up_to()]).unwrap()
                        }
                        Err(_) => return Err(self.err("invalid UTF-8")),
                    };
                    let ch = valid.chars().next().ok_or_else(|| self.err("truncated"))?;
                    out.push(ch);
                    self.pos += ch.len_utf8();
                }
                None => return Err(self.err("unterminated string")),
            }
        }
    }

    fn array(&mut self) -> Result<Json, String> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Json::Arr(items));
        }
        loop {
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Json::Arr(items));
                }
                _ => return Err(self.err("expected `,` or `]`")),
            }
        }
    }

    fn object(&mut self) -> Result<Json, String> {
        self.expect(b'{')?;
        let mut fields = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Json::Obj(fields));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            let val = self.value()?;
            fields.push((key, val));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Json::Obj(fields));
                }
                _ => return Err(self.err("expected `,` or `}`")),
            }
        }
    }
}

/// Parses a JSON document.
///
/// # Errors
///
/// Returns a position-annotated message on malformed input.
pub fn parse_json(text: &str) -> Result<Json, String> {
    let mut p = Parser {
        bytes: text.as_bytes(),
        pos: 0,
    };
    let v = p.value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(p.err("trailing data after document"));
    }
    Ok(v)
}

/// What [`validate`] found in a well-formed trace.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TraceSummary {
    /// Total `traceEvents` entries (metadata included).
    pub events: usize,
    /// Distinct `pid`s (node tracks).
    pub pids: usize,
    /// Complete (`ph:"X"`) slices.
    pub slices: usize,
    /// Flow starts (`ph:"s"`).
    pub flow_starts: usize,
    /// Flow finishes (`ph:"f"`).
    pub flow_finishes: usize,
}

/// Validates a Chrome/Perfetto `trace_event` JSON document: parses it,
/// checks the `traceEvents` envelope, and checks per-phase required
/// fields (`X` needs `ts`+`dur`+`pid`, flows need `id`, counters need
/// numeric `args`, ...). Returns counts for reporting.
///
/// # Errors
///
/// Returns a description of the first malformed event.
///
/// # Example
///
/// ```
/// use dsm_trace::perfetto::validate;
///
/// let ok = r#"{"traceEvents":[
///   {"name":"GetX","cat":"msg","ph":"X","ts":5,"dur":11,"pid":0,"tid":3},
///   {"name":"msg","cat":"flow","ph":"s","id":1,"ts":5,"pid":0,"tid":3}
/// ]}"#;
/// let summary = validate(ok).unwrap();
/// assert_eq!((summary.slices, summary.flow_starts), (1, 1));
///
/// assert!(validate(r#"{"traceEvents":[{"ph":"X"}]}"#).is_err());
/// assert!(validate("not json").is_err());
/// ```
pub fn validate(text: &str) -> Result<TraceSummary, String> {
    let doc = parse_json(text)?;
    let events = doc.get("traceEvents").ok_or("missing `traceEvents` key")?;
    let Json::Arr(events) = events else {
        return Err("`traceEvents` is not an array".into());
    };
    let mut pids = std::collections::BTreeSet::new();
    let mut summary = TraceSummary {
        events: events.len(),
        pids: 0,
        slices: 0,
        flow_starts: 0,
        flow_finishes: 0,
    };
    for (i, ev) in events.iter().enumerate() {
        let ctx = |what: &str| format!("traceEvents[{i}]: {what}");
        let ph = ev
            .get("ph")
            .and_then(Json::as_str)
            .ok_or_else(|| ctx("missing string `ph`"))?;
        let need_num = |key: &str| {
            ev.get(key)
                .and_then(Json::as_num)
                .ok_or_else(|| ctx(&format!("phase `{ph}` needs numeric `{key}`")))
        };
        let need_name = || {
            ev.get("name")
                .and_then(Json::as_str)
                .map(|_| ())
                .ok_or_else(|| ctx("missing string `name`"))
        };
        match ph {
            "M" => need_name()?,
            "X" => {
                need_name()?;
                need_num("ts")?;
                need_num("dur")?;
                pids.insert(need_num("pid")? as i64);
                need_num("tid")?;
                summary.slices += 1;
            }
            "i" => {
                need_name()?;
                need_num("ts")?;
                pids.insert(need_num("pid")? as i64);
            }
            "s" | "f" => {
                need_num("id")?;
                need_num("ts")?;
                pids.insert(need_num("pid")? as i64);
                if ph == "s" {
                    summary.flow_starts += 1;
                } else {
                    summary.flow_finishes += 1;
                }
            }
            "C" => {
                need_name()?;
                need_num("ts")?;
                pids.insert(need_num("pid")? as i64);
                match ev.get("args") {
                    Some(Json::Obj(fields)) if !fields.is_empty() => {}
                    _ => return Err(ctx("counter event needs non-empty `args`")),
                }
            }
            other => return Err(ctx(&format!("unsupported phase `{other}`"))),
        }
    }
    summary.pids = pids.len();
    Ok(summary)
}

#[cfg(test)]
mod tests {
    use super::*;
    use dsm_sim::{Cycle, LineAddr, NodeId, ProcId};

    #[test]
    fn empty_sink_validates() {
        let sink = PerfettoSink::new(4);
        let summary = validate(&sink.json()).unwrap();
        // 5 metadata entries per node.
        assert_eq!(summary.events, 20);
        assert_eq!(summary.slices, 0);
    }

    #[test]
    fn all_event_kinds_render_and_validate() {
        use crate::event::StateLabel;
        let mut sink = PerfettoSink::new(2);
        sink.record(&TraceEvent::MsgSend {
            at: Cycle::new(10),
            src: NodeId::new(0),
            dst: NodeId::new(1),
            line: LineAddr::new(2),
            kind: "GetX",
            flits: 3,
            hops: 1,
            deliver_at: Cycle::new(21),
            flow: 1,
        });
        sink.record(&TraceEvent::MsgService {
            start: Cycle::new(21),
            finish: Cycle::new(40),
            dst: NodeId::new(1),
            kind: "GetX",
            home: true,
            flow: 1,
        });
        sink.record(&TraceEvent::Op {
            proc: ProcId::new(0),
            issued: Cycle::new(10),
            retired: Cycle::new(60),
            label: "Cas",
            local: false,
            chain: 4,
        });
        sink.record(&TraceEvent::Retry {
            at: Cycle::new(60),
            proc: ProcId::new(0),
            label: "cas-fail",
        });
        sink.record(&TraceEvent::Reservation {
            at: Cycle::new(61),
            node: NodeId::new(1),
            label: "wipe",
        });
        sink.record(&TraceEvent::DirTransition {
            at: Cycle::new(40),
            node: NodeId::new(1),
            line: LineAddr::new(2),
            from: StateLabel::plain("Uncached"),
            to: StateLabel {
                name: "Dirty",
                n: 0,
            },
        });
        sink.record(&TraceEvent::CacheTransition {
            at: Cycle::new(40),
            node: NodeId::new(0),
            line: LineAddr::new(2),
            from: StateLabel::plain("Invalid"),
            to: StateLabel::plain("Exclusive"),
        });
        sink.record(&TraceEvent::QueueDepth {
            at: Cycle::new(40),
            node: NodeId::new(1),
            depth: 2,
        });
        let summary = validate(&sink.json()).unwrap();
        assert_eq!(summary.slices, 3); // send, service, op
        assert_eq!(summary.flow_starts, 1);
        assert_eq!(summary.flow_finishes, 1);
        assert_eq!(summary.pids, 2);
    }

    #[test]
    fn parser_handles_escapes_and_nesting() {
        let v = parse_json(r#"{"a":[1,2.5,-3],"b":"x→y","c":{"d":null,"e":true}}"#).unwrap();
        assert_eq!(v.get("b").unwrap().as_str().unwrap(), "x\u{2192}y");
        assert_eq!(
            v.get("a"),
            Some(&Json::Arr(vec![
                Json::Num(1.0),
                Json::Num(2.5),
                Json::Num(-3.0)
            ]))
        );
        assert_eq!(v.get("c").unwrap().get("d"), Some(&Json::Null));
    }

    #[test]
    fn parser_rejects_garbage() {
        assert!(parse_json("{").is_err());
        assert!(parse_json("[1,]").is_err());
        assert!(parse_json("{\"a\":1}x").is_err());
        assert!(parse_json("\"unterminated").is_err());
    }

    #[test]
    fn validate_rejects_missing_fields() {
        assert!(validate(r#"{"traceEvents":[{"name":"x","ph":"X","ts":1}]}"#).is_err());
        assert!(validate(r#"{"traceEvents":[{"name":"x","ph":"Z"}]}"#).is_err());
        assert!(validate(r#"{"other":1}"#).is_err());
        assert!(
            validate(r#"{"traceEvents":[{"name":"c","ph":"C","ts":1,"pid":0,"args":{}}]}"#)
                .is_err()
        );
    }
}
