//! A compact binary ring buffer: always-on capture for long runs.
//!
//! [`RingSink`] keeps the most recent N events as fixed-width 40-byte
//! records plus a small label dictionary, so capturing the tail of a
//! billion-cycle run costs a few megabytes of memory and no I/O until
//! the run ends. The on-disk format (see [`RingSink::write_to`]) is a
//! versioned little-endian dump: enough to reconstruct what the machine
//! was doing just before a failure without paying JSON's size.

use crate::event::TraceEvent;
use crate::sink::TraceSink;
use std::io;
use std::path::Path;

/// Magic bytes opening a serialized ring dump.
pub const RING_MAGIC: &[u8; 8] = b"DSMTRING";
/// Format version written after the magic. History: v1 = the original
/// eight record kinds; v2 added the span records (`SpanBegin`,
/// `SpanPhase`, `SpanEnd`). The layout is otherwise unchanged, so the
/// reader accepts both.
pub const RING_VERSION: u32 = 2;

/// Discriminants for [`RingRecord::kind`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[repr(u8)]
pub enum RecordKind {
    /// A [`TraceEvent::MsgSend`].
    MsgSend = 0,
    /// A [`TraceEvent::MsgService`].
    MsgService = 1,
    /// A [`TraceEvent::Op`].
    Op = 2,
    /// A [`TraceEvent::Retry`].
    Retry = 3,
    /// A [`TraceEvent::Reservation`].
    Reservation = 4,
    /// A [`TraceEvent::DirTransition`].
    DirTransition = 5,
    /// A [`TraceEvent::CacheTransition`].
    CacheTransition = 6,
    /// A [`TraceEvent::QueueDepth`].
    QueueDepth = 7,
    /// A [`TraceEvent::SpanBegin`] (format v2).
    SpanBegin = 8,
    /// A [`TraceEvent::SpanPhase`] (format v2).
    SpanPhase = 9,
    /// A [`TraceEvent::SpanEnd`] (format v2).
    SpanEnd = 10,
}

impl RecordKind {
    /// Decodes a discriminant byte, `None` if out of range.
    pub fn from_u8(v: u8) -> Option<RecordKind> {
        Some(match v {
            0 => RecordKind::MsgSend,
            1 => RecordKind::MsgService,
            2 => RecordKind::Op,
            3 => RecordKind::Retry,
            4 => RecordKind::Reservation,
            5 => RecordKind::DirTransition,
            6 => RecordKind::CacheTransition,
            7 => RecordKind::QueueDepth,
            8 => RecordKind::SpanBegin,
            9 => RecordKind::SpanPhase,
            10 => RecordKind::SpanEnd,
            _ => return None,
        })
    }
}

/// One fixed-width ring record. Field meaning depends on
/// [`kind`](RingRecord::kind):
///
/// | kind              | `ts`    | `node` | `label`      | `a`        | `b`                      | `c`        |
/// |-------------------|---------|--------|--------------|------------|--------------------------|------------|
/// | `MsgSend`         | send    | src    | msg kind     | line       | `dst<<32 \| flits`       | flow id    |
/// | `MsgService`      | start   | dst    | msg kind     | finish     | 1 if home else 0         | flow id    |
/// | `Op`              | issued  | proc   | op label     | retired    | `local<<32 \| chain`     | 0          |
/// | `Retry`           | at      | proc   | what failed  | 0          | 0                        | 0          |
/// | `Reservation`     | at      | node   | what         | 0          | 0                        | 0          |
/// | `DirTransition`   | at      | home   | from-state   | line       | `to_label<<32 \| to_n`   | from `n`   |
/// | `CacheTransition` | at      | node   | from-state   | line       | `to_label<<32 \| to_n`   | from `n`   |
/// | `QueueDepth`      | at      | home   | –            | depth      | 0                        | 0          |
/// | `SpanBegin`       | at      | proc   | op label     | line       | span id                  | 0          |
/// | `SpanPhase`       | start   | node   | phase        | end        | span id                  | 0          |
/// | `SpanEnd`         | at      | proc   | outcome      | 0          | span id                  | 0          |
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RingRecord {
    /// Event timestamp in cycles.
    pub ts: u64,
    /// Primary payload word.
    pub a: u64,
    /// Secondary payload word.
    pub b: u64,
    /// Tertiary payload word.
    pub c: u64,
    /// The node or processor index the event is attributed to.
    pub node: u32,
    /// Index into the label dictionary ([`RingSink::labels`]).
    pub label: u16,
    /// Record discriminant (a [`RecordKind`] value).
    pub kind: u8,
}

impl RingRecord {
    /// Serialized size in bytes.
    pub const SIZE: usize = 40;

    fn write_le(&self, out: &mut Vec<u8>) {
        out.extend_from_slice(&self.ts.to_le_bytes());
        out.extend_from_slice(&self.a.to_le_bytes());
        out.extend_from_slice(&self.b.to_le_bytes());
        out.extend_from_slice(&self.c.to_le_bytes());
        out.extend_from_slice(&self.node.to_le_bytes());
        out.extend_from_slice(&self.label.to_le_bytes());
        out.push(self.kind);
        out.push(0); // pad to 40
    }

    fn read_le(bytes: &[u8; Self::SIZE]) -> RingRecord {
        let word = |off: usize| u64::from_le_bytes(bytes[off..off + 8].try_into().unwrap());
        RingRecord {
            ts: word(0),
            a: word(8),
            b: word(16),
            c: word(24),
            node: u32::from_le_bytes(bytes[32..36].try_into().unwrap()),
            label: u16::from_le_bytes(bytes[36..38].try_into().unwrap()),
            kind: bytes[38],
        }
    }
}

/// A [`TraceSink`] retaining the most recent `capacity` events in a
/// fixed-width binary form.
#[derive(Debug)]
pub struct RingSink {
    buf: Vec<RingRecord>,
    capacity: usize,
    /// Next slot to overwrite once the buffer has wrapped.
    head: usize,
    wrapped: bool,
    dropped: u64,
    labels: Vec<&'static str>,
}

impl RingSink {
    /// Creates a ring retaining at most `capacity` events (min 1).
    pub fn new(capacity: usize) -> Self {
        let capacity = capacity.max(1);
        RingSink {
            buf: Vec::with_capacity(capacity.min(1 << 16)),
            capacity,
            head: 0,
            wrapped: false,
            dropped: 0,
            labels: Vec::new(),
        }
    }

    /// The label dictionary; [`RingRecord::label`] indexes into it.
    pub fn labels(&self) -> &[&'static str] {
        &self.labels
    }

    /// Events overwritten because the ring wrapped.
    pub fn dropped(&self) -> u64 {
        self.dropped
    }

    /// The retained records, oldest first.
    pub fn records(&self) -> Vec<RingRecord> {
        if !self.wrapped {
            return self.buf.clone();
        }
        let mut out = Vec::with_capacity(self.capacity);
        out.extend_from_slice(&self.buf[self.head..]);
        out.extend_from_slice(&self.buf[..self.head]);
        out
    }

    fn label_idx(&mut self, label: &'static str) -> u16 {
        // Linear scan: the dictionary holds message-kind and state names,
        // a few dozen distinct strings at most.
        if let Some(i) = self.labels.iter().position(|&l| l == label) {
            return i as u16;
        }
        self.labels.push(label);
        (self.labels.len() - 1) as u16
    }

    fn push(&mut self, rec: RingRecord) {
        if self.buf.len() < self.capacity {
            self.buf.push(rec);
            self.head = self.buf.len() % self.capacity;
        } else {
            self.buf[self.head] = rec;
            self.head = (self.head + 1) % self.capacity;
            self.wrapped = true;
            self.dropped += 1;
        }
    }
}

impl TraceSink for RingSink {
    fn record(&mut self, ev: &TraceEvent) {
        let rec = match *ev {
            TraceEvent::MsgSend {
                at,
                src,
                dst,
                line,
                kind,
                flits,
                deliver_at: _,
                hops: _,
                flow,
            } => RingRecord {
                ts: at.as_u64(),
                a: line.number(),
                b: (u64::from(dst.as_u32()) << 32) | (flits & 0xffff_ffff),
                c: flow,
                node: src.as_u32(),
                label: self.label_idx(kind),
                kind: RecordKind::MsgSend as u8,
            },
            TraceEvent::MsgService {
                start,
                finish,
                dst,
                kind,
                home,
                flow,
            } => RingRecord {
                ts: start.as_u64(),
                a: finish.as_u64(),
                b: u64::from(home),
                c: flow,
                node: dst.as_u32(),
                label: self.label_idx(kind),
                kind: RecordKind::MsgService as u8,
            },
            TraceEvent::Op {
                proc,
                issued,
                retired,
                label,
                local,
                chain,
            } => RingRecord {
                ts: issued.as_u64(),
                a: retired.as_u64(),
                b: (u64::from(local) << 32) | u64::from(chain),
                c: 0,
                node: proc.as_u32(),
                label: self.label_idx(label),
                kind: RecordKind::Op as u8,
            },
            TraceEvent::Retry { at, proc, label } => RingRecord {
                ts: at.as_u64(),
                a: 0,
                b: 0,
                c: 0,
                node: proc.as_u32(),
                label: self.label_idx(label),
                kind: RecordKind::Retry as u8,
            },
            TraceEvent::Reservation { at, node, label } => RingRecord {
                ts: at.as_u64(),
                a: 0,
                b: 0,
                c: 0,
                node: node.as_u32(),
                label: self.label_idx(label),
                kind: RecordKind::Reservation as u8,
            },
            TraceEvent::DirTransition {
                at,
                node,
                line,
                from,
                to,
            } => RingRecord {
                ts: at.as_u64(),
                a: line.number(),
                b: (u64::from(self.label_idx(to.name)) << 32) | u64::from(to.n),
                c: u64::from(from.n),
                node: node.as_u32(),
                label: self.label_idx(from.name),
                kind: RecordKind::DirTransition as u8,
            },
            TraceEvent::CacheTransition {
                at,
                node,
                line,
                from,
                to,
            } => RingRecord {
                ts: at.as_u64(),
                a: line.number(),
                b: (u64::from(self.label_idx(to.name)) << 32) | u64::from(to.n),
                c: u64::from(from.n),
                node: node.as_u32(),
                label: self.label_idx(from.name),
                kind: RecordKind::CacheTransition as u8,
            },
            TraceEvent::QueueDepth { at, node, depth } => RingRecord {
                ts: at.as_u64(),
                a: depth,
                b: 0,
                c: 0,
                node: node.as_u32(),
                label: 0,
                kind: RecordKind::QueueDepth as u8,
            },
            TraceEvent::SpanBegin {
                at,
                span,
                proc,
                op,
                line,
            } => RingRecord {
                ts: at.as_u64(),
                a: line.number(),
                b: span,
                c: 0,
                node: proc.as_u32(),
                label: self.label_idx(op),
                kind: RecordKind::SpanBegin as u8,
            },
            TraceEvent::SpanPhase {
                start,
                end,
                span,
                node,
                phase,
            } => RingRecord {
                ts: start.as_u64(),
                a: end.as_u64(),
                b: span,
                c: 0,
                node: node.as_u32(),
                label: self.label_idx(phase),
                kind: RecordKind::SpanPhase as u8,
            },
            TraceEvent::SpanEnd {
                at,
                span,
                proc,
                outcome,
            } => RingRecord {
                ts: at.as_u64(),
                a: 0,
                b: span,
                c: 0,
                node: proc.as_u32(),
                label: self.label_idx(outcome),
                kind: RecordKind::SpanEnd as u8,
            },
        };
        self.push(rec);
    }

    /// Serializes the ring: `DSMTRING` magic, `u32` version, `u64`
    /// dropped-event count, `u32` dictionary entry count followed by
    /// length-prefixed UTF-8 labels, `u64` record count, then the
    /// records oldest-first, 40 little-endian bytes each.
    fn write_to(&self, w: &mut dyn io::Write) -> io::Result<()> {
        let mut out = Vec::new();
        out.extend_from_slice(RING_MAGIC);
        out.extend_from_slice(&RING_VERSION.to_le_bytes());
        out.extend_from_slice(&self.dropped.to_le_bytes());
        out.extend_from_slice(&(self.labels.len() as u32).to_le_bytes());
        for label in &self.labels {
            out.extend_from_slice(&(label.len() as u32).to_le_bytes());
            out.extend_from_slice(label.as_bytes());
        }
        let records = self.records();
        out.extend_from_slice(&(records.len() as u64).to_le_bytes());
        for rec in &records {
            rec.write_le(&mut out);
        }
        w.write_all(&out)
    }
}

/// A parsed ring dump, as written by [`RingSink::write_to`]: the
/// analyzer-facing reader half of the format.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RingFile {
    /// Format version the file declared (1 or 2).
    pub version: u32,
    /// Events the sink overwrote because the ring wrapped.
    pub dropped: u64,
    /// The label dictionary; [`RingRecord::label`] indexes into it.
    pub labels: Vec<String>,
    /// Retained records, oldest first.
    pub records: Vec<RingRecord>,
}

impl RingFile {
    /// Parses a serialized ring dump.
    ///
    /// Accepts format versions 1 and 2 (v1 files simply contain no span
    /// records).
    ///
    /// # Errors
    ///
    /// Returns a description of the first structural problem: bad
    /// magic, unsupported version, truncation, non-UTF-8 label, or an
    /// out-of-range label/kind in a record.
    pub fn parse(bytes: &[u8]) -> Result<RingFile, String> {
        fn take<'a>(bytes: &'a [u8], pos: &mut usize, n: usize) -> Result<&'a [u8], String> {
            let end = pos
                .checked_add(n)
                .filter(|&e| e <= bytes.len())
                .ok_or_else(|| format!("truncated ring dump at byte {pos}"))?;
            let s = &bytes[*pos..end];
            *pos = end;
            Ok(s)
        }
        fn take_u32(bytes: &[u8], pos: &mut usize) -> Result<u32, String> {
            Ok(u32::from_le_bytes(take(bytes, pos, 4)?.try_into().unwrap()))
        }
        fn take_u64(bytes: &[u8], pos: &mut usize) -> Result<u64, String> {
            Ok(u64::from_le_bytes(take(bytes, pos, 8)?.try_into().unwrap()))
        }
        let mut pos = 0usize;
        if take(bytes, &mut pos, 8)? != RING_MAGIC {
            return Err("not a ring dump (bad magic)".into());
        }
        let version = take_u32(bytes, &mut pos)?;
        if !(1..=RING_VERSION).contains(&version) {
            return Err(format!(
                "unsupported ring format version {version} (reader supports 1..={RING_VERSION})"
            ));
        }
        let dropped = take_u64(bytes, &mut pos)?;
        let n_labels = take_u32(bytes, &mut pos)? as usize;
        let mut labels = Vec::with_capacity(n_labels.min(1 << 10));
        for i in 0..n_labels {
            let len = take_u32(bytes, &mut pos)? as usize;
            let label = std::str::from_utf8(take(bytes, &mut pos, len)?)
                .map_err(|_| format!("label {i} is not UTF-8"))?;
            labels.push(label.to_owned());
        }
        let n_records = take_u64(bytes, &mut pos)? as usize;
        let mut records = Vec::with_capacity(n_records.min(1 << 20));
        for i in 0..n_records {
            let raw: &[u8; RingRecord::SIZE] =
                take(bytes, &mut pos, RingRecord::SIZE)?.try_into().unwrap();
            let rec = RingRecord::read_le(raw);
            if RecordKind::from_u8(rec.kind).is_none() {
                return Err(format!("record {i} has unknown kind {}", rec.kind));
            }
            // QueueDepth writes label 0 even with an empty dictionary,
            // so only labeled kinds are range-checked.
            if rec.kind != RecordKind::QueueDepth as u8 && rec.label as usize >= labels.len() {
                return Err(format!(
                    "record {i} references label {} but the dictionary has {}",
                    rec.label,
                    labels.len()
                ));
            }
            records.push(rec);
        }
        if pos != bytes.len() {
            return Err(format!(
                "{} trailing bytes after the last record",
                bytes.len() - pos
            ));
        }
        Ok(RingFile {
            version,
            dropped,
            labels,
            records,
        })
    }

    /// Reads and parses a ring dump from `path`.
    ///
    /// # Errors
    ///
    /// I/O errors are returned as-is; parse failures come back as
    /// [`io::ErrorKind::InvalidData`].
    pub fn load(path: &Path) -> io::Result<RingFile> {
        let bytes = std::fs::read(path)?;
        RingFile::parse(&bytes).map_err(|e| {
            io::Error::new(
                io::ErrorKind::InvalidData,
                format!("{}: {e}", path.display()),
            )
        })
    }

    /// The dictionary string a record's label index refers to.
    pub fn label(&self, idx: u16) -> &str {
        self.labels
            .get(idx as usize)
            .map(String::as_str)
            .unwrap_or("?")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dsm_sim::{Cycle, LineAddr, NodeId, ProcId};

    fn op(issued: u64) -> TraceEvent {
        TraceEvent::Op {
            proc: ProcId::new(0),
            issued: Cycle::new(issued),
            retired: Cycle::new(issued + 10),
            label: "Load",
            local: true,
            chain: 0,
        }
    }

    #[test]
    fn retains_most_recent_oldest_first() {
        let mut ring = RingSink::new(4);
        for i in 0..7 {
            ring.record(&op(i));
        }
        let recs = ring.records();
        assert_eq!(recs.len(), 4);
        assert_eq!(
            recs.iter().map(|r| r.ts).collect::<Vec<_>>(),
            vec![3, 4, 5, 6]
        );
        assert_eq!(ring.dropped(), 3);
    }

    #[test]
    fn under_capacity_keeps_everything() {
        let mut ring = RingSink::new(16);
        for i in 0..5 {
            ring.record(&op(i));
        }
        assert_eq!(ring.records().len(), 5);
        assert_eq!(ring.dropped(), 0);
    }

    #[test]
    fn labels_deduplicate() {
        let mut ring = RingSink::new(8);
        ring.record(&op(1));
        ring.record(&op(2));
        ring.record(&TraceEvent::Retry {
            at: Cycle::new(3),
            proc: ProcId::new(1),
            label: "cas-fail",
        });
        assert_eq!(ring.labels(), &["Load", "cas-fail"]);
    }

    #[test]
    fn round_trips_through_the_reader() {
        let mut ring = RingSink::new(16);
        ring.record(&op(1));
        ring.record(&TraceEvent::SpanBegin {
            at: Cycle::new(2),
            span: 1,
            proc: ProcId::new(3),
            op: "Cas",
            line: LineAddr::new(7),
        });
        ring.record(&TraceEvent::SpanPhase {
            start: Cycle::new(4),
            end: Cycle::new(9),
            span: 1,
            node: NodeId::new(2),
            phase: "net",
        });
        ring.record(&TraceEvent::SpanEnd {
            at: Cycle::new(12),
            span: 1,
            proc: ProcId::new(3),
            outcome: "ok",
        });
        let mut bytes = Vec::new();
        ring.write_to(&mut bytes).unwrap();
        let file = RingFile::parse(&bytes).unwrap();
        assert_eq!(file.version, RING_VERSION);
        assert_eq!(file.dropped, 0);
        assert_eq!(file.labels, ["Load", "Cas", "net", "ok"]);
        assert_eq!(file.records, ring.records());
        let begin = &file.records[1];
        assert_eq!(begin.kind, RecordKind::SpanBegin as u8);
        assert_eq!(file.label(begin.label), "Cas");
        assert_eq!((begin.a, begin.b, begin.node), (7, 1, 3));
        let phase = &file.records[2];
        assert_eq!((phase.ts, phase.a, phase.b), (4, 9, 1));
        assert_eq!(file.label(phase.label), "net");
    }

    #[test]
    fn reader_rejects_corrupt_dumps() {
        let mut ring = RingSink::new(4);
        ring.record(&op(5));
        let mut bytes = Vec::new();
        ring.write_to(&mut bytes).unwrap();

        assert!(RingFile::parse(b"NOTARING").unwrap_err().contains("magic"));
        assert!(RingFile::parse(&bytes[..bytes.len() - 3])
            .unwrap_err()
            .contains("truncated"));
        let mut extra = bytes.clone();
        extra.push(0);
        assert!(RingFile::parse(&extra).unwrap_err().contains("trailing"));
        let mut vers = bytes.clone();
        vers[8..12].copy_from_slice(&99u32.to_le_bytes());
        assert!(RingFile::parse(&vers).unwrap_err().contains("version"));
        let mut kind = bytes.clone();
        let kind_off = bytes.len() - 2;
        kind[kind_off] = 200;
        assert!(RingFile::parse(&kind).unwrap_err().contains("kind"));
    }

    #[test]
    fn serialized_layout_is_stable() {
        let mut ring = RingSink::new(8);
        ring.record(&op(9));
        let mut bytes = Vec::new();
        ring.write_to(&mut bytes).unwrap();
        assert_eq!(&bytes[..8], RING_MAGIC);
        // version + dropped + dict count + one 4-char label + record
        // count + one record.
        assert_eq!(bytes.len(), 8 + 4 + 8 + 4 + (4 + 4) + 8 + RingRecord::SIZE);
        let rec_off = bytes.len() - RingRecord::SIZE;
        assert_eq!(&bytes[rec_off..rec_off + 8], &9u64.to_le_bytes());
    }
}
