//! A compact binary ring buffer: always-on capture for long runs.
//!
//! [`RingSink`] keeps the most recent N events as fixed-width 40-byte
//! records plus a small label dictionary, so capturing the tail of a
//! billion-cycle run costs a few megabytes of memory and no I/O until
//! the run ends. The on-disk format (see [`RingSink::write_to`]) is a
//! versioned little-endian dump: enough to reconstruct what the machine
//! was doing just before a failure without paying JSON's size.

use crate::event::TraceEvent;
use crate::sink::TraceSink;
use std::io;

/// Magic bytes opening a serialized ring dump.
pub const RING_MAGIC: &[u8; 8] = b"DSMTRING";
/// Format version written after the magic.
pub const RING_VERSION: u32 = 1;

/// Discriminants for [`RingRecord::kind`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[repr(u8)]
pub enum RecordKind {
    /// A [`TraceEvent::MsgSend`].
    MsgSend = 0,
    /// A [`TraceEvent::MsgService`].
    MsgService = 1,
    /// A [`TraceEvent::Op`].
    Op = 2,
    /// A [`TraceEvent::Retry`].
    Retry = 3,
    /// A [`TraceEvent::Reservation`].
    Reservation = 4,
    /// A [`TraceEvent::DirTransition`].
    DirTransition = 5,
    /// A [`TraceEvent::CacheTransition`].
    CacheTransition = 6,
    /// A [`TraceEvent::QueueDepth`].
    QueueDepth = 7,
}

/// One fixed-width ring record. Field meaning depends on
/// [`kind`](RingRecord::kind):
///
/// | kind              | `ts`    | `node` | `label`      | `a`        | `b`                      | `c`        |
/// |-------------------|---------|--------|--------------|------------|--------------------------|------------|
/// | `MsgSend`         | send    | src    | msg kind     | line       | `dst<<32 \| flits`       | flow id    |
/// | `MsgService`      | start   | dst    | msg kind     | finish     | 1 if home else 0         | flow id    |
/// | `Op`              | issued  | proc   | op label     | retired    | `local<<32 \| chain`     | 0          |
/// | `Retry`           | at      | proc   | what failed  | 0          | 0                        | 0          |
/// | `Reservation`     | at      | node   | what         | 0          | 0                        | 0          |
/// | `DirTransition`   | at      | home   | from-state   | line       | `to_label<<32 \| to_n`   | from `n`   |
/// | `CacheTransition` | at      | node   | from-state   | line       | `to_label<<32 \| to_n`   | from `n`   |
/// | `QueueDepth`      | at      | home   | –            | depth      | 0                        | 0          |
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RingRecord {
    /// Event timestamp in cycles.
    pub ts: u64,
    /// Primary payload word.
    pub a: u64,
    /// Secondary payload word.
    pub b: u64,
    /// Tertiary payload word.
    pub c: u64,
    /// The node or processor index the event is attributed to.
    pub node: u32,
    /// Index into the label dictionary ([`RingSink::labels`]).
    pub label: u16,
    /// Record discriminant (a [`RecordKind`] value).
    pub kind: u8,
}

impl RingRecord {
    /// Serialized size in bytes.
    pub const SIZE: usize = 40;

    fn write_le(&self, out: &mut Vec<u8>) {
        out.extend_from_slice(&self.ts.to_le_bytes());
        out.extend_from_slice(&self.a.to_le_bytes());
        out.extend_from_slice(&self.b.to_le_bytes());
        out.extend_from_slice(&self.c.to_le_bytes());
        out.extend_from_slice(&self.node.to_le_bytes());
        out.extend_from_slice(&self.label.to_le_bytes());
        out.push(self.kind);
        out.push(0); // pad to 40
    }
}

/// A [`TraceSink`] retaining the most recent `capacity` events in a
/// fixed-width binary form.
#[derive(Debug)]
pub struct RingSink {
    buf: Vec<RingRecord>,
    capacity: usize,
    /// Next slot to overwrite once the buffer has wrapped.
    head: usize,
    wrapped: bool,
    dropped: u64,
    labels: Vec<&'static str>,
}

impl RingSink {
    /// Creates a ring retaining at most `capacity` events (min 1).
    pub fn new(capacity: usize) -> Self {
        let capacity = capacity.max(1);
        RingSink {
            buf: Vec::with_capacity(capacity.min(1 << 16)),
            capacity,
            head: 0,
            wrapped: false,
            dropped: 0,
            labels: Vec::new(),
        }
    }

    /// The label dictionary; [`RingRecord::label`] indexes into it.
    pub fn labels(&self) -> &[&'static str] {
        &self.labels
    }

    /// Events overwritten because the ring wrapped.
    pub fn dropped(&self) -> u64 {
        self.dropped
    }

    /// The retained records, oldest first.
    pub fn records(&self) -> Vec<RingRecord> {
        if !self.wrapped {
            return self.buf.clone();
        }
        let mut out = Vec::with_capacity(self.capacity);
        out.extend_from_slice(&self.buf[self.head..]);
        out.extend_from_slice(&self.buf[..self.head]);
        out
    }

    fn label_idx(&mut self, label: &'static str) -> u16 {
        // Linear scan: the dictionary holds message-kind and state names,
        // a few dozen distinct strings at most.
        if let Some(i) = self.labels.iter().position(|&l| l == label) {
            return i as u16;
        }
        self.labels.push(label);
        (self.labels.len() - 1) as u16
    }

    fn push(&mut self, rec: RingRecord) {
        if self.buf.len() < self.capacity {
            self.buf.push(rec);
            self.head = self.buf.len() % self.capacity;
        } else {
            self.buf[self.head] = rec;
            self.head = (self.head + 1) % self.capacity;
            self.wrapped = true;
            self.dropped += 1;
        }
    }
}

impl TraceSink for RingSink {
    fn record(&mut self, ev: &TraceEvent) {
        let rec = match *ev {
            TraceEvent::MsgSend {
                at,
                src,
                dst,
                line,
                kind,
                flits,
                deliver_at: _,
                hops: _,
                flow,
            } => RingRecord {
                ts: at.as_u64(),
                a: line.number(),
                b: (u64::from(dst.as_u32()) << 32) | (flits & 0xffff_ffff),
                c: flow,
                node: src.as_u32(),
                label: self.label_idx(kind),
                kind: RecordKind::MsgSend as u8,
            },
            TraceEvent::MsgService {
                start,
                finish,
                dst,
                kind,
                home,
                flow,
            } => RingRecord {
                ts: start.as_u64(),
                a: finish.as_u64(),
                b: u64::from(home),
                c: flow,
                node: dst.as_u32(),
                label: self.label_idx(kind),
                kind: RecordKind::MsgService as u8,
            },
            TraceEvent::Op {
                proc,
                issued,
                retired,
                label,
                local,
                chain,
            } => RingRecord {
                ts: issued.as_u64(),
                a: retired.as_u64(),
                b: (u64::from(local) << 32) | u64::from(chain),
                c: 0,
                node: proc.as_u32(),
                label: self.label_idx(label),
                kind: RecordKind::Op as u8,
            },
            TraceEvent::Retry { at, proc, label } => RingRecord {
                ts: at.as_u64(),
                a: 0,
                b: 0,
                c: 0,
                node: proc.as_u32(),
                label: self.label_idx(label),
                kind: RecordKind::Retry as u8,
            },
            TraceEvent::Reservation { at, node, label } => RingRecord {
                ts: at.as_u64(),
                a: 0,
                b: 0,
                c: 0,
                node: node.as_u32(),
                label: self.label_idx(label),
                kind: RecordKind::Reservation as u8,
            },
            TraceEvent::DirTransition {
                at,
                node,
                line,
                from,
                to,
            } => RingRecord {
                ts: at.as_u64(),
                a: line.number(),
                b: (u64::from(self.label_idx(to.name)) << 32) | u64::from(to.n),
                c: u64::from(from.n),
                node: node.as_u32(),
                label: self.label_idx(from.name),
                kind: RecordKind::DirTransition as u8,
            },
            TraceEvent::CacheTransition {
                at,
                node,
                line,
                from,
                to,
            } => RingRecord {
                ts: at.as_u64(),
                a: line.number(),
                b: (u64::from(self.label_idx(to.name)) << 32) | u64::from(to.n),
                c: u64::from(from.n),
                node: node.as_u32(),
                label: self.label_idx(from.name),
                kind: RecordKind::CacheTransition as u8,
            },
            TraceEvent::QueueDepth { at, node, depth } => RingRecord {
                ts: at.as_u64(),
                a: depth,
                b: 0,
                c: 0,
                node: node.as_u32(),
                label: 0,
                kind: RecordKind::QueueDepth as u8,
            },
        };
        self.push(rec);
    }

    /// Serializes the ring: `DSMTRING` magic, `u32` version, `u64`
    /// dropped-event count, `u32` dictionary entry count followed by
    /// length-prefixed UTF-8 labels, `u64` record count, then the
    /// records oldest-first, 40 little-endian bytes each.
    fn write_to(&self, w: &mut dyn io::Write) -> io::Result<()> {
        let mut out = Vec::new();
        out.extend_from_slice(RING_MAGIC);
        out.extend_from_slice(&RING_VERSION.to_le_bytes());
        out.extend_from_slice(&self.dropped.to_le_bytes());
        out.extend_from_slice(&(self.labels.len() as u32).to_le_bytes());
        for label in &self.labels {
            out.extend_from_slice(&(label.len() as u32).to_le_bytes());
            out.extend_from_slice(label.as_bytes());
        }
        let records = self.records();
        out.extend_from_slice(&(records.len() as u64).to_le_bytes());
        for rec in &records {
            rec.write_le(&mut out);
        }
        w.write_all(&out)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dsm_sim::{Cycle, ProcId};

    fn op(issued: u64) -> TraceEvent {
        TraceEvent::Op {
            proc: ProcId::new(0),
            issued: Cycle::new(issued),
            retired: Cycle::new(issued + 10),
            label: "Load",
            local: true,
            chain: 0,
        }
    }

    #[test]
    fn retains_most_recent_oldest_first() {
        let mut ring = RingSink::new(4);
        for i in 0..7 {
            ring.record(&op(i));
        }
        let recs = ring.records();
        assert_eq!(recs.len(), 4);
        assert_eq!(
            recs.iter().map(|r| r.ts).collect::<Vec<_>>(),
            vec![3, 4, 5, 6]
        );
        assert_eq!(ring.dropped(), 3);
    }

    #[test]
    fn under_capacity_keeps_everything() {
        let mut ring = RingSink::new(16);
        for i in 0..5 {
            ring.record(&op(i));
        }
        assert_eq!(ring.records().len(), 5);
        assert_eq!(ring.dropped(), 0);
    }

    #[test]
    fn labels_deduplicate() {
        let mut ring = RingSink::new(8);
        ring.record(&op(1));
        ring.record(&op(2));
        ring.record(&TraceEvent::Retry {
            at: Cycle::new(3),
            proc: ProcId::new(1),
            label: "cas-fail",
        });
        assert_eq!(ring.labels(), &["Load", "cas-fail"]);
    }

    #[test]
    fn serialized_layout_is_stable() {
        let mut ring = RingSink::new(8);
        ring.record(&op(9));
        let mut bytes = Vec::new();
        ring.write_to(&mut bytes).unwrap();
        assert_eq!(&bytes[..8], RING_MAGIC);
        // version + dropped + dict count + one 4-char label + record
        // count + one record.
        assert_eq!(bytes.len(), 8 + 4 + 8 + 4 + (4 + 4) + 8 + RingRecord::SIZE);
        let rec_off = bytes.len() - RingRecord::SIZE;
        assert_eq!(&bytes[rec_off..rec_off + 8], &9u64.to_le_bytes());
    }
}
