//! The [`TraceSink`] trait: where structured events go.

use crate::event::TraceEvent;
use std::io;

/// A consumer of [`TraceEvent`]s.
///
/// The machine emits events through a
/// [`Tracer`](crate::Tracer), which fans each one out to every attached
/// sink. Implementations must be cheap per event — `record` sits on the
/// simulator's hot path whenever tracing is enabled — and must be
/// deterministic: the byte stream a sink produces may depend only on
/// the events it was fed, never on wall-clock time, thread identity or
/// iteration order of unordered containers.
///
/// # Example
///
/// A custom sink that just counts events by category:
///
/// ```
/// use dsm_trace::{Category, TraceEvent, TraceSink};
///
/// #[derive(Default)]
/// struct CountingSink {
///     msgs: u64,
///     other: u64,
/// }
///
/// impl TraceSink for CountingSink {
///     fn record(&mut self, ev: &TraceEvent) {
///         match ev.category() {
///             Category::Msg => self.msgs += 1,
///             _ => self.other += 1,
///         }
///     }
///
///     fn write_to(&self, w: &mut dyn std::io::Write) -> std::io::Result<()> {
///         writeln!(w, "{} message events, {} others", self.msgs, self.other)
///     }
/// }
///
/// let mut sink = CountingSink::default();
/// sink.record(&TraceEvent::QueueDepth {
///     at: dsm_sim::Cycle::new(1),
///     node: dsm_sim::NodeId::new(0),
///     depth: 3,
/// });
/// let mut out = Vec::new();
/// sink.write_to(&mut out).unwrap();
/// assert_eq!(String::from_utf8(out).unwrap(), "0 message events, 1 others\n");
/// ```
pub trait TraceSink {
    /// Consumes one event. Called in simulation order: event timestamps
    /// are nondecreasing *per track* but not globally (a service
    /// interval is recorded at delivery time, which can precede the
    /// start of an earlier-recorded interval on another node).
    fn record(&mut self, ev: &TraceEvent);

    /// Serializes everything recorded so far to `w`.
    ///
    /// # Errors
    ///
    /// Propagates I/O errors from `w`.
    fn write_to(&self, w: &mut dyn io::Write) -> io::Result<()>;
}
