//! Parsing of `--trace[=SPEC]` / `DSM_TRACE` specifications.

use crate::event::{Categories, UnknownCategory};
use std::path::PathBuf;

/// A parsed trace specification: which sinks to attach, where their
/// output goes, and which event categories to record.
///
/// The spec grammar is a comma-separated list of clauses:
///
/// * `perfetto` or `perfetto:PATH` — attach the Perfetto JSON sink.
///   Without a path, files are written into the `traces/` directory
///   under a deterministic content-addressed name; with a path ending
///   in `.json`, exactly that file is written; any other path is used
///   as the output directory.
/// * `ring`, `ring:CAP`, or `ring:CAP:PATH` — attach the binary ring
///   buffer, retaining `CAP` events (default 65536).
/// * `cat:LIST` — record only the `+`-separated categories in `LIST`
///   (`msg`, `op`, `state`, `resv`, `queue`, `retry`, `span`).
///
/// The empty string and the bare words `1`, `on`, `default` all mean
/// "Perfetto sink, every category, default directory" — so
/// `DSM_TRACE=1` and `--trace` just work.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TraceSpec {
    /// Attach the Perfetto `trace_event` JSON sink.
    pub perfetto: bool,
    /// Perfetto output: a `.json` file path, a directory, or `None` for
    /// the default `traces/` directory.
    pub out: Option<PathBuf>,
    /// Ring-buffer capacity in events, if the ring sink is attached.
    pub ring: Option<usize>,
    /// Ring output path (file or directory), if given. When absent,
    /// the ring follows [`out`](TraceSpec::out) so both files land
    /// together; only with neither path does it use the default
    /// directory.
    pub ring_out: Option<PathBuf>,
    /// Categories to record.
    pub cats: Categories,
}

/// Default ring capacity when `ring` is given without one.
pub const DEFAULT_RING_CAPACITY: usize = 65_536;

/// Why a trace specification failed to parse. Every variant carries the
/// offending fragment, so callers can match on the failure mode instead
/// of scraping a message string.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SpecError {
    /// `perfetto:` with nothing after the colon.
    PerfettoNeedsPath,
    /// `ring:CAP` where `CAP` is not an unsigned integer.
    BadRingCapacity {
        /// The unparsable capacity text.
        given: String,
    },
    /// `ring:0` — a ring that can hold nothing.
    ZeroRingCapacity,
    /// `ring:CAP:` with nothing after the second colon.
    RingNeedsPath,
    /// `cat` with no `:LIST`.
    CatNeedsList,
    /// A category word in `cat:LIST` is not a known category.
    UnknownCategory(UnknownCategory),
    /// A clause word is none of `perfetto`, `ring`, `cat`.
    UnknownClause {
        /// The unrecognized clause word.
        clause: String,
    },
    /// The spec parsed but attaches no sink at all.
    NoSink,
}

impl std::fmt::Display for SpecError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SpecError::PerfettoNeedsPath => {
                write!(f, "`perfetto:` needs a path after the colon")
            }
            SpecError::BadRingCapacity { given } => {
                write!(f, "bad ring capacity `{given}` (want an event count)")
            }
            SpecError::ZeroRingCapacity => write!(f, "ring capacity must be at least 1"),
            SpecError::RingNeedsPath => {
                write!(f, "`ring:CAP:` needs a path after the colon")
            }
            SpecError::CatNeedsList => {
                write!(f, "`cat` needs a `+`-separated list, e.g. `cat:msg+op`")
            }
            SpecError::UnknownCategory(e) => write!(f, "{e}"),
            SpecError::UnknownClause { clause } => write!(
                f,
                "unknown trace clause `{clause}` (expected `perfetto[:PATH]`, \
                 `ring[:CAP[:PATH]]`, or `cat:LIST`)"
            ),
            SpecError::NoSink => {
                write!(f, "trace spec enables no sink (add `perfetto` or `ring`)")
            }
        }
    }
}

impl std::error::Error for SpecError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            SpecError::UnknownCategory(e) => Some(e),
            _ => None,
        }
    }
}

impl From<UnknownCategory> for SpecError {
    fn from(e: UnknownCategory) -> Self {
        SpecError::UnknownCategory(e)
    }
}

impl Default for TraceSpec {
    /// The spec produced by a bare `--trace`: Perfetto sink, all
    /// categories, default output directory, no ring.
    fn default() -> Self {
        TraceSpec {
            perfetto: true,
            out: None,
            ring: None,
            ring_out: None,
            cats: Categories::all(),
        }
    }
}

impl TraceSpec {
    /// Parses a trace specification.
    ///
    /// # Errors
    ///
    /// Returns a typed [`SpecError`] on unknown clauses, unknown
    /// categories, or malformed capacities.
    ///
    /// # Examples
    ///
    /// ```
    /// use dsm_trace::TraceSpec;
    ///
    /// // The common cases: `--trace` / `DSM_TRACE=1`.
    /// assert_eq!(TraceSpec::from_spec("").unwrap(), TraceSpec::default());
    /// assert_eq!(TraceSpec::from_spec("on").unwrap(), TraceSpec::default());
    ///
    /// // Explicit output file, restricted categories.
    /// let spec = TraceSpec::from_spec("perfetto:out/run.json,cat:msg+op").unwrap();
    /// assert_eq!(spec.out.as_deref(), Some(std::path::Path::new("out/run.json")));
    /// assert!(spec.cats.contains(dsm_trace::Category::Msg));
    /// assert!(!spec.cats.contains(dsm_trace::Category::State));
    ///
    /// // Ring buffer with a capacity, alongside Perfetto.
    /// let spec = TraceSpec::from_spec("perfetto,ring:1024").unwrap();
    /// assert_eq!(spec.ring, Some(1024));
    ///
    /// // Ring only.
    /// let spec = TraceSpec::from_spec("ring").unwrap();
    /// assert!(!spec.perfetto);
    /// assert_eq!(spec.ring, Some(dsm_trace::spec::DEFAULT_RING_CAPACITY));
    ///
    /// // Errors are typed.
    /// use dsm_trace::spec::SpecError;
    /// assert!(matches!(
    ///     TraceSpec::from_spec("bogus"),
    ///     Err(SpecError::UnknownClause { .. })
    /// ));
    /// assert!(matches!(
    ///     TraceSpec::from_spec("cat:msg+nope"),
    ///     Err(SpecError::UnknownCategory(_))
    /// ));
    /// assert!(matches!(
    ///     TraceSpec::from_spec("ring:zillion"),
    ///     Err(SpecError::BadRingCapacity { .. })
    /// ));
    /// ```
    pub fn from_spec(spec: &str) -> Result<TraceSpec, SpecError> {
        let spec = spec.trim();
        if matches!(spec, "" | "1" | "on" | "default") {
            return Ok(TraceSpec::default());
        }
        let mut out = TraceSpec {
            perfetto: false,
            out: None,
            ring: None,
            ring_out: None,
            cats: Categories::all(),
        };
        for clause in spec.split(',') {
            let clause = clause.trim();
            let (word, rest) = match clause.split_once(':') {
                Some((w, r)) => (w, Some(r)),
                None => (clause, None),
            };
            match word {
                "perfetto" => {
                    out.perfetto = true;
                    if let Some(path) = rest {
                        if path.is_empty() {
                            return Err(SpecError::PerfettoNeedsPath);
                        }
                        out.out = Some(PathBuf::from(path));
                    }
                }
                "ring" => {
                    let mut cap = DEFAULT_RING_CAPACITY;
                    if let Some(rest) = rest {
                        let (cap_str, path) = match rest.split_once(':') {
                            Some((c, p)) => (c, Some(p)),
                            None => (rest, None),
                        };
                        cap = cap_str
                            .parse::<usize>()
                            .map_err(|_| SpecError::BadRingCapacity {
                                given: cap_str.into(),
                            })?;
                        if cap == 0 {
                            return Err(SpecError::ZeroRingCapacity);
                        }
                        if let Some(path) = path {
                            if path.is_empty() {
                                return Err(SpecError::RingNeedsPath);
                            }
                            out.ring_out = Some(PathBuf::from(path));
                        }
                    }
                    out.ring = Some(cap);
                }
                "cat" => {
                    let list = rest.ok_or(SpecError::CatNeedsList)?;
                    out.cats = list.parse()?;
                }
                other => {
                    return Err(SpecError::UnknownClause {
                        clause: other.into(),
                    });
                }
            }
        }
        if !out.perfetto && out.ring.is_none() {
            return Err(SpecError::NoSink);
        }
        Ok(out)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::event::Category;

    #[test]
    fn bare_forms_mean_default() {
        for s in ["", "1", "on", "default", "  on  "] {
            assert_eq!(TraceSpec::from_spec(s).unwrap(), TraceSpec::default());
        }
    }

    #[test]
    fn ring_with_cap_and_path() {
        let spec = TraceSpec::from_spec("ring:512:dump.bin").unwrap();
        assert_eq!(spec.ring, Some(512));
        assert_eq!(
            spec.ring_out.as_deref(),
            Some(std::path::Path::new("dump.bin"))
        );
        assert!(!spec.perfetto);
    }

    #[test]
    fn directory_output() {
        let spec = TraceSpec::from_spec("perfetto:mydir").unwrap();
        assert_eq!(spec.out.as_deref(), Some(std::path::Path::new("mydir")));
    }

    #[test]
    fn categories_restrict() {
        let spec = TraceSpec::from_spec("perfetto,cat:queue").unwrap();
        assert!(spec.cats.contains(Category::Queue));
        assert!(!spec.cats.contains(Category::Msg));
        let spec = TraceSpec::from_spec("perfetto,cat:span+op").unwrap();
        assert!(spec.cats.contains(Category::Span));
        assert!(!spec.cats.contains(Category::Queue));
    }

    #[test]
    fn errors_are_typed() {
        assert_eq!(
            TraceSpec::from_spec("perfetto:"),
            Err(SpecError::PerfettoNeedsPath)
        );
        assert_eq!(
            TraceSpec::from_spec("ring:0"),
            Err(SpecError::ZeroRingCapacity)
        );
        assert_eq!(
            TraceSpec::from_spec("ring:8:"),
            Err(SpecError::RingNeedsPath)
        );
        assert_eq!(
            TraceSpec::from_spec("ring:many"),
            Err(SpecError::BadRingCapacity {
                given: "many".into()
            })
        );
        assert_eq!(TraceSpec::from_spec("cat"), Err(SpecError::CatNeedsList));
        assert_eq!(
            TraceSpec::from_spec("cat:msg,nothing"),
            Err(SpecError::UnknownClause {
                clause: "nothing".into()
            })
        );
        assert_eq!(TraceSpec::from_spec("ring,cat:"), {
            Err(SpecError::UnknownCategory(UnknownCategory {
                word: "".into(),
            }))
        });
    }

    /// The satellite fix: an unknown category name inside `cat:LIST` is
    /// a typed, matchable rejection — it must never be silently dropped
    /// from the set.
    #[test]
    fn unknown_category_is_a_typed_rejection() {
        match TraceSpec::from_spec("perfetto,cat:msg+typo+op") {
            Err(SpecError::UnknownCategory(e)) => {
                assert_eq!(e.word, "typo");
                assert!(e.to_string().contains("`typo`"));
            }
            other => panic!("expected UnknownCategory, got {other:?}"),
        }
        // Same for the FromStr impl used directly.
        let err = "msg+bogus".parse::<Categories>().unwrap_err();
        assert_eq!(err.word, "bogus");
    }

    #[test]
    fn no_sink_is_rejected() {
        assert_eq!(TraceSpec::from_spec("cat:msg"), Err(SpecError::NoSink));
    }
}
