//! The [`Tracer`]: the machine-facing front end of the tracing layer.
//!
//! A `Tracer` owns the attached sinks, the per-node metrics, and the
//! flow-id bookkeeping that links a message's send to its delivery (and
//! thereby request to reply in the viewer). The machine holds an
//! `Option<Box<Tracer>>`: `None` costs one never-taken branch per
//! instrumentation site, which is the whole "zero cost when off" story.

use crate::event::{Categories, Category, StateLabel, TraceEvent};
use crate::perfetto::PerfettoSink;
use crate::ring::RingSink;
use crate::sink::TraceSink;
use crate::spec::TraceSpec;
use dsm_sim::{Cycle, LineAddr, NodeId, ProcId, StableHashMap, StableHasher};
use dsm_stats::metrics::{render_node_metrics, NodeMetrics};
use std::collections::VecDeque;
use std::io;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};

/// Distinguishes concurrently written temp files; never affects final
/// file names or contents.
static TMP_COUNTER: AtomicU64 = AtomicU64::new(0);

/// Records structured events into the sinks selected by a
/// [`TraceSpec`], maintains per-node [`NodeMetrics`], and writes the
/// output files when the run finishes.
///
/// Determinism contract: everything a `Tracer` writes is a pure
/// function of the event sequence it was fed. Flow ids come from a
/// private monotonic counter, file names embed the run seed and a
/// [`StableHasher`] digest of the content, and no wall-clock value is
/// ever recorded — so the same simulation produces byte-identical
/// trace files whether it runs under `--jobs 1` or `--jobs 8`.
pub struct Tracer {
    cats: Categories,
    perfetto: Option<PerfettoSink>,
    ring: Option<RingSink>,
    extra: Vec<Box<dyn TraceSink>>,
    perfetto_out: Option<PathBuf>,
    ring_out: Option<PathBuf>,
    /// Per-(src,dst) queues of in-flight flow ids. The mesh delivers
    /// messages between any given pair of nodes in FIFO order, so the
    /// send at the queue's front is always the one being delivered.
    pair_flows: StableHashMap<u64, VecDeque<u64>>,
    next_flow: u64,
    /// The operation span the machine is currently working on behalf
    /// of; messages sent while it is non-zero are attributed to it.
    span_ctx: u64,
    /// Span ids start at 1 so 0 can mean "no span" everywhere.
    next_span: u64,
    /// In-flight flow → owning span, plus the send/delivery times
    /// needed to emit the `net` and `queue` phases at service time.
    flow_spans: StableHashMap<u64, FlowCtx>,
    metrics: Vec<NodeMetrics>,
}

/// What [`Tracer::msg_service`] needs to reconstruct a flow's network
/// and queueing phases: stored at send time, consumed at service time.
#[derive(Debug, Clone, Copy)]
struct FlowCtx {
    span: u64,
    sent: Cycle,
    deliver_at: Cycle,
}

impl std::fmt::Debug for Tracer {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Tracer")
            .field("cats", &self.cats)
            .field("perfetto", &self.perfetto.is_some())
            .field("ring", &self.ring.is_some())
            .field("extra_sinks", &self.extra.len())
            .field("next_flow", &self.next_flow)
            .finish()
    }
}

impl Tracer {
    /// Creates a tracer for a `nodes`-node machine from a parsed spec.
    pub fn new(spec: &TraceSpec, nodes: u32) -> Self {
        Tracer {
            cats: spec.cats,
            perfetto: spec.perfetto.then(|| PerfettoSink::new(nodes)),
            ring: spec.ring.map(RingSink::new),
            extra: Vec::new(),
            perfetto_out: spec.out.clone(),
            // A ring without its own path follows the Perfetto output
            // (only the extension differs), so one `perfetto:DIR,ring`
            // spec keeps both files together.
            ring_out: spec.ring_out.clone().or_else(|| {
                spec.out.as_ref().map(|p| {
                    if p.extension().is_some() {
                        p.with_extension("ring")
                    } else {
                        p.clone()
                    }
                })
            }),
            pair_flows: StableHashMap::default(),
            next_flow: 0,
            span_ctx: 0,
            next_span: 1,
            flow_spans: StableHashMap::default(),
            metrics: vec![NodeMetrics::new(); nodes as usize],
        }
    }

    /// Attaches an additional custom sink (receives every enabled
    /// event, after the built-in sinks).
    pub fn add_sink(&mut self, sink: Box<dyn TraceSink>) {
        self.extra.push(sink);
    }

    /// Whether events of `cat` are being recorded. Instrumentation
    /// sites with any preparation cost (state probes, queue scans)
    /// check this before doing the work.
    #[inline]
    pub fn wants(&self, cat: Category) -> bool {
        self.cats.contains(cat)
    }

    fn record(&mut self, ev: &TraceEvent) {
        if let Some(p) = &mut self.perfetto {
            p.record(ev);
        }
        if let Some(r) = &mut self.ring {
            r.record(ev);
        }
        for s in &mut self.extra {
            s.record(ev);
        }
        self.update_metrics(ev);
    }

    fn update_metrics(&mut self, ev: &TraceEvent) {
        fn m(metrics: &mut Vec<NodeMetrics>, idx: usize) -> &mut NodeMetrics {
            if idx >= metrics.len() {
                metrics.resize(idx + 1, NodeMetrics::new());
            }
            &mut metrics[idx]
        }
        match *ev {
            TraceEvent::MsgSend {
                at,
                src,
                flits,
                deliver_at,
                ..
            } => {
                let node = m(&mut self.metrics, src.index());
                node.msgs_sent += 1;
                node.flits_sent += flits;
                node.transit.record((deliver_at - at).as_u64() as usize);
            }
            TraceEvent::MsgService { dst, home, .. } => {
                let node = m(&mut self.metrics, dst.index());
                if home {
                    node.served_home += 1;
                } else {
                    node.served_cache += 1;
                }
            }
            TraceEvent::Op { proc, .. } => {
                m(&mut self.metrics, proc.node().index()).ops_retired += 1;
            }
            TraceEvent::Retry { proc, .. } => {
                m(&mut self.metrics, proc.node().index()).retries += 1;
            }
            TraceEvent::Reservation { .. } => {}
            TraceEvent::DirTransition { node, .. } => {
                m(&mut self.metrics, node.index()).dir_transitions += 1;
            }
            TraceEvent::CacheTransition { node, .. } => {
                m(&mut self.metrics, node.index()).cache_transitions += 1;
            }
            TraceEvent::QueueDepth { node, depth, .. } => {
                m(&mut self.metrics, node.index())
                    .queue_depth
                    .record(depth as usize);
            }
            // Spans are derived views of the same activity the arms
            // above already count; attributing them again would
            // double-book the metrics.
            TraceEvent::SpanBegin { .. }
            | TraceEvent::SpanPhase { .. }
            | TraceEvent::SpanEnd { .. } => {}
        }
    }

    fn pair_key(src: NodeId, dst: NodeId) -> u64 {
        (u64::from(src.as_u32()) << 32) | u64::from(dst.as_u32())
    }

    /// Records a message entering the network and returns its flow id.
    #[allow(clippy::too_many_arguments)]
    pub fn msg_send(
        &mut self,
        at: Cycle,
        src: NodeId,
        dst: NodeId,
        line: LineAddr,
        kind: &'static str,
        flits: u64,
        hops: u32,
        deliver_at: Cycle,
    ) -> u64 {
        let flow = self.next_flow;
        self.next_flow += 1;
        self.pair_flows
            .entry(Self::pair_key(src, dst))
            .or_default()
            .push_back(flow);
        if self.span_ctx != 0 {
            self.flow_spans.insert(
                flow,
                FlowCtx {
                    span: self.span_ctx,
                    sent: at,
                    deliver_at,
                },
            );
        }
        self.record(&TraceEvent::MsgSend {
            at,
            src,
            dst,
            line,
            kind,
            flits,
            hops,
            deliver_at,
            flow,
        });
        flow
    }

    /// Records a delivered message being serviced at `dst`. The flow id
    /// is recovered from the per-pair FIFO the matching
    /// [`msg_send`](Tracer::msg_send) pushed onto.
    ///
    /// If the flow was sent on behalf of an operation span, the span's
    /// child phases are emitted here — `net` (send → delivery), `queue`
    /// (delivery → service start, when the server was busy) and the
    /// service interval itself under `phase` — and the owning span id
    /// is returned so the caller can thread it through the message's
    /// processing. Returns 0 for span-less flows.
    #[allow(clippy::too_many_arguments)]
    pub fn msg_service(
        &mut self,
        start: Cycle,
        finish: Cycle,
        src: NodeId,
        dst: NodeId,
        kind: &'static str,
        home: bool,
        phase: &'static str,
    ) -> u64 {
        let flow = self
            .pair_flows
            .get_mut(&Self::pair_key(src, dst))
            .and_then(VecDeque::pop_front)
            .unwrap_or(u64::MAX);
        self.record(&TraceEvent::MsgService {
            start,
            finish,
            dst,
            kind,
            home,
            flow,
        });
        let Some(ctx) = self.flow_spans.remove(&flow) else {
            return 0;
        };
        if ctx.deliver_at > ctx.sent {
            self.record(&TraceEvent::SpanPhase {
                start: ctx.sent,
                end: ctx.deliver_at,
                span: ctx.span,
                node: dst,
                phase: "net",
            });
        }
        if start > ctx.deliver_at {
            self.record(&TraceEvent::SpanPhase {
                start: ctx.deliver_at,
                end: start,
                span: ctx.span,
                node: dst,
                phase: "queue",
            });
        }
        self.record(&TraceEvent::SpanPhase {
            start,
            end: finish,
            span: ctx.span,
            node: dst,
            phase,
        });
        ctx.span
    }

    /// Opens an operation span at issue time and makes it the current
    /// span context, so every message sent until the context changes is
    /// attributed to it. Returns the span id, or 0 when the `span`
    /// category is disabled (the id is then safe to thread around — all
    /// other span methods ignore span 0).
    pub fn span_begin(&mut self, at: Cycle, proc: ProcId, op: &'static str, line: LineAddr) -> u64 {
        if !self.wants(Category::Span) {
            return 0;
        }
        let span = self.next_span;
        self.next_span += 1;
        self.record(&TraceEvent::SpanBegin {
            at,
            span,
            proc,
            op,
            line,
        });
        self.span_ctx = span;
        span
    }

    /// Sets the span on whose behalf subsequently sent messages are
    /// working (0 = none). The machine brackets message processing with
    /// this so protocol-generated traffic — forwards, invalidation
    /// fan-out, replies — inherits the requesting operation's span.
    pub fn set_span_ctx(&mut self, span: u64) {
        self.span_ctx = span;
    }

    /// Closes an operation span. `outcome` is `"ok"` or the failure
    /// kind (`"cas-fail"`, `"sc-fail"`, `"ll-unreserved"`). Ignored for
    /// span 0.
    pub fn span_end(&mut self, at: Cycle, proc: ProcId, span: u64, outcome: &'static str) {
        if span == 0 {
            return;
        }
        self.record(&TraceEvent::SpanEnd {
            at,
            span,
            proc,
            outcome,
        });
    }

    /// Records a retired memory operation.
    pub fn op(
        &mut self,
        proc: ProcId,
        issued: Cycle,
        retired: Cycle,
        label: &'static str,
        local: bool,
        chain: u32,
    ) {
        self.record(&TraceEvent::Op {
            proc,
            issued,
            retired,
            label,
            local,
            chain,
        });
    }

    /// Records a failed atomic attempt the processor will retry.
    pub fn retry(&mut self, at: Cycle, proc: ProcId, label: &'static str) {
        self.record(&TraceEvent::Retry { at, proc, label });
    }

    /// Records an LL/SC reservation event.
    pub fn reservation(&mut self, at: Cycle, node: NodeId, label: &'static str) {
        self.record(&TraceEvent::Reservation { at, node, label });
    }

    /// Records a directory state transition at `node`'s home module.
    pub fn dir_transition(
        &mut self,
        at: Cycle,
        node: NodeId,
        line: LineAddr,
        from: StateLabel,
        to: StateLabel,
    ) {
        self.record(&TraceEvent::DirTransition {
            at,
            node,
            line,
            from,
            to,
        });
    }

    /// Records a cache-line state transition at `node`'s cache.
    pub fn cache_transition(
        &mut self,
        at: Cycle,
        node: NodeId,
        line: LineAddr,
        from: StateLabel,
        to: StateLabel,
    ) {
        self.record(&TraceEvent::CacheTransition {
            at,
            node,
            line,
            from,
            to,
        });
    }

    /// Records a home-queue occupancy sample.
    pub fn queue_depth(&mut self, at: Cycle, node: NodeId, depth: u64) {
        self.record(&TraceEvent::QueueDepth { at, node, depth });
    }

    /// The Perfetto JSON recorded so far, if that sink is attached.
    pub fn perfetto_json(&self) -> Option<String> {
        self.perfetto.as_ref().map(PerfettoSink::json)
    }

    /// The ring sink, if attached.
    pub fn ring(&self) -> Option<&RingSink> {
        self.ring.as_ref()
    }

    /// Per-node metrics accumulated so far.
    pub fn metrics(&self) -> &[NodeMetrics] {
        &self.metrics
    }

    /// Renders the per-node metrics table.
    pub fn render_metrics(&self) -> String {
        render_node_metrics(&self.metrics)
    }

    /// Writes every attached file-backed sink and returns the paths
    /// written.
    ///
    /// File naming is deterministic: unless the spec gave an exact
    /// file path, output goes to
    /// `DIR/trace-{seed:016x}-{contenthash:016x}.{ext}` where the
    /// content hash is a [`StableHasher`] digest of the file's bytes.
    /// Writes go through a temp file and an atomic rename, so two
    /// workers finishing the same job concurrently both land the same
    /// bytes at the same name.
    ///
    /// # Errors
    ///
    /// Propagates I/O errors from directory creation or file writes.
    pub fn finish(&self, seed: u64) -> io::Result<Vec<PathBuf>> {
        let mut written = Vec::new();
        if let Some(p) = &self.perfetto {
            let mut bytes = Vec::new();
            p.write_to(&mut bytes)?;
            written.push(write_deterministic(
                self.perfetto_out.as_deref(),
                seed,
                "json",
                &bytes,
            )?);
        }
        if let Some(r) = &self.ring {
            let mut bytes = Vec::new();
            r.write_to(&mut bytes)?;
            written.push(write_deterministic(
                self.ring_out.as_deref(),
                seed,
                "ring",
                &bytes,
            )?);
        }
        Ok(written)
    }
}

/// Default output directory for content-addressed trace files.
pub const DEFAULT_TRACE_DIR: &str = "traces";

fn content_hash(bytes: &[u8]) -> u64 {
    let mut h = StableHasher::new();
    h.write_bytes(bytes);
    h.finish()
}

/// Resolves the final path for one output file: an explicit `.json`
/// path (or any path with an extension) is used verbatim; anything
/// else is treated as a directory receiving a content-addressed name.
fn resolve_path(out: Option<&Path>, seed: u64, ext: &str, bytes: &[u8]) -> PathBuf {
    match out {
        Some(p) if p.extension().is_some() => p.to_path_buf(),
        other => {
            let dir = other.unwrap_or(Path::new(DEFAULT_TRACE_DIR));
            dir.join(format!(
                "trace-{seed:016x}-{:016x}.{ext}",
                content_hash(bytes)
            ))
        }
    }
}

fn write_deterministic(
    out: Option<&Path>,
    seed: u64,
    ext: &str,
    bytes: &[u8],
) -> io::Result<PathBuf> {
    let path = resolve_path(out, seed, ext, bytes);
    if let Some(dir) = path.parent() {
        if !dir.as_os_str().is_empty() {
            std::fs::create_dir_all(dir)?;
        }
    }
    // Concurrent workers may finish identical jobs at the same time;
    // each writes its own temp file and the rename is atomic, so the
    // final path only ever holds complete content.
    let tmp = path.with_extension(format!(
        "{ext}.tmp.{}.{}",
        std::process::id(),
        TMP_COUNTER.fetch_add(1, Ordering::Relaxed)
    ));
    std::fs::write(&tmp, bytes)?;
    std::fs::rename(&tmp, &path)?;
    Ok(path)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn spec(s: &str) -> TraceSpec {
        TraceSpec::from_spec(s).unwrap()
    }

    #[test]
    fn flows_link_send_to_service_in_fifo_order() {
        let mut t = Tracer::new(&spec("perfetto"), 2);
        let a = NodeId::new(0);
        let b = NodeId::new(1);
        let line = LineAddr::new(5);
        let f0 = t.msg_send(Cycle::new(1), a, b, line, "GetX", 1, 1, Cycle::new(10));
        let f1 = t.msg_send(Cycle::new(2), a, b, line, "GetS", 1, 1, Cycle::new(11));
        assert_eq!((f0, f1), (0, 1));
        t.msg_service(Cycle::new(10), Cycle::new(30), a, b, "GetX", true, "dir");
        t.msg_service(Cycle::new(30), Cycle::new(40), a, b, "GetS", true, "dir");
        let json = t.perfetto_json().unwrap();
        let summary = crate::perfetto::validate(&json).unwrap();
        assert_eq!(summary.flow_starts, 2);
        assert_eq!(summary.flow_finishes, 2);
        // FIFO pairing: first service gets flow 0.
        let s_pos = json.find("\"ph\":\"f\",\"bp\":\"e\",\"id\":0").unwrap();
        let s1_pos = json.find("\"ph\":\"f\",\"bp\":\"e\",\"id\":1").unwrap();
        assert!(s_pos < s1_pos);
    }

    #[test]
    fn metrics_accumulate_per_node() {
        let mut t = Tracer::new(&spec("perfetto"), 4);
        t.msg_send(
            Cycle::new(0),
            NodeId::new(1),
            NodeId::new(2),
            LineAddr::new(0),
            "GetX",
            3,
            1,
            Cycle::new(8),
        );
        t.op(
            ProcId::new(1),
            Cycle::new(0),
            Cycle::new(20),
            "Cas",
            false,
            2,
        );
        t.retry(Cycle::new(20), ProcId::new(1), "cas-fail");
        t.queue_depth(Cycle::new(8), NodeId::new(2), 3);
        let m = t.metrics();
        assert_eq!(m[1].msgs_sent, 1);
        assert_eq!(m[1].flits_sent, 3);
        assert_eq!(m[1].ops_retired, 1);
        assert_eq!(m[1].retries, 1);
        assert_eq!(m[2].queue_depth.max_value(), Some(3));
        assert_eq!(m[0].msgs_sent, 0);
        assert!(t.render_metrics().contains("total"));
    }

    #[test]
    fn spans_attribute_flows_and_emit_phases() {
        let mut t = Tracer::new(&spec("perfetto"), 2);
        let a = NodeId::new(0);
        let b = NodeId::new(1);
        let line = LineAddr::new(9);
        let span = t.span_begin(Cycle::new(5), ProcId::new(0), "Cas", line);
        assert_eq!(span, 1);
        // Sent inside the span context: attributed.
        t.msg_send(Cycle::new(5), a, b, line, "GetX", 2, 1, Cycle::new(15));
        t.set_span_ctx(0);
        // Sent outside any span: not attributed.
        t.msg_send(Cycle::new(6), b, a, line, "Wb", 2, 1, Cycle::new(16));
        // Service starts late (queue wait 15..20), runs 20..34.
        let got = t.msg_service(Cycle::new(20), Cycle::new(34), a, b, "GetX", true, "dir");
        assert_eq!(got, span);
        let got = t.msg_service(
            Cycle::new(16),
            Cycle::new(18),
            b,
            a,
            "Wb",
            false,
            "cachesvc",
        );
        assert_eq!(got, 0);
        t.span_end(Cycle::new(40), ProcId::new(0), span, "ok");
        let json = t.perfetto_json().unwrap();
        crate::perfetto::validate(&json).unwrap();
        for needle in ["\"net\"", "\"queue\"", "\"dir\"", "\"Cas\""] {
            assert!(json.contains(needle), "missing {needle} in {json}");
        }
    }

    #[test]
    fn span_begin_is_free_when_category_disabled() {
        let mut t = Tracer::new(&spec("perfetto,cat:msg"), 2);
        let span = t.span_begin(Cycle::new(0), ProcId::new(0), "Cas", LineAddr::new(1));
        assert_eq!(span, 0);
        t.span_end(Cycle::new(9), ProcId::new(0), span, "ok");
        // No span events reached the sink.
        assert!(!t.perfetto_json().unwrap().contains("span"));
    }

    #[test]
    fn categories_gate_via_wants() {
        let t = Tracer::new(&spec("perfetto,cat:msg"), 2);
        assert!(t.wants(Category::Msg));
        assert!(!t.wants(Category::State));
        assert!(!t.wants(Category::Queue));
    }

    #[test]
    fn finish_writes_content_addressed_files() {
        let dir = std::env::temp_dir().join(format!("dsm-trace-test-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let mut t = Tracer::new(
            &TraceSpec {
                perfetto: true,
                out: Some(dir.clone()),
                ring: Some(64),
                ring_out: Some(dir.join("dump.ring")),
                cats: Categories::all(),
            },
            2,
        );
        t.op(
            ProcId::new(0),
            Cycle::new(0),
            Cycle::new(5),
            "Load",
            true,
            0,
        );
        let paths = t.finish(0xabcd).unwrap();
        assert_eq!(paths.len(), 2);
        let name = paths[0].file_name().unwrap().to_str().unwrap();
        assert!(name.starts_with("trace-000000000000abcd-"));
        assert!(name.ends_with(".json"));
        assert_eq!(paths[1], dir.join("dump.ring"));
        // Same events, same bytes, same name: finishing again is
        // idempotent.
        let again = t.finish(0xabcd).unwrap();
        assert_eq!(paths, again);
        let json = std::fs::read_to_string(&paths[0]).unwrap();
        crate::perfetto::validate(&json).unwrap();
        let _ = std::fs::remove_dir_all(&dir);
    }
}
