//! A sparse-Cholesky-style factorization kernel.
//!
//! **Substitution note (see DESIGN.md):** the paper uses SPLASH
//! Cholesky as its second lock-based application, with measured lock
//! write-run lengths of ≈ 1.6 and mostly uncontended accesses. This
//! kernel reproduces the structure: a task queue of supernodes drained
//! under a TTS lock, where completing a task scatters updates into a
//! few ancestor columns, each protected by its own TTS lock.

use crate::driver::drive_sub;
use dsm_machine::{Action, Machine, MachineBuilder, ProcCtx, Program};
use dsm_protocol::{MemOp, SyncConfig};
use dsm_sim::{Addr, MachineConfig, SimRng};
use dsm_sync::{PrimChoice, ShmAlloc, TtsAcquire, TtsRelease};

/// Parameters of a sparse-factorization run.
#[derive(Debug, Clone, Copy)]
pub struct CholeskyConfig {
    /// Number of supernode tasks.
    pub tasks: u64,
    /// Number of columns (each with a lock and a data array).
    pub columns: u32,
    /// Ancestor columns updated per task.
    pub updates_per_task: u32,
    /// Words per column.
    pub column_words: u64,
    /// Cells scattered into each ancestor column.
    pub cells_per_update: u64,
    /// Primitive family for all locks.
    pub choice: PrimChoice,
    /// Synchronization configuration for lock lines.
    pub sync: SyncConfig,
    /// Seed for the sparsity pattern.
    pub seed: u64,
    /// Local computation (cycles) per task between claiming it and
    /// scattering its updates — the factorization arithmetic that keeps
    /// real Cholesky's locks mostly uncontended.
    pub compute_per_task: u64,
}

impl CholeskyConfig {
    /// Total column-cell increments a complete run performs.
    pub fn expected_total(&self) -> u64 {
        self.tasks * self.updates_per_task as u64 * self.cells_per_update
    }
}

/// Shared-memory layout of a factorization run.
#[derive(Debug, Clone)]
pub struct CholeskyLayout {
    /// The task-queue head (ordinary data protected by `queue_lock`).
    pub head: Addr,
    /// The task-queue lock.
    pub queue_lock: Addr,
    /// Per-column locks.
    pub column_locks: Vec<Addr>,
    /// Per-column data arrays.
    pub columns: Vec<Addr>,
}

impl CholeskyLayout {
    /// Sums all column cells (machine must be quiescent).
    pub fn total(&self, m: &Machine, cfg: &CholeskyConfig) -> u64 {
        self.columns
            .iter()
            .map(|&base| {
                (0..cfg.column_words)
                    .map(|c| m.read_word(base + c * 8))
                    .sum::<u64>()
            })
            .sum()
    }
}

/// The ancestor columns task `t` updates (deterministic sparsity).
fn ancestors_of(cfg: &CholeskyConfig, task: u64) -> Vec<(u32, u64)> {
    let mut rng = SimRng::new(cfg.seed ^ task.wrapping_mul(0xD134_2543_DE82_EF95));
    (0..cfg.updates_per_task)
        .map(|_| {
            let col = rng.range(cfg.columns as u64) as u32;
            let span = cfg.column_words.saturating_sub(cfg.cells_per_update).max(1);
            (col, rng.range(span))
        })
        .collect()
}

struct CholeskyProgram {
    cfg: CholeskyConfig,
    layout: CholeskyLayout,
    acquire: Option<TtsAcquire>,
    release: Option<TtsRelease>,
    ancestors: Vec<(u32, u64)>,
    leg: usize,
    cell: u64,
    state: St,
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum St {
    Stagger,
    ClaimLock,
    ReadHead,
    WaitHead { head: u64 },
    WaitHeadStore { head: u64 },
    QueueUnlock { head: u64 },
    NextLeg,
    CellLoad,
    WaitCellLoad,
    WaitCellStore,
    ColumnUnlock,
    Finished,
}

impl Program for CholeskyProgram {
    fn step(&mut self, ctx: &mut ProcCtx<'_>) -> Action {
        loop {
            if let Some(acq) = &mut self.acquire {
                match drive_sub(acq, ctx) {
                    Some(a) => return a,
                    None => {
                        self.acquire = None;
                        // Which acquire finished is encoded in `state`.
                        match self.state {
                            St::ClaimLock => self.state = St::ReadHead,
                            St::NextLeg => {
                                self.cell = 0;
                                self.state = St::CellLoad;
                            }
                            other => unreachable!("acquire finished in state {other:?}"),
                        }
                    }
                }
            }
            if let Some(rel) = &mut self.release {
                match drive_sub(rel, ctx) {
                    Some(a) => return a,
                    None => {
                        self.release = None;
                        match self.state {
                            St::QueueUnlock { head } => {
                                if head >= self.cfg.tasks {
                                    self.state = St::Finished;
                                } else {
                                    self.ancestors = ancestors_of(&self.cfg, head);
                                    self.leg = 0;
                                    self.state = St::NextLeg;
                                    if self.cfg.compute_per_task > 0 {
                                        // Jitter task durations so claims
                                        // do not arrive in convoys.
                                        let base = self.cfg.compute_per_task / 2;
                                        let jitter =
                                            ctx.rng.range(self.cfg.compute_per_task.max(1));
                                        return Action::Compute(base + jitter);
                                    }
                                    continue;
                                }
                            }
                            St::ColumnUnlock => {
                                self.leg += 1;
                                self.state = St::NextLeg;
                                continue;
                            }
                            other => unreachable!("release finished in state {other:?}"),
                        }
                    }
                }
            }
            match self.state {
                St::Stagger => {
                    self.state = St::ClaimLock;
                    // Desynchronize the initial burst of queue claims.
                    if self.cfg.compute_per_task > 0 {
                        return Action::Compute(ctx.rng.range(self.cfg.compute_per_task.max(1)));
                    }
                }
                St::ClaimLock => {
                    self.acquire = Some(TtsAcquire::new(self.layout.queue_lock, self.cfg.choice));
                }
                St::ReadHead => {
                    self.state = St::WaitHead { head: 0 };
                    return Action::Op(MemOp::Load {
                        addr: self.layout.head,
                    });
                }
                St::WaitHead { .. } => {
                    let head = ctx
                        .last
                        .take()
                        .expect("head read")
                        .value()
                        .expect("load value");
                    self.state = St::WaitHeadStore { head };
                    return Action::Op(MemOp::Store {
                        addr: self.layout.head,
                        value: head + 1,
                    });
                }
                St::WaitHeadStore { head } => {
                    ctx.last.take();
                    self.state = St::QueueUnlock { head };
                    self.release = Some(TtsRelease::new(self.layout.queue_lock, self.cfg.choice));
                }
                St::QueueUnlock { .. } => {
                    unreachable!("release fragment drives this state");
                }
                St::NextLeg => {
                    if self.leg >= self.ancestors.len() {
                        self.state = St::ClaimLock;
                        continue;
                    }
                    let (col, _) = self.ancestors[self.leg];
                    self.acquire = Some(TtsAcquire::new(
                        self.layout.column_locks[col as usize],
                        self.cfg.choice,
                    ));
                }
                St::CellLoad => {
                    if self.cell >= self.cfg.cells_per_update {
                        let (col, _) = self.ancestors[self.leg];
                        self.release = Some(TtsRelease::new(
                            self.layout.column_locks[col as usize],
                            self.cfg.choice,
                        ));
                        self.state = St::ColumnUnlock;
                        continue;
                    }
                    let (col, first) = self.ancestors[self.leg];
                    let addr = self.layout.columns[col as usize] + (first + self.cell) * 8;
                    self.state = St::WaitCellLoad;
                    return Action::Op(MemOp::Load { addr });
                }
                St::WaitCellLoad => {
                    let v = ctx
                        .last
                        .take()
                        .expect("cell load")
                        .value()
                        .expect("load value");
                    let (col, first) = self.ancestors[self.leg];
                    let addr = self.layout.columns[col as usize] + (first + self.cell) * 8;
                    self.state = St::WaitCellStore;
                    return Action::Op(MemOp::Store { addr, value: v + 1 });
                }
                St::WaitCellStore => {
                    ctx.last.take();
                    self.cell += 1;
                    self.state = St::CellLoad;
                }
                St::ColumnUnlock => {
                    unreachable!("release fragment drives this state");
                }
                St::Finished => return Action::Done,
            }
        }
    }
}

/// Builds a ready-to-run factorization machine.
pub fn build_cholesky(mcfg: MachineConfig, cfg: &CholeskyConfig) -> (Machine, CholeskyLayout) {
    assert!(cfg.columns > 0, "need at least one column");
    assert!(
        cfg.cells_per_update <= cfg.column_words,
        "update larger than a column"
    );
    let procs = mcfg.nodes;
    let mut alloc = ShmAlloc::new(mcfg.params.line_size, procs);
    let head = alloc.word();
    let queue_lock = alloc.word();
    let column_locks: Vec<Addr> = (0..cfg.columns).map(|_| alloc.word()).collect();
    let columns: Vec<Addr> = (0..cfg.columns)
        .map(|_| alloc.array(cfg.column_words))
        .collect();
    let layout = CholeskyLayout {
        head,
        queue_lock,
        column_locks: column_locks.clone(),
        columns,
    };

    let mut b = MachineBuilder::new(mcfg);
    b.register_sync(queue_lock, cfg.sync);
    for &l in &column_locks {
        b.register_sync(l, cfg.sync);
    }
    for _ in 0..procs {
        b.add_program(CholeskyProgram {
            cfg: *cfg,
            layout: layout.clone(),
            acquire: None,
            release: None,
            ancestors: Vec::new(),
            leg: 0,
            cell: 0,
            state: St::Stagger,
        });
    }
    (b.build(), layout)
}

#[cfg(test)]
mod tests {
    use super::*;
    use dsm_protocol::SyncPolicy;
    use dsm_sim::Cycle;
    use dsm_sync::Primitive;

    const LIMIT: Cycle = Cycle::new(500_000_000);

    fn cfg(prim: Primitive, policy: SyncPolicy) -> CholeskyConfig {
        CholeskyConfig {
            tasks: 32,
            columns: 12,
            updates_per_task: 2,
            column_words: 16,
            cells_per_update: 4,
            choice: PrimChoice::plain(prim),
            sync: SyncConfig {
                policy,
                ..Default::default()
            },
            seed: 11,
            compute_per_task: 0,
        }
    }

    fn run_and_check(prim: Primitive, policy: SyncPolicy, nodes: u32) -> Machine {
        let c = cfg(prim, policy);
        let (mut m, layout) = build_cholesky(MachineConfig::with_nodes(nodes), &c);
        m.run(LIMIT).expect("cholesky completes");
        m.validate_coherence().unwrap();
        assert_eq!(layout.total(&m, &c), c.expected_total(), "{prim}/{policy}");
        // Every processor over-claims exactly once before exiting.
        assert_eq!(m.read_word(layout.head), c.tasks + nodes as u64);
        m
    }

    #[test]
    fn exact_under_each_primitive() {
        for prim in Primitive::ALL {
            run_and_check(prim, SyncPolicy::Inv, 8);
        }
    }

    #[test]
    fn exact_under_unc_and_upd() {
        run_and_check(Primitive::Cas, SyncPolicy::Unc, 4);
        run_and_check(Primitive::Cas, SyncPolicy::Upd, 4);
    }

    #[test]
    fn lock_write_runs_match_cholesky_profile() {
        // The paper measured write-run ≈ 1.6 for Cholesky's locks:
        // acquire+release by one processor, usually without immediate
        // re-acquisition.
        let m = run_and_check(Primitive::FetchPhi, SyncPolicy::Inv, 8);
        let runs = m.stats().write_runs.completed().mean();
        assert!(
            (1.0..=2.6).contains(&runs),
            "expected write-run near 1.6, measured {runs}"
        );
    }
}
