//! Glue between [`SubMachine`] fragments and machine
//! [`Program`](dsm_machine::Program)s.

use dsm_machine::{Action, ProcCtx};
use dsm_sync::{Step, SubMachine};

/// Runs one [`SubMachine`] at a time inside a
/// [`Program`](dsm_machine::Program).
///
/// Typical program shape:
///
/// ```ignore
/// fn step(&mut self, ctx: &mut ProcCtx<'_>) -> Action {
///     loop {
///         if let Some(action) = self.runner.drive(ctx) {
///             return action; // fragment still running
///         }
///         match self.phase {
///             // ...decide what to do next; maybe self.runner.start(...)
///         }
///     }
/// }
/// ```
#[derive(Default)]
pub struct SubRunner {
    active: Option<Box<dyn SubMachine>>,
}

impl std::fmt::Debug for SubRunner {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("SubRunner")
            .field("active", &self.active.is_some())
            .finish()
    }
}

impl SubRunner {
    /// Creates an idle runner.
    pub fn new() -> Self {
        Self::default()
    }

    /// Installs a fragment to run. Any previous fragment is discarded.
    pub fn start<M: SubMachine + 'static>(&mut self, fragment: M) {
        self.active = Some(Box::new(fragment));
    }

    /// `true` if a fragment is running.
    pub fn running(&self) -> bool {
        self.active.is_some()
    }

    /// Advances the active fragment. Returns the action to take, or
    /// `None` when no fragment is active (the caller decides what
    /// happens next).
    pub fn drive(&mut self, ctx: &mut ProcCtx<'_>) -> Option<Action> {
        let m = self.active.as_mut()?;
        match m.step(ctx.last.take(), ctx.rng) {
            Step::Op(op) => Some(Action::Op(op)),
            Step::Compute(c) => Some(Action::Compute(c)),
            Step::Done => {
                self.active = None;
                None
            }
        }
    }
}

/// Advances a *typed* fragment held directly by a program (so its
/// fields remain readable after completion, unlike a boxed
/// [`SubRunner`] fragment). Returns `None` once the fragment is done.
pub fn drive_sub<M: SubMachine>(fragment: &mut M, ctx: &mut ProcCtx<'_>) -> Option<Action> {
    match fragment.step(ctx.last.take(), ctx.rng) {
        Step::Op(op) => Some(Action::Op(op)),
        Step::Compute(c) => Some(Action::Compute(c)),
        Step::Done => None,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dsm_protocol::{MemOp, OpResult};
    use dsm_sim::{Addr, Cycle, ProcId, SimRng};

    struct OneOp(bool);
    impl SubMachine for OneOp {
        fn step(&mut self, _last: Option<OpResult>, _rng: &mut SimRng) -> Step {
            if self.0 {
                Step::Done
            } else {
                self.0 = true;
                Step::Op(MemOp::Load {
                    addr: Addr::new(32),
                })
            }
        }
    }

    #[test]
    fn drives_to_completion() {
        let mut r = SubRunner::new();
        assert!(!r.running());
        r.start(OneOp(false));
        assert!(r.running());
        let mut rng = SimRng::new(1);
        let mut ctx = ProcCtx {
            proc: ProcId::new(0),
            now: Cycle::ZERO,
            last: None,
            last_chain: None,
            rng: &mut rng,
        };
        let a = r.drive(&mut ctx);
        assert!(matches!(a, Some(Action::Op(_))));
        ctx.last = Some(OpResult::Loaded {
            value: 0,
            serial: None,
            reserved: false,
        });
        assert!(r.drive(&mut ctx).is_none());
        assert!(!r.running());
        // Idle runner yields None immediately.
        assert!(r.drive(&mut ctx).is_none());
    }
}
