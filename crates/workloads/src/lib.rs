//! The paper's applications, real and synthetic.
//!
//! * [`synthetic`] — the three synthetic counter applications
//!   (Figures 3, 4, 5): a lock-free counter, a counter protected by a
//!   TTS lock with bounded exponential backoff, and a counter protected
//!   by an MCS lock, each parameterized by contention level `c` and
//!   write-run length `a`;
//! * [`tclosure`] — the Transitive Closure application of Figure 1
//!   (lock-free self-scheduling counter + scalable tree barrier);
//! * [`wire_route`] — a LocusRoute-analog router kernel (see the
//!   substitution note in the module docs and DESIGN.md);
//! * [`cholesky`] — a sparse-Cholesky-analog factorization kernel;
//! * [`lockfree`] — lock-free structure scenarios (queue hammering,
//!   set churn, map read/write mixes) with cycle-stamped history
//!   capture for the linearizability oracle;
//! * [`driver`] / [`locked`] — program-composition helpers.

#![warn(missing_docs)]

pub mod cholesky;
pub mod driver;
pub mod locked;
pub mod lockfree;
pub mod synthetic;
pub mod tclosure;
pub mod wire_route;

pub use cholesky::{build_cholesky, CholeskyConfig, CholeskyLayout};
pub use driver::{drive_sub, SubRunner};
pub use locked::{LockKind, LockedIncr};
pub use lockfree::{
    build_lockfree, check_invariants, queue_residue, set_chains, LfConfig, LfLayout, LfRun,
    LfStructure,
};
pub use synthetic::{build_synthetic, CounterKind, SyntheticConfig, SyntheticLayout};
pub use tclosure::{build_tclosure, sequential_closure, TcConfig, TcLayout};
pub use wire_route::{build_wire_route, WireRouteConfig, WireRouteLayout};
