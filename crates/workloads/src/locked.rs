//! Lock-protected counter increments (the updates of Figures 4 and 5).
//!
//! The counter itself is ordinary shared data; only the *lock word* is
//! a synchronization variable. An update is: acquire → load counter →
//! store counter+1 → release.

use dsm_protocol::{MemOp, OpResult};
use dsm_sim::{Addr, SimRng};
use dsm_sync::{
    McsAcquire, McsLock, McsQnode, McsRelease, PrimChoice, Step, SubMachine, TtsAcquire, TtsRelease,
};

/// Which lock protects the counter.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum LockKind {
    /// Test-and-test-and-set with bounded exponential backoff.
    Tts,
    /// The MCS queue lock.
    Mcs,
}

enum LockPhase {
    AcquireTts(TtsAcquire),
    AcquireMcs(McsAcquire),
    LoadCounter,
    WaitLoad,
    WaitStore,
    ReleaseTts(TtsRelease),
    ReleaseMcs(McsRelease),
}

/// One lock-protected increment of an ordinary counter word.
pub struct LockedIncr {
    counter: Addr,
    lock: Addr,
    kind: LockKind,
    choice: PrimChoice,
    qnode: McsQnode,
    phase: LockPhase,
}

impl std::fmt::Debug for LockedIncr {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("LockedIncr")
            .field("counter", &self.counter)
            .field("lock", &self.lock)
            .field("kind", &self.kind)
            .finish_non_exhaustive()
    }
}

impl LockedIncr {
    /// Creates an increment of `counter` protected by the lock at
    /// `lock`. `qnode` is this processor's MCS queue node (unused for
    /// TTS, but required so callers can treat both kinds uniformly).
    pub fn new(
        counter: Addr,
        lock: Addr,
        kind: LockKind,
        choice: PrimChoice,
        qnode: McsQnode,
    ) -> Self {
        let phase = match kind {
            LockKind::Tts => LockPhase::AcquireTts(TtsAcquire::new(lock, choice)),
            LockKind::Mcs => {
                LockPhase::AcquireMcs(McsAcquire::new(McsLock { tail: lock }, qnode, choice))
            }
        };
        LockedIncr {
            counter,
            lock,
            kind,
            choice,
            qnode,
            phase,
        }
    }
}

impl SubMachine for LockedIncr {
    fn step(&mut self, mut last: Option<OpResult>, rng: &mut SimRng) -> Step {
        loop {
            match &mut self.phase {
                LockPhase::AcquireTts(a) => match a.step(last.take(), rng) {
                    Step::Done => self.phase = LockPhase::LoadCounter,
                    other => return other,
                },
                LockPhase::AcquireMcs(a) => match a.step(last.take(), rng) {
                    Step::Done => self.phase = LockPhase::LoadCounter,
                    other => return other,
                },
                LockPhase::LoadCounter => {
                    self.phase = LockPhase::WaitLoad;
                    return Step::Op(MemOp::Load { addr: self.counter });
                }
                LockPhase::WaitLoad => {
                    let v = last
                        .take()
                        .expect("counter load")
                        .value()
                        .expect("load value");
                    self.phase = LockPhase::WaitStore;
                    return Step::Op(MemOp::Store {
                        addr: self.counter,
                        value: v + 1,
                    });
                }
                LockPhase::WaitStore => {
                    last.take();
                    self.phase = match self.kind {
                        LockKind::Tts => {
                            LockPhase::ReleaseTts(TtsRelease::new(self.lock, self.choice))
                        }
                        LockKind::Mcs => LockPhase::ReleaseMcs(McsRelease::new(
                            McsLock { tail: self.lock },
                            self.qnode,
                            self.choice,
                        )),
                    };
                }
                LockPhase::ReleaseTts(r) => match r.step(last.take(), rng) {
                    Step::Done => return Step::Done,
                    other => return other,
                },
                LockPhase::ReleaseMcs(r) => match r.step(last.take(), rng) {
                    Step::Done => return Step::Done,
                    other => return other,
                },
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dsm_sync::{drive_sync, Primitive};
    use std::collections::HashMap;

    #[derive(Default)]
    struct Mem {
        words: HashMap<u64, u64>,
        reserved: bool,
    }

    impl Mem {
        fn get(&self, a: Addr) -> u64 {
            self.words.get(&a.as_u64()).copied().unwrap_or(0)
        }
        fn eval(&mut self, op: MemOp) -> OpResult {
            match op {
                MemOp::Load { addr } | MemOp::LoadExclusive { addr } => OpResult::Loaded {
                    value: self.get(addr),
                    serial: None,
                    reserved: false,
                },
                MemOp::LoadLinked { addr } => {
                    self.reserved = true;
                    OpResult::Loaded {
                        value: self.get(addr),
                        serial: None,
                        reserved: true,
                    }
                }
                MemOp::Store { addr, value } => {
                    self.words.insert(addr.as_u64(), value);
                    OpResult::Stored
                }
                MemOp::FetchPhi { addr, op } => {
                    let old = self.get(addr);
                    self.words.insert(addr.as_u64(), op.apply(old));
                    OpResult::Fetched { old }
                }
                MemOp::Cas {
                    addr,
                    expected,
                    new,
                } => {
                    let observed = self.get(addr);
                    if observed == expected {
                        self.words.insert(addr.as_u64(), new);
                        OpResult::CasDone {
                            success: true,
                            observed,
                        }
                    } else {
                        OpResult::CasDone {
                            success: false,
                            observed,
                        }
                    }
                }
                MemOp::StoreConditional { addr, value, .. } => {
                    if self.reserved {
                        self.reserved = false;
                        self.words.insert(addr.as_u64(), value);
                        OpResult::ScDone { success: true }
                    } else {
                        OpResult::ScDone { success: false }
                    }
                }
                MemOp::DropCopy { .. } => OpResult::Stored,
            }
        }
    }

    const COUNTER: Addr = Addr::new(0x20);
    const LOCK: Addr = Addr::new(0x40);

    #[test]
    fn tts_protected_increment() {
        for prim in Primitive::ALL {
            let mut mem = Mem::default();
            let mut rng = SimRng::new(1);
            let mut incr = LockedIncr::new(
                COUNTER,
                LOCK,
                LockKind::Tts,
                PrimChoice::plain(prim),
                McsQnode::at(Addr::new(0x1000)),
            );
            drive_sync(&mut incr, &mut rng, 1000, |op| mem.eval(op));
            assert_eq!(mem.get(COUNTER), 1, "{prim}");
            assert_eq!(mem.get(LOCK), 0, "{prim}: lock released");
        }
    }

    #[test]
    fn mcs_protected_increment() {
        for prim in Primitive::ALL {
            let mut mem = Mem::default();
            let mut rng = SimRng::new(1);
            let mut incr = LockedIncr::new(
                COUNTER,
                LOCK,
                LockKind::Mcs,
                PrimChoice::plain(prim),
                McsQnode::at(Addr::new(0x1000)),
            );
            drive_sync(&mut incr, &mut rng, 1000, |op| mem.eval(op));
            assert_eq!(mem.get(COUNTER), 1, "{prim}");
            assert_eq!(mem.get(LOCK), 0, "{prim}: queue empty after release");
        }
    }

    #[test]
    fn repeated_increments_accumulate() {
        let mut mem = Mem::default();
        let mut rng = SimRng::new(1);
        for _ in 0..5 {
            let mut incr = LockedIncr::new(
                COUNTER,
                LOCK,
                LockKind::Tts,
                PrimChoice::plain(Primitive::Cas),
                McsQnode::at(Addr::new(0x1000)),
            );
            drive_sync(&mut incr, &mut rng, 1000, |op| mem.eval(op));
        }
        assert_eq!(mem.get(COUNTER), 5);
    }
}
