//! Lock-free data-structure benchmark scenarios with history capture.
//!
//! Three paper-style workloads over the structures in
//! [`dsm_sync::lockfree`], each sweepable across link primitive ×
//! coherence policy like the counter figures:
//!
//! * [`LfStructure::Queue`] — producer/consumer hammering of the
//!   Michael–Scott queue: every processor interleaves enqueues of
//!   tagged values with dequeues;
//! * [`LfStructure::List`] — set-membership churn on a single Harris
//!   list: random insert/remove/contains over a small key space;
//! * [`LfStructure::Map`] — read/write mixes on the bucket hash map
//!   (a multi-bucket version of the list workload).
//!
//! Every operation is recorded into a [`History`] — invocation and
//! response stamped with simulated cycles — so the same run that
//! produces a throughput number can be fed to the linearizability
//! checker in [`dsm_trace::linearize`]. Recording happens entirely on
//! the host side (an `Arc<Mutex<…>>` shared with the programs) and
//! never issues memory operations, so it cannot perturb timing:
//! benchmark results are identical with the history kept or thrown
//! away.

use dsm_machine::{Action, Machine, MachineBuilder, ProcCtx, Program};
use dsm_protocol::SyncConfig;
use dsm_sim::{Addr, MachineConfig};
use dsm_sync::lockfree::{clear_mark, decode, is_marked};
use dsm_sync::{
    BucketMap, LinkPrim, MapContains, MapInsert, MapRemove, MsDequeue, MsEnqueue, MsQueue,
    ShmAlloc, Step, SubMachine,
};
use dsm_trace::{HistEvent, HistOp, HistRet, History};
use std::collections::HashMap;
use std::sync::{Arc, Mutex};

/// Which lock-free structure a run exercises.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum LfStructure {
    /// Michael–Scott MPMC queue (producer/consumer hammering).
    Queue,
    /// Harris list as a sorted set (membership churn).
    List,
    /// Fixed-bucket hash map (read/write mix across buckets).
    Map,
}

impl LfStructure {
    /// All structures, in table order.
    pub const ALL: [LfStructure; 3] = [LfStructure::Queue, LfStructure::List, LfStructure::Map];

    /// Human-readable name.
    pub fn label(self) -> &'static str {
        match self {
            LfStructure::Queue => "MS-queue",
            LfStructure::List => "Harris-list",
            LfStructure::Map => "bucket-map",
        }
    }
}

/// Parameters of one lock-free structure run.
#[derive(Debug, Clone, Copy)]
pub struct LfConfig {
    /// Which structure.
    pub structure: LfStructure,
    /// Link-word primitive discipline.
    pub prim: LinkPrim,
    /// Synchronization-line configuration for every structure line.
    pub sync: SyncConfig,
    /// Operations per processor (queue: this many enqueues *and* this
    /// many dequeues; list/map: this many mixed ops).
    pub ops_per_proc: u32,
    /// Key space for list/map keys (`0..key_space`).
    pub key_space: u64,
    /// Bucket count for [`LfStructure::Map`] (the list always uses 1).
    pub buckets: u32,
}

impl LfConfig {
    fn bucket_count(&self) -> u32 {
        match self.structure {
            LfStructure::Map => self.buckets.max(1),
            _ => 1,
        }
    }
}

/// The shared-memory layout of a lock-free run (exposed so tests and
/// the experiment harness can walk the final structure).
#[derive(Debug, Clone)]
pub struct LfLayout {
    /// The queue pointers, when the structure is the queue.
    pub queue: Option<MsQueue>,
    /// Bucket heads (one for the list), when the structure is a set.
    pub map: Option<BucketMap>,
    /// The link primitive (needed to decode raw link words).
    pub prim: LinkPrim,
    /// Per-processor fresh-node pools.
    pub pools: Vec<Vec<Addr>>,
}

/// Everything a lock-free run hands back besides the machine: the
/// recorded history and the memory layout.
#[derive(Debug, Clone)]
pub struct LfRun {
    /// The complete operation history (populated while the machine
    /// runs; complete once `Machine::run` returns).
    pub history: Arc<Mutex<History>>,
    /// The memory layout.
    pub layout: LfLayout,
}

/// Tags a queue value with its producer: `(proc + 1) << 32 | seq`.
/// Unique across the run, and the producer/sequence split is what the
/// per-producer FIFO invariant checks.
pub fn queue_value(proc: u32, seq: u64) -> u64 {
    ((proc as u64 + 1) << 32) | seq
}

/// The producer of a [`queue_value`].
pub fn value_producer(v: u64) -> u32 {
    (v >> 32) as u32 - 1
}

/// The per-producer sequence number of a [`queue_value`].
pub fn value_seq(v: u64) -> u64 {
    v & 0xFFFF_FFFF
}

enum QAct {
    Enq(MsEnqueue, u64),
    Deq(MsDequeue),
}

struct QueueProg {
    q: MsQueue,
    prim: LinkPrim,
    pool: Vec<Addr>,
    proc: u32,
    enq_left: u32,
    deq_left: u32,
    next_node: usize,
    seq: u64,
    active: Option<(QAct, u64)>,
    hist: Arc<Mutex<History>>,
}

impl Program for QueueProg {
    fn step(&mut self, ctx: &mut ProcCtx<'_>) -> Action {
        loop {
            if let Some((act, invoked)) = &mut self.active {
                let step = match act {
                    QAct::Enq(m, _) => m.step(ctx.last.take(), ctx.rng),
                    QAct::Deq(m) => m.step(ctx.last.take(), ctx.rng),
                };
                match step {
                    Step::Op(op) => return Action::Op(op),
                    Step::Compute(c) => return Action::Compute(c),
                    Step::Done => {
                        let (op, ret) = match act {
                            QAct::Enq(_, v) => (HistOp::Enqueue(*v), HistRet::Ok),
                            QAct::Deq(m) => (
                                HistOp::Dequeue,
                                match m.dequeued() {
                                    Some(v) => HistRet::Value(v),
                                    None => HistRet::Empty,
                                },
                            ),
                        };
                        self.hist.lock().unwrap().push(HistEvent {
                            proc: self.proc,
                            invoked: *invoked,
                            responded: ctx.now.as_u64(),
                            op,
                            ret,
                        });
                        self.active = None;
                    }
                }
                continue;
            }
            if self.enq_left == 0 && self.deq_left == 0 {
                return Action::Done;
            }
            let enqueue = self.enq_left > 0 && (self.deq_left == 0 || ctx.rng.range(2) == 0);
            let invoked = ctx.now.as_u64();
            let act = if enqueue {
                self.enq_left -= 1;
                let node = self.pool[self.next_node];
                self.next_node += 1;
                let v = queue_value(self.proc, self.seq);
                self.seq += 1;
                QAct::Enq(MsEnqueue::new(self.q, node, v, self.prim), v)
            } else {
                self.deq_left -= 1;
                QAct::Deq(MsDequeue::new(self.q, self.prim))
            };
            self.active = Some((act, invoked));
        }
    }
}

enum SAct {
    Ins(MapInsert, u64),
    Rem(MapRemove, u64),
    Con(MapContains, u64),
}

struct SetProg {
    map: BucketMap,
    prim: LinkPrim,
    pool: Vec<Addr>,
    proc: u32,
    ops_left: u32,
    next_node: usize,
    key_space: u64,
    active: Option<(SAct, u64)>,
    hist: Arc<Mutex<History>>,
}

impl Program for SetProg {
    fn step(&mut self, ctx: &mut ProcCtx<'_>) -> Action {
        loop {
            if let Some((act, invoked)) = &mut self.active {
                let step = match act {
                    SAct::Ins(m, _) => m.step(ctx.last.take(), ctx.rng),
                    SAct::Rem(m, _) => m.step(ctx.last.take(), ctx.rng),
                    SAct::Con(m, _) => m.step(ctx.last.take(), ctx.rng),
                };
                match step {
                    Step::Op(op) => return Action::Op(op),
                    Step::Compute(c) => return Action::Compute(c),
                    Step::Done => {
                        let (op, ret) = match act {
                            SAct::Ins(m, k) => {
                                let added = m.inserted().expect("finished");
                                if added {
                                    // The node is published; the next
                                    // insert needs a fresh one.
                                    self.next_node += 1;
                                }
                                (HistOp::Insert(*k), HistRet::Bool(added))
                            }
                            SAct::Rem(m, k) => (
                                HistOp::Remove(*k),
                                HistRet::Bool(m.removed().expect("finished")),
                            ),
                            SAct::Con(m, k) => (
                                HistOp::Contains(*k),
                                HistRet::Bool(m.found().expect("finished")),
                            ),
                        };
                        self.hist.lock().unwrap().push(HistEvent {
                            proc: self.proc,
                            invoked: *invoked,
                            responded: ctx.now.as_u64(),
                            op,
                            ret,
                        });
                        self.active = None;
                    }
                }
                continue;
            }
            if self.ops_left == 0 {
                return Action::Done;
            }
            self.ops_left -= 1;
            let invoked = ctx.now.as_u64();
            let key = ctx.rng.range(self.key_space);
            let have_node = self.next_node < self.pool.len();
            let act = match ctx.rng.range(3) {
                // Out of fresh nodes: fall back to a read.
                0 if have_node => SAct::Ins(
                    MapInsert::new(&self.map, self.pool[self.next_node], key, self.prim),
                    key,
                ),
                1 => SAct::Rem(MapRemove::new(&self.map, key, self.prim), key),
                _ => SAct::Con(MapContains::new(&self.map, key, self.prim), key),
            };
            self.active = Some((act, invoked));
        }
    }
}

/// Builds a ready-to-run machine for a lock-free structure run.
///
/// Returns the machine and an [`LfRun`] holding the (shared, still
/// filling) history plus the layout. The history is complete once
/// `Machine::run` returns.
pub fn build_lockfree(mcfg: MachineConfig, cfg: &LfConfig) -> (Machine, LfRun) {
    assert!(cfg.ops_per_proc > 0, "need at least one op per processor");
    assert!(cfg.key_space > 0, "key space must be non-empty");
    let procs = mcfg.nodes;
    let mut alloc = ShmAlloc::new(mcfg.params.line_size, procs);
    let history: Arc<Mutex<History>> = Arc::default();

    // Per-processor fresh-node pools (nodes are never recycled — see
    // the dsm_sync::lockfree module docs).
    let mut structure_words: Vec<Addr> = Vec::new();
    let (queue, map, dummy) = match cfg.structure {
        LfStructure::Queue => {
            let q = MsQueue {
                head: alloc.word(),
                tail: alloc.word(),
            };
            let dummy = alloc.array(2);
            structure_words.extend([q.head, q.tail, dummy]);
            (Some(q), None, Some(dummy))
        }
        LfStructure::List | LfStructure::Map => {
            let buckets: Vec<Addr> = (0..cfg.bucket_count()).map(|_| alloc.word()).collect();
            structure_words.extend(buckets.iter().copied());
            (None, Some(BucketMap { buckets }), None)
        }
    };
    let pools: Vec<Vec<Addr>> = (0..procs)
        .map(|_| (0..cfg.ops_per_proc).map(|_| alloc.array(2)).collect())
        .collect();

    let mut b = MachineBuilder::new(mcfg);
    // Every line the structure CASes or SCs must carry the benchmarked
    // sync configuration: the anchor words and all node lines.
    for &w in structure_words.iter().chain(pools.iter().flatten()) {
        b.register_sync(w, cfg.sync);
    }
    if let (Some(q), Some(d)) = (queue, dummy) {
        // Head and tail start at the dummy node (tag 0 under the
        // emulation — tags only ever grow from here).
        b.init_word(q.head, d.as_u64());
        b.init_word(q.tail, d.as_u64());
    }

    for p in 0..procs {
        let pool = pools[p as usize].clone();
        let hist = Arc::clone(&history);
        match cfg.structure {
            LfStructure::Queue => {
                b.add_program(QueueProg {
                    q: queue.expect("queue layout"),
                    prim: cfg.prim,
                    pool,
                    proc: p,
                    enq_left: cfg.ops_per_proc,
                    deq_left: cfg.ops_per_proc,
                    next_node: 0,
                    seq: 0,
                    active: None,
                    hist,
                });
            }
            LfStructure::List | LfStructure::Map => {
                b.add_program(SetProg {
                    map: map.clone().expect("map layout"),
                    prim: cfg.prim,
                    pool,
                    proc: p,
                    ops_left: cfg.ops_per_proc,
                    next_node: 0,
                    key_space: cfg.key_space,
                    active: None,
                    hist,
                });
            }
        }
    }

    let layout = LfLayout {
        queue,
        map,
        prim: cfg.prim,
        pools,
    };
    (b.build(), LfRun { history, layout })
}

/// Walks the final queue chain (excluding the current dummy),
/// returning the residual values in FIFO order.
///
/// # Panics
///
/// Panics if the layout is not a queue's or the chain is cyclic.
pub fn queue_residue(m: &Machine, layout: &LfLayout) -> Vec<u64> {
    let q = layout.queue.expect("queue layout");
    let total: usize = layout.pools.iter().map(Vec::len).sum();
    let mut out = Vec::new();
    // The head points at the dummy; values live in its successors.
    let mut cur = decode(layout.prim, m.read_word(q.head));
    cur = decode(layout.prim, m.read_word(Addr::new(cur)));
    while cur != 0 {
        out.push(m.read_word(Addr::new(cur + 8)));
        assert!(out.len() <= total, "queue chain has a cycle");
        cur = decode(layout.prim, m.read_word(Addr::new(cur)));
    }
    out
}

/// Walks the final set chains, returning `(key, marked)` per node in
/// physical order, one vector per bucket.
///
/// # Panics
///
/// Panics if the layout is not a set's or a chain is cyclic.
pub fn set_chains(m: &Machine, layout: &LfLayout) -> Vec<Vec<(u64, bool)>> {
    let map = layout.map.as_ref().expect("set layout");
    let total: usize = layout.pools.iter().map(Vec::len).sum();
    map.buckets
        .iter()
        .map(|&head| {
            let mut out = Vec::new();
            let mut cur = decode(layout.prim, m.read_word(head));
            while cur != 0 {
                let cw = decode(layout.prim, m.read_word(Addr::new(cur)));
                out.push((m.read_word(Addr::new(cur + 8)), is_marked(cw)));
                assert!(out.len() <= total, "set chain has a cycle");
                cur = clear_mark(cw);
            }
            out
        })
        .collect()
}

/// Structure-specific end-state invariants, checked directly against
/// memory and the recorded history (no linearization search — this is
/// the cheap sanity layer the benchmark harness runs on every job).
///
/// * queue — value conservation (every enqueued value is dequeued
///   exactly once or still in the chain, and nothing else is), FIFO
///   per producer (each producer's dequeued values form a prefix of
///   its enqueue sequence; its residual values remain in order);
/// * list/map — every chain strictly sorted, every key in its home
///   bucket, and key conservation (a key is live in memory iff its
///   successful inserts outnumber its successful removes).
pub fn check_invariants(m: &Machine, cfg: &LfConfig, run: &LfRun) -> Result<(), String> {
    let hist = run.history.lock().unwrap();
    match cfg.structure {
        LfStructure::Queue => {
            let mut enq: HashMap<u64, i64> = HashMap::new();
            for e in hist.events() {
                match (e.op, e.ret) {
                    (HistOp::Enqueue(v), _) => *enq.entry(v).or_default() += 1,
                    (HistOp::Dequeue, HistRet::Value(v)) => *enq.entry(v).or_default() -= 1,
                    (HistOp::Dequeue, HistRet::Empty) => {}
                    other => return Err(format!("non-queue event {other:?}")),
                }
            }
            let residue = queue_residue(m, &run.layout);
            for &v in &residue {
                *enq.entry(v).or_default() -= 1;
            }
            if let Some((&v, &c)) = enq.iter().find(|&(_, &c)| c != 0) {
                return Err(format!(
                    "value {v:#x} enqueued-minus-consumed {c} times (lost or duplicated)"
                ));
            }
            // FIFO per producer over the residue...
            let mut last_seq: HashMap<u32, u64> = HashMap::new();
            for &v in &residue {
                let p = value_producer(v);
                if let Some(&prev) = last_seq.get(&p) {
                    if value_seq(v) <= prev {
                        return Err(format!(
                            "producer {p}'s residual values out of order at seq {}",
                            value_seq(v)
                        ));
                    }
                }
                last_seq.insert(p, value_seq(v));
            }
            // ...and the dequeued part: each producer's consumed
            // values must be exactly the prefix its residue leaves.
            let mut min_residue: HashMap<u32, u64> = HashMap::new();
            for &v in &residue {
                let e = min_residue.entry(value_producer(v)).or_insert(u64::MAX);
                *e = (*e).min(value_seq(v));
            }
            for e in hist.events() {
                if let (HistOp::Dequeue, HistRet::Value(v)) = (e.op, e.ret) {
                    let p = value_producer(v);
                    if value_seq(v) >= *min_residue.get(&p).unwrap_or(&u64::MAX) {
                        return Err(format!(
                            "producer {p}: seq {} dequeued while an earlier value \
                             remained queued (per-producer FIFO broken)",
                            value_seq(v)
                        ));
                    }
                }
            }
            Ok(())
        }
        LfStructure::List | LfStructure::Map => {
            let chains = set_chains(m, &run.layout);
            let buckets = chains.len() as u64;
            let mut live: Vec<u64> = Vec::new();
            for (b, chain) in chains.iter().enumerate() {
                let mut prev: Option<u64> = None;
                for &(key, marked) in chain {
                    if key % buckets != b as u64 {
                        return Err(format!("key {key} in wrong bucket {b}"));
                    }
                    if let Some(p) = prev {
                        if key <= p {
                            return Err(format!("bucket {b} unsorted at key {key}"));
                        }
                    }
                    prev = Some(key);
                    if !marked {
                        live.push(key);
                    }
                }
            }
            live.sort_unstable();
            let mut balance: HashMap<u64, i64> = HashMap::new();
            for e in hist.events() {
                match (e.op, e.ret) {
                    (HistOp::Insert(k), HistRet::Bool(true)) => *balance.entry(k).or_default() += 1,
                    (HistOp::Remove(k), HistRet::Bool(true)) => *balance.entry(k).or_default() -= 1,
                    (HistOp::Insert(_) | HistOp::Remove(_) | HistOp::Contains(_), _) => {}
                    other => return Err(format!("non-set event {other:?}")),
                }
            }
            let mut expected: Vec<u64> = balance
                .iter()
                .filter_map(|(&k, &c)| match c {
                    0 => None,
                    1 => Some(k),
                    _ => Some(u64::MAX), // flagged below
                })
                .collect();
            if expected.contains(&u64::MAX) {
                return Err("a key's insert/remove balance left |balance| > 1".into());
            }
            expected.sort_unstable();
            if live != expected {
                return Err(format!(
                    "live keys {live:?} != history-implied keys {expected:?} \
                     (key conservation broken)"
                ));
            }
            Ok(())
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dsm_protocol::SyncPolicy;
    use dsm_sim::Cycle;
    use dsm_trace::{check, FifoQueueSpec, SetSpec};

    const LIMIT: Cycle = Cycle::new(5_000_000_000);

    fn cfg(structure: LfStructure, prim: LinkPrim, policy: SyncPolicy) -> LfConfig {
        LfConfig {
            structure,
            prim,
            sync: SyncConfig {
                policy,
                ..Default::default()
            },
            ops_per_proc: 6,
            key_space: 8,
            buckets: 4,
        }
    }

    fn run(cfg: &LfConfig, nodes: u32) -> (Machine, LfRun) {
        let (mut m, run) = build_lockfree(MachineConfig::with_nodes(nodes), cfg);
        m.run(LIMIT).expect("lock-free run completes");
        m.validate_coherence().unwrap();
        (m, run)
    }

    /// Every structure × primitive × policy runs to completion with
    /// intact invariants — the end-to-end smoke for the whole tier.
    /// (Linearizability itself is checked in `tests/linearizability.rs`.)
    #[test]
    fn every_structure_prim_policy_keeps_invariants() {
        for structure in LfStructure::ALL {
            for prim in LinkPrim::ALL {
                for policy in SyncPolicy::ALL {
                    let c = cfg(structure, prim, policy);
                    let (m, r) = run(&c, 4);
                    let ops = r.history.lock().unwrap().len();
                    let expected = match structure {
                        LfStructure::Queue => 4 * 2 * c.ops_per_proc as usize,
                        _ => 4 * c.ops_per_proc as usize,
                    };
                    assert_eq!(
                        ops,
                        expected,
                        "{} / {} / {}",
                        structure.label(),
                        prim,
                        policy
                    );
                    check_invariants(&m, &c, &r).unwrap_or_else(|e| {
                        panic!("{} / {} / {}: {e}", structure.label(), prim, policy)
                    });
                }
            }
        }
    }

    #[test]
    fn queue_history_is_linearizable_smoke() {
        let c = cfg(LfStructure::Queue, LinkPrim::EmulLlsc, SyncPolicy::Inv);
        let (_m, r) = run(&c, 4);
        check(&FifoQueueSpec, &r.history.lock().unwrap()).expect("linearizable");
    }

    #[test]
    fn map_history_is_linearizable_smoke() {
        let c = cfg(LfStructure::Map, LinkPrim::CasPlain, SyncPolicy::Unc);
        let (_m, r) = run(&c, 4);
        check(&SetSpec, &r.history.lock().unwrap()).expect("linearizable");
    }

    #[test]
    fn value_tagging_round_trips() {
        let v = queue_value(7, 42);
        assert_eq!(value_producer(v), 7);
        assert_eq!(value_seq(v), 42);
    }

    #[test]
    fn invariant_checker_rejects_a_corrupted_residue() {
        let c = cfg(LfStructure::Queue, LinkPrim::Llsc, SyncPolicy::Inv);
        let (m, r) = run(&c, 2);
        // Sabotage the history: pretend one more value was enqueued.
        r.history.lock().unwrap().push(HistEvent {
            proc: 0,
            invoked: 0,
            responded: 1,
            op: HistOp::Enqueue(queue_value(0, 999)),
            ret: HistRet::Ok,
        });
        assert!(check_invariants(&m, &c, &r).is_err());
    }
}
