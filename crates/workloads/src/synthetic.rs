//! The three synthetic counter applications of Figures 3, 4 and 5.
//!
//! "Each processor executes a tight loop, in each iteration of which it
//! either updates the counter or not, depending on the desired level of
//! contention. Depending on the desired average write-run length, every
//! one or more iterations are separated by a constant-time barrier."
//!
//! * contention `c` — the number of processors that update the counter
//!   concurrently in each round;
//! * write-run `a` — with `c == 1`, the (average) number of consecutive
//!   updates the round's designated processor performs before the
//!   barrier hands the counter to the next processor. Fractional values
//!   (the paper uses 1.5) alternate between ⌊a⌋ and ⌈a⌉.

use crate::driver::SubRunner;
use crate::locked::{LockKind, LockedIncr};
use dsm_machine::{Action, Machine, MachineBuilder, ProcCtx, Program};
use dsm_protocol::{SyncConfig, Value};
use dsm_sim::{Addr, MachineConfig};
use dsm_sync::{LockFreeIncr, McsQnode, PrimChoice, ShmAlloc};

/// Which Figure's workload this is.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum CounterKind {
    /// Figure 3: lock-free counter (the primitive updates the counter
    /// directly).
    LockFree,
    /// Figure 4: counter protected by a TTS lock with bounded
    /// exponential backoff.
    TtsLock,
    /// Figure 5: counter protected by an MCS lock.
    McsLock,
}

impl CounterKind {
    /// All kinds in figure order.
    pub const ALL: [CounterKind; 3] = [
        CounterKind::LockFree,
        CounterKind::TtsLock,
        CounterKind::McsLock,
    ];

    /// Human-readable name.
    pub fn label(self) -> &'static str {
        match self {
            CounterKind::LockFree => "lock-free",
            CounterKind::TtsLock => "TTS-lock",
            CounterKind::McsLock => "MCS-lock",
        }
    }
}

/// Parameters of one synthetic-counter run.
#[derive(Debug, Clone, Copy)]
pub struct SyntheticConfig {
    /// Which workload (Figure 3/4/5).
    pub kind: CounterKind,
    /// Primitive family + auxiliary-instruction knobs.
    pub choice: PrimChoice,
    /// Synchronization-line configuration (policy, CAS variant, LL/SC
    /// scheme).
    pub sync: SyncConfig,
    /// Contention level `c` (1 = no contention).
    pub contention: u32,
    /// Average write-run length `a` (meaningful when `contention == 1`).
    pub write_run: f64,
    /// Number of barrier-separated rounds.
    pub rounds: u64,
}

impl SyntheticConfig {
    /// Updates performed by the designated processor in `round`.
    fn updates_in_round(&self, round: u64) -> u64 {
        if self.contention > 1 {
            return 1;
        }
        let floor = self.write_run.floor() as u64;
        let ceil = self.write_run.ceil() as u64;
        if floor == ceil || round.is_multiple_of(2) {
            floor
        } else {
            ceil
        }
    }

    /// Total counter updates across a whole run on `procs` processors.
    pub fn total_updates(&self, _procs: u32) -> u64 {
        (0..self.rounds)
            .map(|r| self.updates_in_round(r) * self.contention as u64)
            .sum()
    }
}

/// The address layout of a synthetic run (exposed so tests and the
/// experiment harness can read the final counter value).
#[derive(Debug, Clone, Copy)]
pub struct SyntheticLayout {
    /// The shared counter word.
    pub counter: Addr,
    /// The lock word (unused for the lock-free kind).
    pub lock: Addr,
}

struct SyntheticProgram {
    cfg: SyntheticConfig,
    procs: u32,
    proc: u32,
    layout: SyntheticLayout,
    qnode: McsQnode,
    round: u64,
    updates_left: u64,
    runner: SubRunner,
    state: St,
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum St {
    RoundStart,
    Updating,
    AfterBarrier,
}

impl SyntheticProgram {
    fn is_updater(&self) -> bool {
        let c = self.cfg.contention as u64;
        let p = self.procs as u64;
        let me = self.proc as u64;
        // Round r is served by processors (r*c)..(r*c + c) mod p —
        // consecutive disjoint groups, so ownership migrates between
        // rounds (write runs stay at the configured length).
        let start = (self.round * c) % p;
        let offset = (me + p - start) % p;
        offset < c
    }

    fn start_update(&mut self) {
        match self.cfg.kind {
            CounterKind::LockFree => {
                self.runner
                    .start(LockFreeIncr::new(self.layout.counter, self.cfg.choice));
            }
            CounterKind::TtsLock => {
                self.runner.start(LockedIncr::new(
                    self.layout.counter,
                    self.layout.lock,
                    LockKind::Tts,
                    self.cfg.choice,
                    self.qnode,
                ));
            }
            CounterKind::McsLock => {
                self.runner.start(LockedIncr::new(
                    self.layout.counter,
                    self.layout.lock,
                    LockKind::Mcs,
                    self.cfg.choice,
                    self.qnode,
                ));
            }
        }
    }
}

impl Program for SyntheticProgram {
    fn step(&mut self, ctx: &mut ProcCtx<'_>) -> Action {
        loop {
            if let Some(action) = self.runner.drive(ctx) {
                return action;
            }
            match self.state {
                St::RoundStart => {
                    if self.round == self.cfg.rounds {
                        return Action::Done;
                    }
                    if self.is_updater() {
                        self.updates_left = self.cfg.updates_in_round(self.round);
                        self.state = St::Updating;
                    } else {
                        self.state = St::AfterBarrier;
                        return Action::Barrier((self.round % 2) as u32);
                    }
                }
                St::Updating => {
                    if self.updates_left > 0 {
                        self.updates_left -= 1;
                        self.start_update();
                        continue;
                    }
                    self.state = St::AfterBarrier;
                    return Action::Barrier((self.round % 2) as u32);
                }
                St::AfterBarrier => {
                    self.round += 1;
                    self.state = St::RoundStart;
                }
            }
        }
    }
}

/// Builds a ready-to-run machine for a synthetic-counter experiment.
///
/// Returns the machine and the shared-variable layout.
///
/// # Example
///
/// ```
/// use dsm_sim::{Cycle, MachineConfig};
/// use dsm_sync::{PrimChoice, Primitive};
/// use dsm_workloads::synthetic::{build_synthetic, CounterKind, SyntheticConfig};
///
/// let scfg = SyntheticConfig {
///     kind: CounterKind::LockFree,
///     choice: PrimChoice::plain(Primitive::FetchPhi),
///     sync: Default::default(),
///     contention: 4,
///     write_run: 1.0,
///     rounds: 10,
/// };
/// let (mut machine, layout) = build_synthetic(MachineConfig::with_nodes(8), &scfg);
/// machine.run(Cycle::new(10_000_000)).unwrap();
/// assert_eq!(machine.read_word(layout.counter), scfg.total_updates(8));
/// ```
pub fn build_synthetic(mcfg: MachineConfig, scfg: &SyntheticConfig) -> (Machine, SyntheticLayout) {
    let procs = mcfg.nodes;
    let mut alloc = ShmAlloc::new(mcfg.params.line_size, procs);
    let counter = alloc.word();
    let lock = alloc.word();
    let qnodes: Vec<McsQnode> = (0..procs).map(|_| McsQnode::at(alloc.array(2))).collect();
    let layout = SyntheticLayout { counter, lock };

    let mut b = MachineBuilder::new(mcfg);
    // The synchronization variable: the counter itself (lock-free) or
    // the lock word; the protected counter is ordinary data.
    match scfg.kind {
        CounterKind::LockFree => {
            b.register_sync(counter, scfg.sync);
        }
        CounterKind::TtsLock | CounterKind::McsLock => {
            b.register_sync(lock, scfg.sync);
        }
    }
    b.init_word(counter, 0 as Value);
    for p in 0..procs {
        b.add_program(SyntheticProgram {
            cfg: *scfg,
            procs,
            proc: p,
            layout,
            qnode: qnodes[p as usize],
            round: 0,
            updates_left: 0,
            runner: SubRunner::new(),
            state: St::RoundStart,
        });
    }
    (b.build(), layout)
}

#[cfg(test)]
mod tests {
    use super::*;
    use dsm_protocol::{CasVariant, LlscScheme, SyncPolicy};
    use dsm_sim::Cycle;
    use dsm_sync::Primitive;

    const LIMIT: Cycle = Cycle::new(100_000_000);

    fn run(scfg: &SyntheticConfig, nodes: u32) -> (Machine, SyntheticLayout) {
        let (mut m, layout) = build_synthetic(MachineConfig::with_nodes(nodes), scfg);
        m.run(LIMIT).expect("synthetic run completes");
        (m, layout)
    }

    fn base(kind: CounterKind, prim: Primitive, policy: SyncPolicy) -> SyntheticConfig {
        SyntheticConfig {
            kind,
            choice: PrimChoice::plain(prim),
            sync: SyncConfig {
                policy,
                ..Default::default()
            },
            contention: 1,
            write_run: 1.0,
            rounds: 12,
        }
    }

    #[test]
    fn updates_in_round_patterns() {
        let mut c = base(CounterKind::LockFree, Primitive::FetchPhi, SyncPolicy::Inv);
        c.write_run = 1.5;
        assert_eq!(c.updates_in_round(0), 1);
        assert_eq!(c.updates_in_round(1), 2);
        assert_eq!(c.total_updates(64), 18); // 6*(1+2)
        c.write_run = 10.0;
        assert_eq!(c.updates_in_round(0), 10);
        c.contention = 4;
        assert_eq!(
            c.updates_in_round(1),
            1,
            "with contention the run length is 1"
        );
        assert_eq!(c.total_updates(64), 48);
    }

    /// The full matrix of kind × primitive × policy must produce the
    /// exact expected count — this is the core end-to-end correctness
    /// test of the whole simulator stack.
    #[test]
    fn every_kind_primitive_policy_is_exact() {
        for kind in CounterKind::ALL {
            for prim in Primitive::ALL {
                for policy in SyncPolicy::ALL {
                    let cfg = base(kind, prim, policy);
                    let (m, layout) = run(&cfg, 8);
                    assert_eq!(
                        m.read_word(layout.counter),
                        cfg.total_updates(8),
                        "{} / {} / {}",
                        kind.label(),
                        prim.label(),
                        policy.label()
                    );
                    m.validate_coherence().unwrap_or_else(|e| {
                        panic!(
                            "{} / {} / {}: {e}",
                            kind.label(),
                            prim.label(),
                            policy.label()
                        )
                    });
                }
            }
        }
    }

    #[test]
    fn contention_case_is_exact() {
        for c in [2u32, 4, 8] {
            let mut cfg = base(CounterKind::LockFree, Primitive::Cas, SyncPolicy::Inv);
            cfg.contention = c;
            cfg.rounds = 6;
            let (m, layout) = run(&cfg, 8);
            assert_eq!(m.read_word(layout.counter), cfg.total_updates(8));
        }
    }

    #[test]
    fn contended_tts_lock_is_exact() {
        let mut cfg = base(CounterKind::TtsLock, Primitive::FetchPhi, SyncPolicy::Inv);
        cfg.contention = 8;
        cfg.rounds = 4;
        let (m, layout) = run(&cfg, 8);
        assert_eq!(m.read_word(layout.counter), 32);
    }

    #[test]
    fn contended_mcs_lock_is_exact() {
        for prim in Primitive::ALL {
            let mut cfg = base(CounterKind::McsLock, prim, SyncPolicy::Inv);
            cfg.contention = 8;
            cfg.rounds = 4;
            let (m, layout) = run(&cfg, 8);
            assert_eq!(m.read_word(layout.counter), 32, "{prim}");
        }
    }

    #[test]
    fn write_run_is_measured_close_to_configured() {
        let mut cfg = base(CounterKind::LockFree, Primitive::FetchPhi, SyncPolicy::Inv);
        cfg.write_run = 3.0;
        cfg.rounds = 20;
        let (m, _) = run(&cfg, 8);
        // The counter location should show write runs of ~3.
        let runs = m.stats().write_runs.completed().mean();
        assert!(
            (2.5..=3.5).contains(&runs),
            "expected write-run ≈ 3, measured {runs}"
        );
    }

    #[test]
    fn contention_is_measured() {
        let mut cfg = base(CounterKind::LockFree, Primitive::FetchPhi, SyncPolicy::Unc);
        cfg.contention = 8;
        cfg.rounds = 10;
        let (m, _) = run(&cfg, 8);
        let stats = m.stats();
        let h = stats.contention.histogram();
        assert!(
            h.max_value().unwrap() >= 4,
            "high contention must be observed"
        );
    }

    #[test]
    fn load_exclusive_and_drop_copy_paths_run() {
        let mut cfg = base(CounterKind::LockFree, Primitive::Cas, SyncPolicy::Inv);
        cfg.choice = PrimChoice::plain(Primitive::Cas).with_load_exclusive();
        cfg.contention = 4;
        cfg.rounds = 6;
        let (m, layout) = run(&cfg, 8);
        assert_eq!(m.read_word(layout.counter), cfg.total_updates(8));

        let mut cfg = base(CounterKind::LockFree, Primitive::FetchPhi, SyncPolicy::Inv);
        cfg.choice = PrimChoice::plain(Primitive::FetchPhi).with_drop_copy();
        let (m, layout) = run(&cfg, 8);
        assert_eq!(m.read_word(layout.counter), cfg.total_updates(8));
    }

    #[test]
    fn cas_variants_run_exactly() {
        for variant in [CasVariant::Deny, CasVariant::Share] {
            let mut cfg = base(CounterKind::LockFree, Primitive::Cas, SyncPolicy::Inv);
            cfg.sync.cas_variant = variant;
            cfg.contention = 4;
            cfg.rounds = 6;
            let (m, layout) = run(&cfg, 8);
            assert_eq!(
                m.read_word(layout.counter),
                cfg.total_updates(8),
                "{variant:?}"
            );
        }
    }

    #[test]
    fn llsc_serial_scheme_runs_exactly() {
        let mut cfg = base(CounterKind::LockFree, Primitive::Llsc, SyncPolicy::Unc);
        cfg.sync.llsc = LlscScheme::SerialNumber;
        cfg.contention = 4;
        cfg.rounds = 6;
        let (m, layout) = run(&cfg, 8);
        assert_eq!(m.read_word(layout.counter), cfg.total_updates(8));
    }
}
