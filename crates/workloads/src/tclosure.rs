//! The Transitive Closure application of Figure 1.
//!
//! A Floyd–Warshall-style closure of a boolean adjacency matrix. Work
//! is self-scheduled: processors claim variable-size chunks of rows
//! with a lock-free `fetch_and_add` counter (implemented with the
//! primitive under study), and iterations are separated by the scalable
//! tree barrier \[20\]. This is the paper's high-contention application:
//! the barriers make it likely that all processors hit the counter at
//! once.

use crate::driver::drive_sub;
use dsm_machine::{Action, Machine, MachineBuilder, ProcCtx, Program};
use dsm_protocol::{MemOp, OpResult, SyncConfig};
use dsm_sim::{Addr, MachineConfig, SimRng};
use dsm_sync::{
    LockFreeIncr, PrimChoice, ShmAlloc, Step, SubMachine, TreeBarrier, TreeBarrierWait,
};

/// Parameters of a Transitive Closure run.
#[derive(Debug, Clone, Copy)]
pub struct TcConfig {
    /// Matrix dimension (paper-scale runs use 32–64; tests use 8–16).
    pub size: u64,
    /// Primitive used for the chunk counter.
    pub choice: PrimChoice,
    /// Synchronization configuration of the counter line.
    pub sync: SyncConfig,
    /// Edge density of the random input graph, in `[0, 1]`.
    pub density: f64,
    /// Seed for the input graph.
    pub seed: u64,
}

/// Shared-memory layout of a Transitive Closure run.
#[derive(Debug, Clone)]
pub struct TcLayout {
    /// The chunk-claim counter (the synchronization variable).
    pub counter: Addr,
    /// The termination flag.
    pub flag: Addr,
    /// Base of the row-major `size × size` matrix of words.
    pub ebase: Addr,
}

impl TcLayout {
    /// Address of matrix element `E[j][k]`.
    pub fn element(&self, size: u64, j: u64, k: u64) -> Addr {
        self.ebase + (j * size + k) * 8
    }
}

/// Generates the random input adjacency matrix (reflexive).
pub fn input_matrix(cfg: &TcConfig) -> Vec<Vec<bool>> {
    let mut rng = SimRng::new(cfg.seed);
    let n = cfg.size as usize;
    let mut m = vec![vec![false; n]; n];
    for (j, row) in m.iter_mut().enumerate() {
        for (k, cell) in row.iter_mut().enumerate() {
            *cell = j == k || rng.chance(cfg.density);
        }
    }
    m
}

/// Sequentially computes the closure with exactly the parallel
/// program's update rule, for verification.
pub fn sequential_closure(input: &[Vec<bool>]) -> Vec<Vec<bool>> {
    let n = input.len();
    let mut e: Vec<Vec<bool>> = input.to_vec();
    for i in 0..n {
        for j in 0..n {
            if j != i && e[j][i] {
                let pivot = e[i].clone();
                for (k, &p) in pivot.iter().enumerate() {
                    if p {
                        e[j][k] = true;
                    }
                }
            }
        }
    }
    e
}

/// The inner row-chunk update: for each row `j` in the chunk, if
/// `E[j][i]` then `E[j] |= E[i]`.
struct RowWork {
    layout: TcLayout,
    size: u64,
    i: u64,
    j: u64,
    j_end: u64,
    k: u64,
    state: RwState,
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum RwState {
    NextJ,
    WaitCurI,
    NextK,
    WaitPivotK,
    WaitStore,
}

impl SubMachine for RowWork {
    fn step(&mut self, last: Option<OpResult>, _rng: &mut SimRng) -> Step {
        loop {
            match self.state {
                RwState::NextJ => {
                    if self.j >= self.j_end {
                        return Step::Done;
                    }
                    if self.j == self.i {
                        self.j += 1;
                        continue;
                    }
                    self.state = RwState::WaitCurI;
                    return Step::Op(MemOp::Load {
                        addr: self.layout.element(self.size, self.j, self.i),
                    });
                }
                RwState::WaitCurI => {
                    let v = last.expect("cur[i] read").value().expect("load value");
                    if v != 0 {
                        self.k = 0;
                        self.state = RwState::NextK;
                    } else {
                        self.j += 1;
                        self.state = RwState::NextJ;
                    }
                }
                RwState::NextK => {
                    if self.k >= self.size {
                        self.j += 1;
                        self.state = RwState::NextJ;
                        continue;
                    }
                    self.state = RwState::WaitPivotK;
                    return Step::Op(MemOp::Load {
                        addr: self.layout.element(self.size, self.i, self.k),
                    });
                }
                RwState::WaitPivotK => {
                    let v = last.expect("pivot[k] read").value().expect("load value");
                    if v != 0 {
                        self.state = RwState::WaitStore;
                        return Step::Op(MemOp::Store {
                            addr: self.layout.element(self.size, self.j, self.k),
                            value: 1,
                        });
                    }
                    self.k += 1;
                    self.state = RwState::NextK;
                }
                RwState::WaitStore => {
                    self.k += 1;
                    self.state = RwState::NextK;
                }
            }
        }
    }
}

struct TcProgram {
    cfg: TcConfig,
    layout: TcLayout,
    barrier: TreeBarrier,
    proc: u32,
    procs: u32,
    i: u64,
    row: u64,
    rows: u64,
    episode: u64,
    fetch_add: Option<LockFreeIncr>,
    row_work: Option<RowWork>,
    bar_wait: Option<TreeBarrierWait>,
    state: TcState,
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum TcState {
    IterStart,
    WaitResetCounter,
    WaitResetFlag,
    Bar1,
    ReadFlag,
    WaitFlag,
    FetchAdd,
    WaitSetFlag,
    RowWork,
    Bar2,
}

impl TcProgram {
    fn start_barrier(&mut self) {
        let sense = if self.episode.is_multiple_of(2) { 1 } else { 0 };
        self.episode += 1;
        self.bar_wait = Some(self.barrier.wait(self.proc, sense));
    }
}

impl Program for TcProgram {
    fn step(&mut self, ctx: &mut ProcCtx<'_>) -> Action {
        loop {
            // Drive whichever fragment is active.
            if let Some(w) = &mut self.bar_wait {
                match drive_sub(w, ctx) {
                    Some(a) => return a,
                    None => self.bar_wait = None,
                }
            }
            if let Some(f) = &mut self.fetch_add {
                if let Some(a) = drive_sub(f, ctx) {
                    return a;
                }
                // fetch_and_add finished: this is the claim.
                let fa = self.fetch_add.take().expect("present");
                self.row = fa.observed().expect("fetch_and_add observed a value");
                if self.row >= self.cfg.size {
                    self.state = TcState::WaitSetFlag;
                    return Action::Op(MemOp::Store {
                        addr: self.layout.flag,
                        value: 1,
                    });
                }
                let work = self.rows.min(self.cfg.size - self.row);
                self.row_work = Some(RowWork {
                    layout: self.layout.clone(),
                    size: self.cfg.size,
                    i: self.i,
                    j: self.row,
                    j_end: self.row + work,
                    k: 0,
                    state: RwState::NextJ,
                });
                self.state = TcState::RowWork;
            }
            if let Some(w) = &mut self.row_work {
                match drive_sub(w, ctx) {
                    Some(a) => return a,
                    None => {
                        self.row_work = None;
                        self.state = TcState::ReadFlag;
                    }
                }
            }
            match self.state {
                TcState::IterStart => {
                    if self.i == self.cfg.size {
                        return Action::Done;
                    }
                    if self.proc == 0 {
                        self.state = TcState::WaitResetCounter;
                        return Action::Op(MemOp::Store {
                            addr: self.layout.counter,
                            value: 0,
                        });
                    }
                    self.state = TcState::Bar1;
                }
                TcState::WaitResetCounter => {
                    self.state = TcState::WaitResetFlag;
                    return Action::Op(MemOp::Store {
                        addr: self.layout.flag,
                        value: 0,
                    });
                }
                TcState::WaitResetFlag => {
                    self.state = TcState::Bar1;
                }
                TcState::Bar1 => {
                    self.row = 0;
                    self.rows = 0;
                    self.start_barrier();
                    self.state = TcState::ReadFlag;
                }
                TcState::ReadFlag => {
                    self.state = TcState::WaitFlag;
                    return Action::Op(MemOp::Load {
                        addr: self.layout.flag,
                    });
                }
                TcState::WaitFlag => {
                    let flag = ctx
                        .last
                        .take()
                        .expect("flag read result")
                        .value()
                        .expect("flag read");
                    if flag != 0 {
                        self.state = TcState::Bar2;
                        continue;
                    }
                    // rows = ((size-row-rows-1)>>1)/procs + 1, in signed
                    // arithmetic exactly as in the paper's C code.
                    let remaining = self.cfg.size as i64 - self.row as i64 - self.rows as i64 - 1;
                    let chunk = ((remaining >> 1) / self.procs as i64 + 1).max(1) as u64;
                    self.rows = chunk;
                    self.fetch_add = Some(LockFreeIncr::by(
                        self.layout.counter,
                        self.cfg.choice,
                        chunk,
                    ));
                    self.state = TcState::FetchAdd;
                }
                TcState::FetchAdd => {
                    // Handled by the fragment loop above.
                    unreachable!("fetch_add fragment drives this state");
                }
                TcState::WaitSetFlag => {
                    self.state = TcState::Bar2;
                }
                TcState::RowWork => {
                    unreachable!("row_work fragment drives this state");
                }
                TcState::Bar2 => {
                    self.start_barrier();
                    self.i += 1;
                    self.state = TcState::IterStart;
                }
            }
        }
    }
}

/// Builds a ready-to-run Transitive Closure machine.
///
/// Returns the machine, the layout, and the input matrix (for
/// verification against [`sequential_closure`]).
pub fn build_tclosure(mcfg: MachineConfig, cfg: &TcConfig) -> (Machine, TcLayout, Vec<Vec<bool>>) {
    let procs = mcfg.nodes;
    let mut alloc = ShmAlloc::new(mcfg.params.line_size, procs);
    let counter = alloc.word();
    let flag = alloc.word();
    let ebase = alloc.array(cfg.size * cfg.size);
    let barrier = TreeBarrier::layout(&mut alloc, procs);
    let layout = TcLayout {
        counter,
        flag,
        ebase,
    };

    let input = input_matrix(cfg);
    let mut b = MachineBuilder::new(mcfg);
    b.register_sync(counter, cfg.sync);
    for (addr, v) in barrier.initial_values() {
        b.init_word(addr, v);
    }
    for (j, rowv) in input.iter().enumerate() {
        for (k, &cell) in rowv.iter().enumerate() {
            if cell {
                b.init_word(layout.element(cfg.size, j as u64, k as u64), 1);
            }
        }
    }
    for p in 0..procs {
        b.add_program(TcProgram {
            cfg: *cfg,
            layout: layout.clone(),
            barrier: barrier.clone(),
            proc: p,
            procs,
            i: 0,
            row: 0,
            rows: 0,
            episode: 0,
            fetch_add: None,
            row_work: None,
            bar_wait: None,
            state: TcState::IterStart,
        });
    }
    (b.build(), layout, input)
}

/// Reads the closure matrix back out of a quiescent machine.
pub fn read_matrix(m: &Machine, layout: &TcLayout, size: u64) -> Vec<Vec<bool>> {
    (0..size)
        .map(|j| {
            (0..size)
                .map(|k| m.read_word(layout.element(size, j, k)) != 0)
                .collect()
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use dsm_protocol::SyncPolicy;
    use dsm_sim::Cycle;
    use dsm_sync::Primitive;

    const LIMIT: Cycle = Cycle::new(500_000_000);

    fn tc_config(prim: Primitive, policy: SyncPolicy, size: u64) -> TcConfig {
        TcConfig {
            size,
            choice: PrimChoice::plain(prim),
            sync: SyncConfig {
                policy,
                ..Default::default()
            },
            density: 0.15,
            seed: 42,
        }
    }

    #[test]
    fn sequential_closure_is_transitive() {
        let cfg = tc_config(Primitive::FetchPhi, SyncPolicy::Unc, 10);
        let input = input_matrix(&cfg);
        let closure = sequential_closure(&input);
        let n = input.len();
        // Closed under composition: a→b and b→c imply a→c.
        for a in 0..n {
            for bb in 0..n {
                if closure[a][bb] {
                    for (c, &reach) in closure[bb].iter().enumerate() {
                        if reach {
                            assert!(closure[a][c], "{a}->{bb}->{c} not closed");
                        }
                    }
                }
            }
        }
        // Contains the input.
        for j in 0..n {
            for k in 0..n {
                if input[j][k] {
                    assert!(closure[j][k]);
                }
            }
        }
    }

    fn run_and_verify(prim: Primitive, policy: SyncPolicy, nodes: u32, size: u64) {
        let cfg = tc_config(prim, policy, size);
        let (mut m, layout, input) = build_tclosure(MachineConfig::with_nodes(nodes), &cfg);
        m.run(LIMIT).expect("transitive closure completes");
        m.validate_coherence().unwrap();
        let got = read_matrix(&m, &layout, size);
        let want = sequential_closure(&input);
        assert_eq!(got, want, "{prim} / {policy}: closure mismatch");
    }

    #[test]
    fn parallel_matches_sequential_fap() {
        run_and_verify(Primitive::FetchPhi, SyncPolicy::Unc, 8, 12);
    }

    #[test]
    fn parallel_matches_sequential_cas_inv() {
        run_and_verify(Primitive::Cas, SyncPolicy::Inv, 8, 12);
    }

    #[test]
    fn parallel_matches_sequential_llsc_inv() {
        run_and_verify(Primitive::Llsc, SyncPolicy::Inv, 8, 12);
    }

    #[test]
    fn parallel_matches_sequential_upd() {
        run_and_verify(Primitive::FetchPhi, SyncPolicy::Upd, 8, 12);
    }

    #[test]
    fn single_processor_run_works() {
        run_and_verify(Primitive::Cas, SyncPolicy::Inv, 1, 8);
    }

    #[test]
    fn contention_histogram_shows_bursts() {
        let cfg = tc_config(Primitive::FetchPhi, SyncPolicy::Unc, 16);
        let (mut m, _, _) = build_tclosure(MachineConfig::with_nodes(16), &cfg);
        m.run(LIMIT).unwrap();
        let stats = m.stats();
        let h = stats.contention.histogram();
        assert!(h.total() > 0);
        // Barrier-released processors hit the counter together: some
        // accesses must observe contention above 2.
        assert!(
            h.max_value().unwrap() >= 2,
            "expected contended counter accesses"
        );
    }
}
