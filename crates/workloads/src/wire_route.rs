//! A LocusRoute-style standard-cell router kernel.
//!
//! **Substitution note (see DESIGN.md):** the paper uses SPLASH
//! LocusRoute as a source of realistic lock sharing patterns —
//! dynamically scheduled work with region-protected cost-grid updates,
//! lock write-run length ≈ 1.7–1.8 and a contention histogram dominated
//! by the no-contention case. This kernel reproduces that structure:
//! wires are claimed from a central pool under a TTS lock (the paper
//! replaced the SPLASH library locks with TTS locks built from the
//! primitive under study), and routing a wire updates the cost cells of
//! a few regions, each protected by its own TTS lock.

use crate::driver::drive_sub;
use dsm_machine::{Action, Machine, MachineBuilder, ProcCtx, Program};
use dsm_protocol::{MemOp, SyncConfig};
use dsm_sim::{Addr, MachineConfig, SimRng};
use dsm_sync::{PrimChoice, ShmAlloc, TtsAcquire, TtsRelease};

/// Parameters of a wire-route run.
#[derive(Debug, Clone, Copy)]
pub struct WireRouteConfig {
    /// Total wires in the work pool.
    pub wires: u64,
    /// Number of grid regions (each with its own lock + cost array).
    pub regions: u32,
    /// Regions each wire passes through.
    pub route_len: u32,
    /// Cost cells updated per region visit.
    pub cells_per_visit: u64,
    /// Cost-array words per region.
    pub cells_per_region: u64,
    /// Primitive family for the claim counter and the locks.
    pub choice: PrimChoice,
    /// Synchronization configuration for the counter and lock lines.
    pub sync: SyncConfig,
    /// Seed for route generation.
    pub seed: u64,
    /// Local computation (cycles) per wire between the claim and the
    /// routing, outside any lock — the cost-evaluation work that
    /// dominates real LocusRoute and keeps its locks mostly
    /// uncontended.
    pub compute_per_wire: u64,
}

impl WireRouteConfig {
    /// Total cost-cell increments a complete run performs.
    pub fn expected_total(&self) -> u64 {
        self.wires * self.route_len as u64 * self.cells_per_visit
    }
}

/// Shared-memory layout of a wire-route run.
#[derive(Debug, Clone)]
pub struct WireRouteLayout {
    /// The wire-claim pool head (ordinary data protected by
    /// `pool_lock` — the paper's applications claim work under the
    /// library lock, which it replaces with a TTS lock).
    pub counter: Addr,
    /// The lock protecting the work pool.
    pub pool_lock: Addr,
    /// One lock word per region.
    pub locks: Vec<Addr>,
    /// One cost array base per region.
    pub costs: Vec<Addr>,
}

impl WireRouteLayout {
    /// Sums all cost cells (machine must be quiescent).
    pub fn total_cost(&self, m: &Machine, cfg: &WireRouteConfig) -> u64 {
        self.costs
            .iter()
            .map(|&base| {
                (0..cfg.cells_per_region)
                    .map(|c| m.read_word(base + c * 8))
                    .sum::<u64>()
            })
            .sum()
    }
}

/// The deterministic route of wire `w`: (region, first-cell) visits.
fn route_of(cfg: &WireRouteConfig, wire: u64) -> Vec<(u32, u64)> {
    let mut rng = SimRng::new(cfg.seed ^ wire.wrapping_mul(0x9E37_79B9_7F4A_7C15));
    (0..cfg.route_len)
        .map(|_| {
            let region = rng.range(cfg.regions as u64) as u32;
            let span = cfg
                .cells_per_region
                .saturating_sub(cfg.cells_per_visit)
                .max(1);
            let first = rng.range(span);
            (region, first)
        })
        .collect()
}

struct WireRouteProgram {
    cfg: WireRouteConfig,
    layout: WireRouteLayout,
    acquire: Option<TtsAcquire>,
    release: Option<TtsRelease>,
    route: Vec<(u32, u64)>,
    leg: usize,
    cell: u64,
    state: St,
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum St {
    Stagger,
    ClaimLock,
    ReadHead,
    WaitHead,
    WaitHeadStore { wire: u64 },
    PoolUnlock { wire: u64 },
    NextLeg,
    CellLoad,
    WaitCellLoad,
    WaitCellStore,
    Released,
}

impl Program for WireRouteProgram {
    fn step(&mut self, ctx: &mut ProcCtx<'_>) -> Action {
        loop {
            if let Some(acq) = &mut self.acquire {
                match drive_sub(acq, ctx) {
                    Some(a) => return a,
                    None => {
                        self.acquire = None;
                        match self.state {
                            St::ClaimLock => self.state = St::ReadHead,
                            St::NextLeg => {
                                self.cell = 0;
                                self.state = St::CellLoad;
                            }
                            other => unreachable!("acquire finished in state {other:?}"),
                        }
                    }
                }
            }
            if let Some(rel) = &mut self.release {
                match drive_sub(rel, ctx) {
                    Some(a) => return a,
                    None => {
                        self.release = None;
                        match self.state {
                            St::PoolUnlock { wire } => {
                                if wire >= self.cfg.wires {
                                    return Action::Done;
                                }
                                self.route = route_of(&self.cfg, wire);
                                self.leg = 0;
                                self.state = St::NextLeg;
                                if self.cfg.compute_per_wire > 0 {
                                    return Action::Compute(self.cfg.compute_per_wire);
                                }
                            }
                            St::Released => {
                                self.leg += 1;
                                self.state = St::NextLeg;
                            }
                            other => unreachable!("release finished in state {other:?}"),
                        }
                    }
                }
            }
            match self.state {
                St::Stagger => {
                    self.state = St::ClaimLock;
                    // Desynchronize the initial burst of wire claims.
                    if self.cfg.compute_per_wire > 0 {
                        return Action::Compute(ctx.rng.range(self.cfg.compute_per_wire.max(1)));
                    }
                }
                St::ClaimLock => {
                    self.acquire = Some(TtsAcquire::new(self.layout.pool_lock, self.cfg.choice));
                }
                St::ReadHead => {
                    self.state = St::WaitHead;
                    return Action::Op(MemOp::Load {
                        addr: self.layout.counter,
                    });
                }
                St::WaitHead => {
                    let wire = ctx
                        .last
                        .take()
                        .expect("head read")
                        .value()
                        .expect("load value");
                    self.state = St::WaitHeadStore { wire };
                    return Action::Op(MemOp::Store {
                        addr: self.layout.counter,
                        value: wire + 1,
                    });
                }
                St::WaitHeadStore { wire } => {
                    ctx.last.take();
                    self.state = St::PoolUnlock { wire };
                    self.release = Some(TtsRelease::new(self.layout.pool_lock, self.cfg.choice));
                }
                St::PoolUnlock { .. } => {
                    unreachable!("release fragment drives this state");
                }
                St::NextLeg => {
                    if self.leg >= self.route.len() {
                        self.state = St::ClaimLock;
                        continue;
                    }
                    let (region, _) = self.route[self.leg];
                    self.acquire = Some(TtsAcquire::new(
                        self.layout.locks[region as usize],
                        self.cfg.choice,
                    ));
                }
                St::CellLoad => {
                    if self.cell >= self.cfg.cells_per_visit {
                        let (region, _) = self.route[self.leg];
                        self.release = Some(TtsRelease::new(
                            self.layout.locks[region as usize],
                            self.cfg.choice,
                        ));
                        self.state = St::Released;
                        continue;
                    }
                    let (region, first) = self.route[self.leg];
                    let addr = self.layout.costs[region as usize] + (first + self.cell) * 8;
                    self.state = St::WaitCellLoad;
                    return Action::Op(MemOp::Load { addr });
                }
                St::WaitCellLoad => {
                    let v = ctx
                        .last
                        .take()
                        .expect("cell load")
                        .value()
                        .expect("load value");
                    let (region, first) = self.route[self.leg];
                    let addr = self.layout.costs[region as usize] + (first + self.cell) * 8;
                    self.state = St::WaitCellStore;
                    return Action::Op(MemOp::Store { addr, value: v + 1 });
                }
                St::WaitCellStore => {
                    ctx.last.take();
                    self.cell += 1;
                    self.state = St::CellLoad;
                }
                St::Released => {
                    // Handled by the release fragment above.
                    unreachable!("release fragment drives this state");
                }
            }
        }
    }
}

/// Builds a ready-to-run wire-route machine.
pub fn build_wire_route(mcfg: MachineConfig, cfg: &WireRouteConfig) -> (Machine, WireRouteLayout) {
    assert!(
        cfg.regions > 0 && cfg.route_len > 0,
        "need at least one region per route"
    );
    assert!(
        cfg.cells_per_visit <= cfg.cells_per_region,
        "cannot touch more cells than a region has"
    );
    let procs = mcfg.nodes;
    let mut alloc = ShmAlloc::new(mcfg.params.line_size, procs);
    let counter = alloc.word();
    let pool_lock = alloc.word();
    let locks: Vec<Addr> = (0..cfg.regions).map(|_| alloc.word()).collect();
    let costs: Vec<Addr> = (0..cfg.regions)
        .map(|_| alloc.array(cfg.cells_per_region))
        .collect();
    let layout = WireRouteLayout {
        counter,
        pool_lock,
        locks: locks.clone(),
        costs,
    };

    let mut b = MachineBuilder::new(mcfg);
    b.register_sync(pool_lock, cfg.sync);
    for &l in &locks {
        b.register_sync(l, cfg.sync);
    }
    for _ in 0..procs {
        b.add_program(WireRouteProgram {
            cfg: *cfg,
            layout: layout.clone(),
            acquire: None,
            release: None,
            route: Vec::new(),
            leg: 0,
            cell: 0,
            state: St::Stagger,
        });
    }
    (b.build(), layout)
}

#[cfg(test)]
mod tests {
    use super::*;
    use dsm_protocol::SyncPolicy;
    use dsm_sim::Cycle;
    use dsm_sync::Primitive;

    const LIMIT: Cycle = Cycle::new(500_000_000);

    fn cfg(prim: Primitive, policy: SyncPolicy) -> WireRouteConfig {
        WireRouteConfig {
            wires: 40,
            regions: 8,
            route_len: 3,
            cells_per_visit: 4,
            cells_per_region: 16,
            choice: PrimChoice::plain(prim),
            sync: SyncConfig {
                policy,
                ..Default::default()
            },
            seed: 7,
            compute_per_wire: 0,
        }
    }

    #[test]
    fn routes_are_deterministic_and_in_range() {
        let c = cfg(Primitive::Cas, SyncPolicy::Inv);
        for w in 0..c.wires {
            let r1 = route_of(&c, w);
            let r2 = route_of(&c, w);
            assert_eq!(r1, r2);
            assert_eq!(r1.len(), 3);
            for (region, first) in r1 {
                assert!(region < c.regions);
                assert!(first + c.cells_per_visit <= c.cells_per_region);
            }
        }
    }

    fn run_and_check(prim: Primitive, policy: SyncPolicy, nodes: u32) {
        let c = cfg(prim, policy);
        let (mut m, layout) = build_wire_route(MachineConfig::with_nodes(nodes), &c);
        m.run(LIMIT).expect("wire-route completes");
        m.validate_coherence().unwrap();
        assert_eq!(
            layout.total_cost(&m, &c),
            c.expected_total(),
            "{prim} / {policy}: lost or duplicated cost updates"
        );
    }

    #[test]
    fn all_updates_survive_fap() {
        run_and_check(Primitive::FetchPhi, SyncPolicy::Inv, 8);
    }

    #[test]
    fn all_updates_survive_cas() {
        run_and_check(Primitive::Cas, SyncPolicy::Inv, 8);
    }

    #[test]
    fn all_updates_survive_llsc() {
        run_and_check(Primitive::Llsc, SyncPolicy::Inv, 8);
    }

    #[test]
    fn all_updates_survive_unc_and_upd() {
        run_and_check(Primitive::Cas, SyncPolicy::Unc, 4);
        run_and_check(Primitive::Cas, SyncPolicy::Upd, 4);
    }

    #[test]
    fn lock_sharing_pattern_matches_locusroute() {
        // The paper measured lock write-run lengths of ~1.7–1.8 and a
        // contention histogram dominated by the uncontended case.
        let c = cfg(Primitive::FetchPhi, SyncPolicy::Inv);
        let (mut m, _) = build_wire_route(MachineConfig::with_nodes(8), &c);
        m.run(LIMIT).unwrap();
        let s = m.stats();
        let runs = s.write_runs.completed().mean();
        assert!(
            (1.0..=2.6).contains(&runs),
            "lock write-run should be near the paper's 1.7, measured {runs}"
        );
        let h = s.contention.histogram();
        assert!(
            h.percentage(1) > 50.0,
            "no-contention should dominate, got {:.1}%",
            h.percentage(1)
        );
    }
}
