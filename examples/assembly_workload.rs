//! Execution-driven simulation, MINT style: the paper's synthetic
//! lock-free counter written as an *assembly program* and executed by
//! the mini-MINT CPU interpreter on the simulated DSM machine, once per
//! primitive family.
//!
//! ```sh
//! cargo run --release --example assembly_workload
//! ```

use atomic_dsm::machine::MachineBuilder;
use atomic_dsm::mint::{assemble, Cpu, Reg};
use atomic_dsm::sim::{Addr, Cycle, MachineConfig};
use atomic_dsm::{SyncConfig, SyncPolicy};

const FAA: &str = "
    ; r1 = &counter, r2 = iterations
    li  r3, 1
loop:
    faa r4, r1, r3
    addi r2, r2, -1
    bne r2, r0, loop
    halt
";

const CAS: &str = "
    ; load_exclusive + compare_and_swap — the paper's recommendation
again:
    lx  r5, r1
retry:
    addi r6, r5, 1
    cas r7, r1, r5, r6
    beq r7, r5, won
    add r5, r7, r0
    j retry
won:
    addi r2, r2, -1
    bne r2, r0, again
    halt
";

const LLSC: &str = "
again:
    ll  r5, r1
    addi r6, r5, 1
    sc  r7, r6, r1
    beq r7, r0, again
    addi r2, r2, -1
    bne r2, r0, again
    halt
";

fn main() -> Result<(), Box<dyn std::error::Error>> {
    const PROCS: u32 = 16;
    const ITERS: u64 = 200;
    let counter = Addr::new(0x40);

    println!("assembly lock-free counter, {PROCS} CPUs x {ITERS} increments\n");
    println!(
        "{:<22} {:<8} {:>12} {:>14} {:>10}",
        "program", "policy", "cycles", "instructions", "IPC"
    );

    for (name, src, policy) in [
        ("fetch_and_add", FAA, SyncPolicy::Unc),
        ("lx + compare_and_swap", CAS, SyncPolicy::Inv),
        ("ll / sc", LLSC, SyncPolicy::Inv),
    ] {
        let prog = assemble(src)?;
        let mut b = MachineBuilder::new(MachineConfig::with_nodes(PROCS));
        b.register_sync(
            counter,
            SyncConfig {
                policy,
                ..Default::default()
            },
        );
        for _ in 0..PROCS {
            b.add_program(
                Cpu::new(prog.clone())
                    .with_reg(Reg(1), counter.as_u64())
                    .with_reg(Reg(2), ITERS),
            );
        }
        let mut m = b.build();
        let report = m.run(Cycle::new(10_000_000_000))?;
        assert_eq!(
            m.read_word(counter),
            PROCS as u64 * ITERS,
            "{name}: lost updates"
        );
        // Rough retired-instruction count: ops + local ALU work are both
        // visible through the machine's op counter and the run report.
        println!(
            "{:<22} {:<8} {:>12} {:>14} {:>10.3}",
            name,
            policy.label(),
            report.cycles.as_u64(),
            m.stats().ops,
            m.stats().ops as f64 / report.cycles.as_u64() as f64,
        );
    }

    println!("\nThe same assembly runs unchanged under any policy; the memory");
    println!("system underneath is the paper's 64-node DSM machine in miniature.");
    Ok(())
}
