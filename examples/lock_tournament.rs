//! Lock tournament: TTS (with bounded exponential backoff) versus the
//! MCS queue lock, across primitive families and contention levels.
//!
//! Reproduces the qualitative story of Figures 4 and 5: TTS with
//! backoff holds up well because backoff sheds contention, while MCS
//! pays queue-maintenance atomics but hands the lock off in FIFO order.
//!
//! ```sh
//! cargo run --release --example lock_tournament
//! ```

use atomic_dsm::experiments::{counters, BarSpec, CounterKind, Scale};
use atomic_dsm::{Primitive, SyncPolicy};

fn main() {
    let scale = Scale {
        procs: 16,
        rounds: 24,
        tc_size: 0,
        wires: 0,
        tasks: 0,
    };
    let contentions = [1u32, 4, 16];

    println!(
        "average cycles per lock-protected counter update ({} procs)\n",
        scale.procs
    );
    println!(
        "{:<10} {:<6} {:>10} {:>10} {:>10}",
        "lock", "prim", "c=1", "c=4", "c=16"
    );

    for (kind, name) in [(CounterKind::TtsLock, "TTS"), (CounterKind::McsLock, "MCS")] {
        for prim in Primitive::ALL {
            let bar = BarSpec::new(SyncPolicy::Inv, prim);
            let mut cells = Vec::new();
            for &c in &contentions {
                let p = counters::measure_bar(kind, &bar, c, 1.0, &scale);
                cells.push(p.avg_cycles);
            }
            println!(
                "{:<10} {:<6} {:>10.0} {:>10.0} {:>10.0}",
                name,
                prim.label(),
                cells[0],
                cells[1],
                cells[2]
            );
        }
    }

    println!("\nNote the FAP column for MCS: without compare_and_swap the release");
    println!("must use the swap-only variant, which repairs the queue when it");
    println!("races with a concurrent enqueue (Mellor-Crummey & Scott, Alg. 5).");
}
