//! Lock-free structures on the simulated primitives: a Treiber stack
//! under three head-pointer disciplines, and a reader-writer lock.
//!
//! Demonstrates §2.2's expressive-power argument in running code: CAS
//! on raw pointers is ABA-vulnerable; a generation counter (the
//! software analogue of §3.1's serial numbers) or LL/SC fixes it.
//!
//! ```sh
//! cargo run --release --example lockfree_structures
//! ```

use atomic_dsm::machine::{Action, MachineBuilder, ProcCtx};
use atomic_dsm::sim::{Addr, Cycle, MachineConfig};
use atomic_dsm::sync::stack::{unpack_node, StackPop, StackPrim, StackPush};
use atomic_dsm::sync::{ShmAlloc, Step, SubMachine};
use atomic_dsm::{SyncConfig, SyncPolicy};
use std::sync::{Arc, Mutex};

fn stack_run(prim: StackPrim, nodes: u32, per_proc: u64) -> (u64, u64, u64) {
    let mut alloc = ShmAlloc::new(32, nodes);
    let top = alloc.word();
    let node_addrs: Vec<Vec<Addr>> = (0..nodes)
        .map(|_| (0..per_proc).map(|_| alloc.array(2)).collect())
        .collect();
    let pops = Arc::new(Mutex::new(0u64));
    let retries = Arc::new(Mutex::new(0u64));

    let mut b = MachineBuilder::new(MachineConfig::with_nodes(nodes));
    b.register_sync(
        top,
        SyncConfig {
            policy: SyncPolicy::Inv,
            ..Default::default()
        },
    );
    for p in 0..nodes {
        let mine = node_addrs[p as usize].clone();
        let pops = Arc::clone(&pops);
        let retries = Arc::clone(&retries);
        let mut round = 0usize;
        let mut pushing = true;
        let mut push: Option<StackPush> = None;
        let mut pop: Option<StackPop> = None;
        b.add_program(move |ctx: &mut ProcCtx<'_>| loop {
            if let Some(m) = &mut push {
                match m.step(ctx.last.take(), ctx.rng) {
                    Step::Op(op) => return Action::Op(op),
                    Step::Compute(c) => return Action::Compute(c),
                    Step::Done => {
                        *retries.lock().unwrap() += m.retries;
                        push = None;
                    }
                }
            }
            if let Some(m) = &mut pop {
                match m.step(ctx.last.take(), ctx.rng) {
                    Step::Op(op) => return Action::Op(op),
                    Step::Compute(c) => return Action::Compute(c),
                    Step::Done => {
                        if m.popped().is_some() {
                            *pops.lock().unwrap() += 1;
                        }
                        *retries.lock().unwrap() += m.retries;
                        pop = None;
                    }
                }
            }
            if round == mine.len() {
                return Action::Done;
            }
            if pushing {
                pushing = false;
                push = Some(StackPush::new(top, mine[round], prim));
            } else {
                pushing = true;
                round += 1;
                pop = Some(StackPop::new(top, prim));
            }
        });
    }
    let mut m = b.build();
    let report = m.run(Cycle::new(1_000_000_000)).expect("completes");
    // Count survivors on the stack.
    let mut survivors = 0;
    let mut cursor = match prim {
        StackPrim::CasCounted => unpack_node(m.read_word(top)),
        _ => m.read_word(top),
    };
    while cursor != 0 {
        survivors += 1;
        cursor = m.read_word(Addr::new(cursor));
    }
    let _ = survivors;
    let result = (
        report.cycles.as_u64(),
        *pops.lock().unwrap(),
        *retries.lock().unwrap(),
    );
    result
}

fn main() {
    const PROCS: u32 = 16;
    const OPS: u64 = 50;

    println!("Treiber stack: {PROCS} procs x {OPS} push/pop pairs (INV policy)\n");
    println!(
        "{:<14} {:>12} {:>10} {:>10}",
        "discipline", "cycles", "pops", "retries"
    );
    for (name, prim) in [
        ("CAS counted", StackPrim::CasCounted),
        ("LL/SC", StackPrim::Llsc),
    ] {
        let (cycles, pops, retries) = stack_run(prim, PROCS, OPS);
        println!("{name:<14} {cycles:>12} {pops:>10} {retries:>10}");
    }
    println!();
    println!("(Plain-pointer CAS is deliberately omitted from the concurrent run —");
    println!(" it corrupts the stack under ABA; see the deterministic demonstration");
    println!(" in crates/sync/src/stack.rs and tests/lockfree_stack.rs.)");
    println!();
    println!("The generation counter doubles the useful payload of every CAS, which");
    println!("is exactly the §3.1 argument for serial-number store_conditionals:");
    println!("the hardware can provide the counter for free.");
}
