//! Quickstart: simulate 16 processors incrementing one shared counter
//! with `fetch_and_add` under each of the three coherence policies, and
//! print what the hardware did.
//!
//! ```sh
//! cargo run --release --example quickstart
//! ```

use atomic_dsm::machine::{Action, MachineBuilder, ProcCtx};
use atomic_dsm::protocol::{MemOp, PhiOp, SyncConfig, SyncPolicy};
use atomic_dsm::sim::{Addr, Cycle, MachineConfig};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    const PROCS: u32 = 16;
    const ITERS: u64 = 200;
    let counter = Addr::new(0x40);

    println!("{PROCS} processors x {ITERS} fetch_and_add(counter, 1) each\n");
    println!(
        "{:<8} {:>12} {:>12} {:>10} {:>12} {:>10}",
        "policy", "cycles", "messages", "msg/op", "mean chain", "local ops"
    );

    for policy in SyncPolicy::ALL {
        let mut b = MachineBuilder::new(MachineConfig::with_nodes(PROCS));
        b.register_sync(
            counter,
            SyncConfig {
                policy,
                ..Default::default()
            },
        );
        for _ in 0..PROCS {
            let mut left = ITERS;
            b.add_program(move |ctx: &mut ProcCtx<'_>| {
                if ctx.last.is_some() {
                    left -= 1;
                }
                if left == 0 {
                    Action::Done
                } else {
                    Action::Op(MemOp::FetchPhi {
                        addr: counter,
                        op: PhiOp::Add(1),
                    })
                }
            });
        }
        let mut m = b.build();
        let report = m.run(Cycle::new(1_000_000_000))?;

        // The whole point of an exact simulator: the count is exact.
        assert_eq!(m.read_word(counter), PROCS as u64 * ITERS);
        m.validate_coherence().map_err(std::io::Error::other)?;

        let s = m.stats();
        println!(
            "{:<8} {:>12} {:>12} {:>10.2} {:>12.2} {:>9.0}%",
            policy.label(),
            report.cycles.as_u64(),
            s.msgs.total_messages(),
            s.msgs.total_messages() as f64 / s.sync_ops as f64,
            s.msgs.chains().mean(),
            100.0 * s.local_fraction(),
        );
    }

    println!("\nUNC keeps every op at 2 serialized messages; INV turns repeat");
    println!("accesses into cache hits; UPD pays update fan-out on every write.");
    Ok(())
}
