//! Compares the four §3.1 schemes for holding LL/SC reservations at
//! the memory: full bit vector, linked list with a bounded free pool,
//! limited-k, and per-line serial numbers.
//!
//! A lock-free LL/SC counter runs under UNC with each scheme; the
//! interesting outputs are the SC failure behaviour and the message
//! bill. The limited-k scheme trades lock-freedom for bounded state:
//! beyond-limit load_linkeds learn they hold no reservation, so their
//! store_conditionals fail locally without network traffic.
//!
//! ```sh
//! cargo run --release --example reservation_schemes
//! ```

use atomic_dsm::machine::{Action, MachineBuilder, ProcCtx};
use atomic_dsm::protocol::{LlscScheme, MemOp, OpResult, SyncConfig, SyncPolicy};
use atomic_dsm::sim::{Addr, Cycle, MachineConfig};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    const PROCS: u32 = 16;
    const ITERS: u64 = 100;
    let counter = Addr::new(0x40);

    let schemes: [(&str, LlscScheme); 5] = [
        ("bit-vector", LlscScheme::BitVector),
        ("linked-list", LlscScheme::LinkedList),
        ("limited-2", LlscScheme::Limited(2)),
        ("limited-4", LlscScheme::Limited(4)),
        ("serial-number", LlscScheme::SerialNumber),
    ];

    println!("{PROCS} processors x {ITERS} LL/SC increments, UNC policy\n");
    println!(
        "{:<14} {:>12} {:>12} {:>14} {:>12}",
        "scheme", "cycles", "messages", "local SC fails", "cyc/update"
    );

    for (name, scheme) in schemes {
        let mut b = MachineBuilder::new(MachineConfig::with_nodes(PROCS));
        b.register_sync(
            counter,
            SyncConfig {
                policy: SyncPolicy::Unc,
                llsc: scheme,
                ..Default::default()
            },
        );
        b.llsc_pool(8); // a deliberately small linked-list free pool
        let local_fails = std::sync::Arc::new(std::sync::atomic::AtomicU64::new(0));
        for _ in 0..PROCS {
            let mut left = ITERS;
            let local_fails = std::sync::Arc::clone(&local_fails);
            b.add_program(move |ctx: &mut ProcCtx<'_>| match ctx.last {
                None => Action::Op(MemOp::LoadLinked { addr: counter }),
                Some(OpResult::Loaded {
                    value,
                    serial,
                    reserved: r,
                }) => {
                    if !r {
                        // A beyond-limit LL: the SC is doomed, so fail it
                        // locally (no network traffic) and retry the LL.
                        local_fails.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
                        return Action::Op(MemOp::LoadLinked { addr: counter });
                    }
                    Action::Op(MemOp::StoreConditional {
                        addr: counter,
                        value: value + 1,
                        serial,
                    })
                }
                Some(OpResult::ScDone { success }) => {
                    if success {
                        left -= 1;
                        if left == 0 {
                            return Action::Done;
                        }
                    }
                    Action::Op(MemOp::LoadLinked { addr: counter })
                }
                other => panic!("unexpected {other:?}"),
            });
        }
        let mut m = b.build();
        let report = m.run(Cycle::new(50_000_000_000))?;
        assert_eq!(m.read_word(counter), PROCS as u64 * ITERS);
        let s = m.stats();
        println!(
            "{:<14} {:>12} {:>12} {:>14} {:>12.0}",
            name,
            report.cycles.as_u64(),
            s.msgs.total_messages(),
            local_fails.load(std::sync::atomic::Ordering::Relaxed),
            report.cycles.as_u64() as f64 / (PROCS as u64 * ITERS) as f64,
        );
    }

    println!("\nThe serial-number scheme also fixes the ABA/pointer problem and");
    println!("permits *bare* store_conditionals — see the MCS-lock discussion in §3.1.");
    Ok(())
}
