//! Trace capture: run a contended `compare_and_swap` counter with the
//! observability layer on, write a Perfetto trace plus a binary ring
//! buffer, and print the per-node metrics the tracer accumulated.
//!
//! ```sh
//! cargo run --release --example trace_capture
//! ```
//!
//! Open the printed `.json` file at <https://ui.perfetto.dev> (or
//! `chrome://tracing`): one process track per node, with the cpu,
//! cache-controller, home-directory and network rows inside it, and
//! arrows linking each network request to the service slice it caused.

use atomic_dsm::machine::{Action, MachineBuilder, ProcCtx};
use atomic_dsm::protocol::{MemOp, SyncConfig, SyncPolicy};
use atomic_dsm::sim::{Addr, Cycle, MachineConfig};
use atomic_dsm::trace::TraceSpec;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    const PROCS: u32 = 16;
    const ITERS: u64 = 50;
    let counter = Addr::new(0x40);

    let mut b = MachineBuilder::new(MachineConfig::with_nodes(PROCS));
    b.register_sync(
        counter,
        SyncConfig {
            policy: SyncPolicy::Inv,
            ..Default::default()
        },
    );
    for _ in 0..PROCS {
        // Each processor increments the counter ITERS times with a
        // load / compare_and_swap retry loop — the paper's lock-free
        // counter — so the trace shows real contention: failed CAS
        // instants, invalidation traffic, directory transitions.
        let mut done_incrs = 0u64;
        b.add_program(move |ctx: &mut ProcCtx<'_>| {
            use atomic_dsm::protocol::OpResult;
            match ctx.last {
                Some(OpResult::Loaded { value, .. }) => {
                    return Action::Op(MemOp::Cas {
                        addr: counter,
                        expected: value,
                        new: value + 1,
                    });
                }
                Some(OpResult::CasDone { success, .. }) => {
                    if success {
                        done_incrs += 1;
                    }
                    if done_incrs == ITERS {
                        return Action::Done;
                    }
                }
                _ => {}
            }
            Action::Op(MemOp::Load { addr: counter })
        });
    }

    // `TraceSpec::from_spec` accepts the same grammar as the
    // `--trace=SPEC` flag and the `DSM_TRACE` variable. This one asks
    // for both sinks: Perfetto JSON into `traces/`, and a 4096-event
    // ring buffer alongside it.
    let spec = TraceSpec::from_spec("perfetto,ring:4096")?;
    b.with_trace(spec);

    let mut machine = b.build();
    machine.run(Cycle::new(50_000_000))?;
    assert_eq!(machine.read_word(counter), PROCS as u64 * ITERS);

    let tracer = machine.tracer().expect("tracing was enabled");
    println!("per-node metrics\n");
    print!("{}", tracer.render_metrics());

    println!("\ntrace files (content-addressed, deterministic):");
    for path in machine.trace_files() {
        println!("  {}", path.display());
    }
    println!("\nopen the .json file at https://ui.perfetto.dev");
    Ok(())
}
