//! Runs the paper's Figure 1 application — parallel transitive closure
//! with a lock-free self-scheduling counter and a scalable tree barrier
//! — under each primitive, verifies the result against a sequential
//! closure, and reports speed and counter contention.
//!
//! ```sh
//! cargo run --release --example transitive_closure
//! ```

use atomic_dsm::sim::{Cycle, MachineConfig};
use atomic_dsm::sync::{PrimChoice, Primitive};
use atomic_dsm::workloads::tclosure::{build_tclosure, read_matrix, sequential_closure, TcConfig};
use atomic_dsm::{SyncConfig, SyncPolicy};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let procs = 16;
    let size = 24;

    println!("transitive closure of a {size}x{size} random digraph on {procs} processors\n");
    println!(
        "{:<6} {:<8} {:>12} {:>10} {:>16}",
        "prim", "policy", "cycles", "msgs/op", "contention>=4"
    );

    for prim in Primitive::ALL {
        for policy in [SyncPolicy::Unc, SyncPolicy::Inv] {
            let cfg = TcConfig {
                size,
                choice: PrimChoice::plain(prim),
                sync: SyncConfig {
                    policy,
                    ..Default::default()
                },
                density: 0.12,
                seed: 2026,
            };
            let (mut m, layout, input) = build_tclosure(MachineConfig::with_nodes(procs), &cfg);
            let report = m.run(Cycle::new(50_000_000_000))?;
            m.validate_coherence().map_err(std::io::Error::other)?;

            let got = read_matrix(&m, &layout, size);
            assert_eq!(got, sequential_closure(&input), "wrong closure!");

            let s = m.stats();
            let h = s.contention.histogram();
            let high = 100.0 - h.cumulative_percentage(3);
            println!(
                "{:<6} {:<8} {:>12} {:>10.2} {:>15.1}%",
                prim.label(),
                policy.label(),
                report.cycles.as_u64(),
                s.msgs.total_messages() as f64 / s.sync_ops.max(1) as f64,
                high,
            );
        }
    }

    println!("\nEvery run verified against the sequential closure. The barrier-");
    println!("driven phases make most counter accesses highly contended, which");
    println!("is exactly why the paper recommends UNC fetch_and_add for counters.");
    Ok(())
}
