/root/repo/target/debug/deps/ablation_dropcopy-af2013b5acc31f43.d: crates/bench/benches/ablation_dropcopy.rs Cargo.toml

/root/repo/target/debug/deps/libablation_dropcopy-af2013b5acc31f43.rmeta: crates/bench/benches/ablation_dropcopy.rs Cargo.toml

crates/bench/benches/ablation_dropcopy.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
