/root/repo/target/debug/deps/ablation_dropcopy-ee862f15ce27d2f6.d: crates/bench/benches/ablation_dropcopy.rs

/root/repo/target/debug/deps/ablation_dropcopy-ee862f15ce27d2f6: crates/bench/benches/ablation_dropcopy.rs

crates/bench/benches/ablation_dropcopy.rs:
