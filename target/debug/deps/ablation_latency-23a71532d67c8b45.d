/root/repo/target/debug/deps/ablation_latency-23a71532d67c8b45.d: crates/bench/benches/ablation_latency.rs

/root/repo/target/debug/deps/ablation_latency-23a71532d67c8b45: crates/bench/benches/ablation_latency.rs

crates/bench/benches/ablation_latency.rs:
