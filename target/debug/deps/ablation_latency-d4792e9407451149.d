/root/repo/target/debug/deps/ablation_latency-d4792e9407451149.d: crates/bench/benches/ablation_latency.rs Cargo.toml

/root/repo/target/debug/deps/libablation_latency-d4792e9407451149.rmeta: crates/bench/benches/ablation_latency.rs Cargo.toml

crates/bench/benches/ablation_latency.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
