/root/repo/target/debug/deps/ablation_mesh-c66fdf11998ba336.d: crates/bench/benches/ablation_mesh.rs

/root/repo/target/debug/deps/ablation_mesh-c66fdf11998ba336: crates/bench/benches/ablation_mesh.rs

crates/bench/benches/ablation_mesh.rs:
