/root/repo/target/debug/deps/ablation_mesh-f9b50c1aa81308ac.d: crates/bench/benches/ablation_mesh.rs Cargo.toml

/root/repo/target/debug/deps/libablation_mesh-f9b50c1aa81308ac.rmeta: crates/bench/benches/ablation_mesh.rs Cargo.toml

crates/bench/benches/ablation_mesh.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
