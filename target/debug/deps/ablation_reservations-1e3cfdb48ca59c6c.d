/root/repo/target/debug/deps/ablation_reservations-1e3cfdb48ca59c6c.d: crates/bench/benches/ablation_reservations.rs Cargo.toml

/root/repo/target/debug/deps/libablation_reservations-1e3cfdb48ca59c6c.rmeta: crates/bench/benches/ablation_reservations.rs Cargo.toml

crates/bench/benches/ablation_reservations.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
