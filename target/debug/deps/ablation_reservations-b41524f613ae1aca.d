/root/repo/target/debug/deps/ablation_reservations-b41524f613ae1aca.d: crates/bench/benches/ablation_reservations.rs

/root/repo/target/debug/deps/ablation_reservations-b41524f613ae1aca: crates/bench/benches/ablation_reservations.rs

crates/bench/benches/ablation_reservations.rs:
