/root/repo/target/debug/deps/ablation_tracedriven-0c291233dab81925.d: crates/bench/benches/ablation_tracedriven.rs Cargo.toml

/root/repo/target/debug/deps/libablation_tracedriven-0c291233dab81925.rmeta: crates/bench/benches/ablation_tracedriven.rs Cargo.toml

crates/bench/benches/ablation_tracedriven.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
