/root/repo/target/debug/deps/ablation_tracedriven-72e20ca7db24c919.d: crates/bench/benches/ablation_tracedriven.rs

/root/repo/target/debug/deps/ablation_tracedriven-72e20ca7db24c919: crates/bench/benches/ablation_tracedriven.rs

crates/bench/benches/ablation_tracedriven.rs:
