/root/repo/target/debug/deps/atomic_dsm-3aacde0906f893e9.d: crates/core/src/lib.rs crates/core/src/experiments/mod.rs crates/core/src/experiments/apps.rs crates/core/src/experiments/counters.rs crates/core/src/experiments/runner.rs crates/core/src/experiments/scaling.rs crates/core/src/experiments/table1.rs

/root/repo/target/debug/deps/libatomic_dsm-3aacde0906f893e9.rlib: crates/core/src/lib.rs crates/core/src/experiments/mod.rs crates/core/src/experiments/apps.rs crates/core/src/experiments/counters.rs crates/core/src/experiments/runner.rs crates/core/src/experiments/scaling.rs crates/core/src/experiments/table1.rs

/root/repo/target/debug/deps/libatomic_dsm-3aacde0906f893e9.rmeta: crates/core/src/lib.rs crates/core/src/experiments/mod.rs crates/core/src/experiments/apps.rs crates/core/src/experiments/counters.rs crates/core/src/experiments/runner.rs crates/core/src/experiments/scaling.rs crates/core/src/experiments/table1.rs

crates/core/src/lib.rs:
crates/core/src/experiments/mod.rs:
crates/core/src/experiments/apps.rs:
crates/core/src/experiments/counters.rs:
crates/core/src/experiments/runner.rs:
crates/core/src/experiments/scaling.rs:
crates/core/src/experiments/table1.rs:
