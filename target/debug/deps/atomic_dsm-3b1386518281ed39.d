/root/repo/target/debug/deps/atomic_dsm-3b1386518281ed39.d: crates/core/src/lib.rs crates/core/src/experiments/mod.rs crates/core/src/experiments/apps.rs crates/core/src/experiments/counters.rs crates/core/src/experiments/runner.rs crates/core/src/experiments/scaling.rs crates/core/src/experiments/table1.rs

/root/repo/target/debug/deps/atomic_dsm-3b1386518281ed39: crates/core/src/lib.rs crates/core/src/experiments/mod.rs crates/core/src/experiments/apps.rs crates/core/src/experiments/counters.rs crates/core/src/experiments/runner.rs crates/core/src/experiments/scaling.rs crates/core/src/experiments/table1.rs

crates/core/src/lib.rs:
crates/core/src/experiments/mod.rs:
crates/core/src/experiments/apps.rs:
crates/core/src/experiments/counters.rs:
crates/core/src/experiments/runner.rs:
crates/core/src/experiments/scaling.rs:
crates/core/src/experiments/table1.rs:
