/root/repo/target/debug/deps/atomic_dsm-f7aafe112c70fd9b.d: crates/core/src/lib.rs crates/core/src/experiments/mod.rs crates/core/src/experiments/apps.rs crates/core/src/experiments/counters.rs crates/core/src/experiments/runner.rs crates/core/src/experiments/scaling.rs crates/core/src/experiments/table1.rs Cargo.toml

/root/repo/target/debug/deps/libatomic_dsm-f7aafe112c70fd9b.rmeta: crates/core/src/lib.rs crates/core/src/experiments/mod.rs crates/core/src/experiments/apps.rs crates/core/src/experiments/counters.rs crates/core/src/experiments/runner.rs crates/core/src/experiments/scaling.rs crates/core/src/experiments/table1.rs Cargo.toml

crates/core/src/lib.rs:
crates/core/src/experiments/mod.rs:
crates/core/src/experiments/apps.rs:
crates/core/src/experiments/counters.rs:
crates/core/src/experiments/runner.rs:
crates/core/src/experiments/scaling.rs:
crates/core/src/experiments/table1.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
