/root/repo/target/debug/deps/bare_sc_mcs-05fed560c1a54aa6.d: crates/core/../../tests/bare_sc_mcs.rs Cargo.toml

/root/repo/target/debug/deps/libbare_sc_mcs-05fed560c1a54aa6.rmeta: crates/core/../../tests/bare_sc_mcs.rs Cargo.toml

crates/core/../../tests/bare_sc_mcs.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
