/root/repo/target/debug/deps/bare_sc_mcs-a893caaabe2ba6a7.d: crates/core/../../tests/bare_sc_mcs.rs

/root/repo/target/debug/deps/bare_sc_mcs-a893caaabe2ba6a7: crates/core/../../tests/bare_sc_mcs.rs

crates/core/../../tests/bare_sc_mcs.rs:
