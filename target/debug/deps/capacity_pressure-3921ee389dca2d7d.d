/root/repo/target/debug/deps/capacity_pressure-3921ee389dca2d7d.d: crates/core/../../tests/capacity_pressure.rs

/root/repo/target/debug/deps/capacity_pressure-3921ee389dca2d7d: crates/core/../../tests/capacity_pressure.rs

crates/core/../../tests/capacity_pressure.rs:
