/root/repo/target/debug/deps/capacity_pressure-5a902643035470d6.d: crates/core/../../tests/capacity_pressure.rs Cargo.toml

/root/repo/target/debug/deps/libcapacity_pressure-5a902643035470d6.rmeta: crates/core/../../tests/capacity_pressure.rs Cargo.toml

crates/core/../../tests/capacity_pressure.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
