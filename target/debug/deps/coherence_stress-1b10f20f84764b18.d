/root/repo/target/debug/deps/coherence_stress-1b10f20f84764b18.d: crates/core/../../tests/coherence_stress.rs

/root/repo/target/debug/deps/coherence_stress-1b10f20f84764b18: crates/core/../../tests/coherence_stress.rs

crates/core/../../tests/coherence_stress.rs:
