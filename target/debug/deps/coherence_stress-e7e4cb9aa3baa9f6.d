/root/repo/target/debug/deps/coherence_stress-e7e4cb9aa3baa9f6.d: crates/core/../../tests/coherence_stress.rs Cargo.toml

/root/repo/target/debug/deps/libcoherence_stress-e7e4cb9aa3baa9f6.rmeta: crates/core/../../tests/coherence_stress.rs Cargo.toml

crates/core/../../tests/coherence_stress.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
