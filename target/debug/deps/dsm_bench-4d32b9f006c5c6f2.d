/root/repo/target/debug/deps/dsm_bench-4d32b9f006c5c6f2.d: crates/bench/src/lib.rs

/root/repo/target/debug/deps/libdsm_bench-4d32b9f006c5c6f2.rlib: crates/bench/src/lib.rs

/root/repo/target/debug/deps/libdsm_bench-4d32b9f006c5c6f2.rmeta: crates/bench/src/lib.rs

crates/bench/src/lib.rs:
