/root/repo/target/debug/deps/dsm_bench-6e0dff5442dffd9b.d: crates/bench/src/lib.rs Cargo.toml

/root/repo/target/debug/deps/libdsm_bench-6e0dff5442dffd9b.rmeta: crates/bench/src/lib.rs Cargo.toml

crates/bench/src/lib.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
