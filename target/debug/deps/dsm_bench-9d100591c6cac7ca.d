/root/repo/target/debug/deps/dsm_bench-9d100591c6cac7ca.d: crates/bench/src/lib.rs

/root/repo/target/debug/deps/dsm_bench-9d100591c6cac7ca: crates/bench/src/lib.rs

crates/bench/src/lib.rs:
