/root/repo/target/debug/deps/dsm_bench-b413eb61ca91b2d8.d: crates/bench/src/lib.rs

/root/repo/target/debug/deps/libdsm_bench-b413eb61ca91b2d8.rlib: crates/bench/src/lib.rs

/root/repo/target/debug/deps/libdsm_bench-b413eb61ca91b2d8.rmeta: crates/bench/src/lib.rs

crates/bench/src/lib.rs:
