/root/repo/target/debug/deps/dsm_bench-c22c06a8e820a0d9.d: crates/bench/src/lib.rs

/root/repo/target/debug/deps/dsm_bench-c22c06a8e820a0d9: crates/bench/src/lib.rs

crates/bench/src/lib.rs:
