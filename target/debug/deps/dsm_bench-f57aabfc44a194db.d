/root/repo/target/debug/deps/dsm_bench-f57aabfc44a194db.d: crates/bench/src/lib.rs Cargo.toml

/root/repo/target/debug/deps/libdsm_bench-f57aabfc44a194db.rmeta: crates/bench/src/lib.rs Cargo.toml

crates/bench/src/lib.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
