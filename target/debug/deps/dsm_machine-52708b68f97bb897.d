/root/repo/target/debug/deps/dsm_machine-52708b68f97bb897.d: crates/machine/src/lib.rs crates/machine/src/machine.rs crates/machine/src/program.rs crates/machine/src/stats.rs crates/machine/src/trace.rs

/root/repo/target/debug/deps/dsm_machine-52708b68f97bb897: crates/machine/src/lib.rs crates/machine/src/machine.rs crates/machine/src/program.rs crates/machine/src/stats.rs crates/machine/src/trace.rs

crates/machine/src/lib.rs:
crates/machine/src/machine.rs:
crates/machine/src/program.rs:
crates/machine/src/stats.rs:
crates/machine/src/trace.rs:
