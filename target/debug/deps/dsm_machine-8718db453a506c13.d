/root/repo/target/debug/deps/dsm_machine-8718db453a506c13.d: crates/machine/src/lib.rs crates/machine/src/machine.rs crates/machine/src/program.rs crates/machine/src/stats.rs crates/machine/src/trace.rs

/root/repo/target/debug/deps/libdsm_machine-8718db453a506c13.rlib: crates/machine/src/lib.rs crates/machine/src/machine.rs crates/machine/src/program.rs crates/machine/src/stats.rs crates/machine/src/trace.rs

/root/repo/target/debug/deps/libdsm_machine-8718db453a506c13.rmeta: crates/machine/src/lib.rs crates/machine/src/machine.rs crates/machine/src/program.rs crates/machine/src/stats.rs crates/machine/src/trace.rs

crates/machine/src/lib.rs:
crates/machine/src/machine.rs:
crates/machine/src/program.rs:
crates/machine/src/stats.rs:
crates/machine/src/trace.rs:
