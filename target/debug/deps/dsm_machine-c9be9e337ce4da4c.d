/root/repo/target/debug/deps/dsm_machine-c9be9e337ce4da4c.d: crates/machine/src/lib.rs crates/machine/src/machine.rs crates/machine/src/program.rs crates/machine/src/stats.rs crates/machine/src/trace.rs Cargo.toml

/root/repo/target/debug/deps/libdsm_machine-c9be9e337ce4da4c.rmeta: crates/machine/src/lib.rs crates/machine/src/machine.rs crates/machine/src/program.rs crates/machine/src/stats.rs crates/machine/src/trace.rs Cargo.toml

crates/machine/src/lib.rs:
crates/machine/src/machine.rs:
crates/machine/src/program.rs:
crates/machine/src/stats.rs:
crates/machine/src/trace.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
