/root/repo/target/debug/deps/dsm_mesh-085756c99a3e2ac2.d: crates/mesh/src/lib.rs crates/mesh/src/latency.rs crates/mesh/src/topology.rs crates/mesh/src/wormhole.rs

/root/repo/target/debug/deps/libdsm_mesh-085756c99a3e2ac2.rlib: crates/mesh/src/lib.rs crates/mesh/src/latency.rs crates/mesh/src/topology.rs crates/mesh/src/wormhole.rs

/root/repo/target/debug/deps/libdsm_mesh-085756c99a3e2ac2.rmeta: crates/mesh/src/lib.rs crates/mesh/src/latency.rs crates/mesh/src/topology.rs crates/mesh/src/wormhole.rs

crates/mesh/src/lib.rs:
crates/mesh/src/latency.rs:
crates/mesh/src/topology.rs:
crates/mesh/src/wormhole.rs:
