/root/repo/target/debug/deps/dsm_mesh-3514465ff6c87783.d: crates/mesh/src/lib.rs crates/mesh/src/latency.rs crates/mesh/src/topology.rs crates/mesh/src/wormhole.rs Cargo.toml

/root/repo/target/debug/deps/libdsm_mesh-3514465ff6c87783.rmeta: crates/mesh/src/lib.rs crates/mesh/src/latency.rs crates/mesh/src/topology.rs crates/mesh/src/wormhole.rs Cargo.toml

crates/mesh/src/lib.rs:
crates/mesh/src/latency.rs:
crates/mesh/src/topology.rs:
crates/mesh/src/wormhole.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
