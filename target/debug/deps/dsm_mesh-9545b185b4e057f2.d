/root/repo/target/debug/deps/dsm_mesh-9545b185b4e057f2.d: crates/mesh/src/lib.rs crates/mesh/src/latency.rs crates/mesh/src/topology.rs crates/mesh/src/wormhole.rs

/root/repo/target/debug/deps/dsm_mesh-9545b185b4e057f2: crates/mesh/src/lib.rs crates/mesh/src/latency.rs crates/mesh/src/topology.rs crates/mesh/src/wormhole.rs

crates/mesh/src/lib.rs:
crates/mesh/src/latency.rs:
crates/mesh/src/topology.rs:
crates/mesh/src/wormhole.rs:
