/root/repo/target/debug/deps/dsm_mint-573faa2f198f053f.d: crates/mint/src/lib.rs crates/mint/src/asm.rs crates/mint/src/cpu.rs crates/mint/src/disasm.rs crates/mint/src/isa.rs

/root/repo/target/debug/deps/libdsm_mint-573faa2f198f053f.rlib: crates/mint/src/lib.rs crates/mint/src/asm.rs crates/mint/src/cpu.rs crates/mint/src/disasm.rs crates/mint/src/isa.rs

/root/repo/target/debug/deps/libdsm_mint-573faa2f198f053f.rmeta: crates/mint/src/lib.rs crates/mint/src/asm.rs crates/mint/src/cpu.rs crates/mint/src/disasm.rs crates/mint/src/isa.rs

crates/mint/src/lib.rs:
crates/mint/src/asm.rs:
crates/mint/src/cpu.rs:
crates/mint/src/disasm.rs:
crates/mint/src/isa.rs:
