/root/repo/target/debug/deps/dsm_mint-997112598f15265a.d: crates/mint/src/lib.rs crates/mint/src/asm.rs crates/mint/src/cpu.rs crates/mint/src/disasm.rs crates/mint/src/isa.rs Cargo.toml

/root/repo/target/debug/deps/libdsm_mint-997112598f15265a.rmeta: crates/mint/src/lib.rs crates/mint/src/asm.rs crates/mint/src/cpu.rs crates/mint/src/disasm.rs crates/mint/src/isa.rs Cargo.toml

crates/mint/src/lib.rs:
crates/mint/src/asm.rs:
crates/mint/src/cpu.rs:
crates/mint/src/disasm.rs:
crates/mint/src/isa.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
