/root/repo/target/debug/deps/dsm_mint-a68aa8f08f651c86.d: crates/mint/src/lib.rs crates/mint/src/asm.rs crates/mint/src/cpu.rs crates/mint/src/disasm.rs crates/mint/src/isa.rs

/root/repo/target/debug/deps/dsm_mint-a68aa8f08f651c86: crates/mint/src/lib.rs crates/mint/src/asm.rs crates/mint/src/cpu.rs crates/mint/src/disasm.rs crates/mint/src/isa.rs

crates/mint/src/lib.rs:
crates/mint/src/asm.rs:
crates/mint/src/cpu.rs:
crates/mint/src/disasm.rs:
crates/mint/src/isa.rs:
