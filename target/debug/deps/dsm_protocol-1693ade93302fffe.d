/root/repo/target/debug/deps/dsm_protocol-1693ade93302fffe.d: crates/protocol/src/lib.rs crates/protocol/src/addrmap.rs crates/protocol/src/cache.rs crates/protocol/src/cachectl.rs crates/protocol/src/data.rs crates/protocol/src/directory.rs crates/protocol/src/error.rs crates/protocol/src/home.rs crates/protocol/src/invariant.rs crates/protocol/src/msg.rs crates/protocol/src/nodeset.rs crates/protocol/src/reservation.rs crates/protocol/src/types.rs

/root/repo/target/debug/deps/libdsm_protocol-1693ade93302fffe.rlib: crates/protocol/src/lib.rs crates/protocol/src/addrmap.rs crates/protocol/src/cache.rs crates/protocol/src/cachectl.rs crates/protocol/src/data.rs crates/protocol/src/directory.rs crates/protocol/src/error.rs crates/protocol/src/home.rs crates/protocol/src/invariant.rs crates/protocol/src/msg.rs crates/protocol/src/nodeset.rs crates/protocol/src/reservation.rs crates/protocol/src/types.rs

/root/repo/target/debug/deps/libdsm_protocol-1693ade93302fffe.rmeta: crates/protocol/src/lib.rs crates/protocol/src/addrmap.rs crates/protocol/src/cache.rs crates/protocol/src/cachectl.rs crates/protocol/src/data.rs crates/protocol/src/directory.rs crates/protocol/src/error.rs crates/protocol/src/home.rs crates/protocol/src/invariant.rs crates/protocol/src/msg.rs crates/protocol/src/nodeset.rs crates/protocol/src/reservation.rs crates/protocol/src/types.rs

crates/protocol/src/lib.rs:
crates/protocol/src/addrmap.rs:
crates/protocol/src/cache.rs:
crates/protocol/src/cachectl.rs:
crates/protocol/src/data.rs:
crates/protocol/src/directory.rs:
crates/protocol/src/error.rs:
crates/protocol/src/home.rs:
crates/protocol/src/invariant.rs:
crates/protocol/src/msg.rs:
crates/protocol/src/nodeset.rs:
crates/protocol/src/reservation.rs:
crates/protocol/src/types.rs:
