/root/repo/target/debug/deps/dsm_protocol-948a4097493365e6.d: crates/protocol/src/lib.rs crates/protocol/src/addrmap.rs crates/protocol/src/cache.rs crates/protocol/src/cachectl.rs crates/protocol/src/data.rs crates/protocol/src/directory.rs crates/protocol/src/error.rs crates/protocol/src/home.rs crates/protocol/src/invariant.rs crates/protocol/src/msg.rs crates/protocol/src/nodeset.rs crates/protocol/src/reservation.rs crates/protocol/src/types.rs Cargo.toml

/root/repo/target/debug/deps/libdsm_protocol-948a4097493365e6.rmeta: crates/protocol/src/lib.rs crates/protocol/src/addrmap.rs crates/protocol/src/cache.rs crates/protocol/src/cachectl.rs crates/protocol/src/data.rs crates/protocol/src/directory.rs crates/protocol/src/error.rs crates/protocol/src/home.rs crates/protocol/src/invariant.rs crates/protocol/src/msg.rs crates/protocol/src/nodeset.rs crates/protocol/src/reservation.rs crates/protocol/src/types.rs Cargo.toml

crates/protocol/src/lib.rs:
crates/protocol/src/addrmap.rs:
crates/protocol/src/cache.rs:
crates/protocol/src/cachectl.rs:
crates/protocol/src/data.rs:
crates/protocol/src/directory.rs:
crates/protocol/src/error.rs:
crates/protocol/src/home.rs:
crates/protocol/src/invariant.rs:
crates/protocol/src/msg.rs:
crates/protocol/src/nodeset.rs:
crates/protocol/src/reservation.rs:
crates/protocol/src/types.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
