/root/repo/target/debug/deps/dsm_sim-5a3c6443b0cf86ef.d: crates/sim/src/lib.rs crates/sim/src/config.rs crates/sim/src/event.rs crates/sim/src/fault.rs crates/sim/src/hash.rs crates/sim/src/ids.rs crates/sim/src/rng.rs crates/sim/src/time.rs

/root/repo/target/debug/deps/dsm_sim-5a3c6443b0cf86ef: crates/sim/src/lib.rs crates/sim/src/config.rs crates/sim/src/event.rs crates/sim/src/fault.rs crates/sim/src/hash.rs crates/sim/src/ids.rs crates/sim/src/rng.rs crates/sim/src/time.rs

crates/sim/src/lib.rs:
crates/sim/src/config.rs:
crates/sim/src/event.rs:
crates/sim/src/fault.rs:
crates/sim/src/hash.rs:
crates/sim/src/ids.rs:
crates/sim/src/rng.rs:
crates/sim/src/time.rs:
