/root/repo/target/debug/deps/dsm_sim-851570cc8ed7163a.d: crates/sim/src/lib.rs crates/sim/src/config.rs crates/sim/src/event.rs crates/sim/src/fault.rs crates/sim/src/hash.rs crates/sim/src/ids.rs crates/sim/src/rng.rs crates/sim/src/time.rs

/root/repo/target/debug/deps/libdsm_sim-851570cc8ed7163a.rlib: crates/sim/src/lib.rs crates/sim/src/config.rs crates/sim/src/event.rs crates/sim/src/fault.rs crates/sim/src/hash.rs crates/sim/src/ids.rs crates/sim/src/rng.rs crates/sim/src/time.rs

/root/repo/target/debug/deps/libdsm_sim-851570cc8ed7163a.rmeta: crates/sim/src/lib.rs crates/sim/src/config.rs crates/sim/src/event.rs crates/sim/src/fault.rs crates/sim/src/hash.rs crates/sim/src/ids.rs crates/sim/src/rng.rs crates/sim/src/time.rs

crates/sim/src/lib.rs:
crates/sim/src/config.rs:
crates/sim/src/event.rs:
crates/sim/src/fault.rs:
crates/sim/src/hash.rs:
crates/sim/src/ids.rs:
crates/sim/src/rng.rs:
crates/sim/src/time.rs:
