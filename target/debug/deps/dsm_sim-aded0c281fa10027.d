/root/repo/target/debug/deps/dsm_sim-aded0c281fa10027.d: crates/sim/src/lib.rs crates/sim/src/config.rs crates/sim/src/event.rs crates/sim/src/fault.rs crates/sim/src/hash.rs crates/sim/src/ids.rs crates/sim/src/rng.rs crates/sim/src/time.rs Cargo.toml

/root/repo/target/debug/deps/libdsm_sim-aded0c281fa10027.rmeta: crates/sim/src/lib.rs crates/sim/src/config.rs crates/sim/src/event.rs crates/sim/src/fault.rs crates/sim/src/hash.rs crates/sim/src/ids.rs crates/sim/src/rng.rs crates/sim/src/time.rs Cargo.toml

crates/sim/src/lib.rs:
crates/sim/src/config.rs:
crates/sim/src/event.rs:
crates/sim/src/fault.rs:
crates/sim/src/hash.rs:
crates/sim/src/ids.rs:
crates/sim/src/rng.rs:
crates/sim/src/time.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
