/root/repo/target/debug/deps/dsm_stats-bcce622b9087b8ee.d: crates/stats/src/lib.rs crates/stats/src/contention.rs crates/stats/src/histogram.rs crates/stats/src/messages.rs crates/stats/src/table.rs crates/stats/src/writerun.rs

/root/repo/target/debug/deps/libdsm_stats-bcce622b9087b8ee.rlib: crates/stats/src/lib.rs crates/stats/src/contention.rs crates/stats/src/histogram.rs crates/stats/src/messages.rs crates/stats/src/table.rs crates/stats/src/writerun.rs

/root/repo/target/debug/deps/libdsm_stats-bcce622b9087b8ee.rmeta: crates/stats/src/lib.rs crates/stats/src/contention.rs crates/stats/src/histogram.rs crates/stats/src/messages.rs crates/stats/src/table.rs crates/stats/src/writerun.rs

crates/stats/src/lib.rs:
crates/stats/src/contention.rs:
crates/stats/src/histogram.rs:
crates/stats/src/messages.rs:
crates/stats/src/table.rs:
crates/stats/src/writerun.rs:
