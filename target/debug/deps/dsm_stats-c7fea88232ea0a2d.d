/root/repo/target/debug/deps/dsm_stats-c7fea88232ea0a2d.d: crates/stats/src/lib.rs crates/stats/src/contention.rs crates/stats/src/histogram.rs crates/stats/src/messages.rs crates/stats/src/table.rs crates/stats/src/writerun.rs

/root/repo/target/debug/deps/dsm_stats-c7fea88232ea0a2d: crates/stats/src/lib.rs crates/stats/src/contention.rs crates/stats/src/histogram.rs crates/stats/src/messages.rs crates/stats/src/table.rs crates/stats/src/writerun.rs

crates/stats/src/lib.rs:
crates/stats/src/contention.rs:
crates/stats/src/histogram.rs:
crates/stats/src/messages.rs:
crates/stats/src/table.rs:
crates/stats/src/writerun.rs:
