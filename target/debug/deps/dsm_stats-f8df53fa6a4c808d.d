/root/repo/target/debug/deps/dsm_stats-f8df53fa6a4c808d.d: crates/stats/src/lib.rs crates/stats/src/contention.rs crates/stats/src/histogram.rs crates/stats/src/messages.rs crates/stats/src/table.rs crates/stats/src/writerun.rs Cargo.toml

/root/repo/target/debug/deps/libdsm_stats-f8df53fa6a4c808d.rmeta: crates/stats/src/lib.rs crates/stats/src/contention.rs crates/stats/src/histogram.rs crates/stats/src/messages.rs crates/stats/src/table.rs crates/stats/src/writerun.rs Cargo.toml

crates/stats/src/lib.rs:
crates/stats/src/contention.rs:
crates/stats/src/histogram.rs:
crates/stats/src/messages.rs:
crates/stats/src/table.rs:
crates/stats/src/writerun.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
