/root/repo/target/debug/deps/dsm_sync-1d70904eb7436873.d: crates/sync/src/lib.rs crates/sync/src/alloc.rs crates/sync/src/backoff.rs crates/sync/src/barrier.rs crates/sync/src/counter.rs crates/sync/src/mcs.rs crates/sync/src/primitive.rs crates/sync/src/rwlock.rs crates/sync/src/stack.rs crates/sync/src/submachine.rs crates/sync/src/tts.rs

/root/repo/target/debug/deps/libdsm_sync-1d70904eb7436873.rlib: crates/sync/src/lib.rs crates/sync/src/alloc.rs crates/sync/src/backoff.rs crates/sync/src/barrier.rs crates/sync/src/counter.rs crates/sync/src/mcs.rs crates/sync/src/primitive.rs crates/sync/src/rwlock.rs crates/sync/src/stack.rs crates/sync/src/submachine.rs crates/sync/src/tts.rs

/root/repo/target/debug/deps/libdsm_sync-1d70904eb7436873.rmeta: crates/sync/src/lib.rs crates/sync/src/alloc.rs crates/sync/src/backoff.rs crates/sync/src/barrier.rs crates/sync/src/counter.rs crates/sync/src/mcs.rs crates/sync/src/primitive.rs crates/sync/src/rwlock.rs crates/sync/src/stack.rs crates/sync/src/submachine.rs crates/sync/src/tts.rs

crates/sync/src/lib.rs:
crates/sync/src/alloc.rs:
crates/sync/src/backoff.rs:
crates/sync/src/barrier.rs:
crates/sync/src/counter.rs:
crates/sync/src/mcs.rs:
crates/sync/src/primitive.rs:
crates/sync/src/rwlock.rs:
crates/sync/src/stack.rs:
crates/sync/src/submachine.rs:
crates/sync/src/tts.rs:
