/root/repo/target/debug/deps/dsm_sync-a4075888561c5686.d: crates/sync/src/lib.rs crates/sync/src/alloc.rs crates/sync/src/backoff.rs crates/sync/src/barrier.rs crates/sync/src/counter.rs crates/sync/src/mcs.rs crates/sync/src/primitive.rs crates/sync/src/rwlock.rs crates/sync/src/stack.rs crates/sync/src/submachine.rs crates/sync/src/tts.rs Cargo.toml

/root/repo/target/debug/deps/libdsm_sync-a4075888561c5686.rmeta: crates/sync/src/lib.rs crates/sync/src/alloc.rs crates/sync/src/backoff.rs crates/sync/src/barrier.rs crates/sync/src/counter.rs crates/sync/src/mcs.rs crates/sync/src/primitive.rs crates/sync/src/rwlock.rs crates/sync/src/stack.rs crates/sync/src/submachine.rs crates/sync/src/tts.rs Cargo.toml

crates/sync/src/lib.rs:
crates/sync/src/alloc.rs:
crates/sync/src/backoff.rs:
crates/sync/src/barrier.rs:
crates/sync/src/counter.rs:
crates/sync/src/mcs.rs:
crates/sync/src/primitive.rs:
crates/sync/src/rwlock.rs:
crates/sync/src/stack.rs:
crates/sync/src/submachine.rs:
crates/sync/src/tts.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
