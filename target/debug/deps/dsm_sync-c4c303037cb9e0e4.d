/root/repo/target/debug/deps/dsm_sync-c4c303037cb9e0e4.d: crates/sync/src/lib.rs crates/sync/src/alloc.rs crates/sync/src/backoff.rs crates/sync/src/barrier.rs crates/sync/src/counter.rs crates/sync/src/mcs.rs crates/sync/src/primitive.rs crates/sync/src/rwlock.rs crates/sync/src/stack.rs crates/sync/src/submachine.rs crates/sync/src/tts.rs

/root/repo/target/debug/deps/dsm_sync-c4c303037cb9e0e4: crates/sync/src/lib.rs crates/sync/src/alloc.rs crates/sync/src/backoff.rs crates/sync/src/barrier.rs crates/sync/src/counter.rs crates/sync/src/mcs.rs crates/sync/src/primitive.rs crates/sync/src/rwlock.rs crates/sync/src/stack.rs crates/sync/src/submachine.rs crates/sync/src/tts.rs

crates/sync/src/lib.rs:
crates/sync/src/alloc.rs:
crates/sync/src/backoff.rs:
crates/sync/src/barrier.rs:
crates/sync/src/counter.rs:
crates/sync/src/mcs.rs:
crates/sync/src/primitive.rs:
crates/sync/src/rwlock.rs:
crates/sync/src/stack.rs:
crates/sync/src/submachine.rs:
crates/sync/src/tts.rs:
