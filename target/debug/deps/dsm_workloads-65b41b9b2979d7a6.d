/root/repo/target/debug/deps/dsm_workloads-65b41b9b2979d7a6.d: crates/workloads/src/lib.rs crates/workloads/src/cholesky.rs crates/workloads/src/driver.rs crates/workloads/src/locked.rs crates/workloads/src/synthetic.rs crates/workloads/src/tclosure.rs crates/workloads/src/wire_route.rs Cargo.toml

/root/repo/target/debug/deps/libdsm_workloads-65b41b9b2979d7a6.rmeta: crates/workloads/src/lib.rs crates/workloads/src/cholesky.rs crates/workloads/src/driver.rs crates/workloads/src/locked.rs crates/workloads/src/synthetic.rs crates/workloads/src/tclosure.rs crates/workloads/src/wire_route.rs Cargo.toml

crates/workloads/src/lib.rs:
crates/workloads/src/cholesky.rs:
crates/workloads/src/driver.rs:
crates/workloads/src/locked.rs:
crates/workloads/src/synthetic.rs:
crates/workloads/src/tclosure.rs:
crates/workloads/src/wire_route.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
