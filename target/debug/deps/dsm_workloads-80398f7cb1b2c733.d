/root/repo/target/debug/deps/dsm_workloads-80398f7cb1b2c733.d: crates/workloads/src/lib.rs crates/workloads/src/cholesky.rs crates/workloads/src/driver.rs crates/workloads/src/locked.rs crates/workloads/src/synthetic.rs crates/workloads/src/tclosure.rs crates/workloads/src/wire_route.rs

/root/repo/target/debug/deps/libdsm_workloads-80398f7cb1b2c733.rlib: crates/workloads/src/lib.rs crates/workloads/src/cholesky.rs crates/workloads/src/driver.rs crates/workloads/src/locked.rs crates/workloads/src/synthetic.rs crates/workloads/src/tclosure.rs crates/workloads/src/wire_route.rs

/root/repo/target/debug/deps/libdsm_workloads-80398f7cb1b2c733.rmeta: crates/workloads/src/lib.rs crates/workloads/src/cholesky.rs crates/workloads/src/driver.rs crates/workloads/src/locked.rs crates/workloads/src/synthetic.rs crates/workloads/src/tclosure.rs crates/workloads/src/wire_route.rs

crates/workloads/src/lib.rs:
crates/workloads/src/cholesky.rs:
crates/workloads/src/driver.rs:
crates/workloads/src/locked.rs:
crates/workloads/src/synthetic.rs:
crates/workloads/src/tclosure.rs:
crates/workloads/src/wire_route.rs:
