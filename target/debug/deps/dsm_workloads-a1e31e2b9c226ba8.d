/root/repo/target/debug/deps/dsm_workloads-a1e31e2b9c226ba8.d: crates/workloads/src/lib.rs crates/workloads/src/cholesky.rs crates/workloads/src/driver.rs crates/workloads/src/locked.rs crates/workloads/src/synthetic.rs crates/workloads/src/tclosure.rs crates/workloads/src/wire_route.rs

/root/repo/target/debug/deps/dsm_workloads-a1e31e2b9c226ba8: crates/workloads/src/lib.rs crates/workloads/src/cholesky.rs crates/workloads/src/driver.rs crates/workloads/src/locked.rs crates/workloads/src/synthetic.rs crates/workloads/src/tclosure.rs crates/workloads/src/wire_route.rs

crates/workloads/src/lib.rs:
crates/workloads/src/cholesky.rs:
crates/workloads/src/driver.rs:
crates/workloads/src/locked.rs:
crates/workloads/src/synthetic.rs:
crates/workloads/src/tclosure.rs:
crates/workloads/src/wire_route.rs:
