/root/repo/target/debug/deps/fault_injection-00e3b7c7072fab46.d: crates/core/../../tests/fault_injection.rs

/root/repo/target/debug/deps/fault_injection-00e3b7c7072fab46: crates/core/../../tests/fault_injection.rs

crates/core/../../tests/fault_injection.rs:
