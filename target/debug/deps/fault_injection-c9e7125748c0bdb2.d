/root/repo/target/debug/deps/fault_injection-c9e7125748c0bdb2.d: crates/core/../../tests/fault_injection.rs Cargo.toml

/root/repo/target/debug/deps/libfault_injection-c9e7125748c0bdb2.rmeta: crates/core/../../tests/fault_injection.rs Cargo.toml

crates/core/../../tests/fault_injection.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
