/root/repo/target/debug/deps/fig2-10e126e69d2d99c2.d: crates/bench/benches/fig2.rs

/root/repo/target/debug/deps/fig2-10e126e69d2d99c2: crates/bench/benches/fig2.rs

crates/bench/benches/fig2.rs:
