/root/repo/target/debug/deps/fig3-6a11bd0fd68617d9.d: crates/bench/benches/fig3.rs Cargo.toml

/root/repo/target/debug/deps/libfig3-6a11bd0fd68617d9.rmeta: crates/bench/benches/fig3.rs Cargo.toml

crates/bench/benches/fig3.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
