/root/repo/target/debug/deps/fig3-fa049c1f81f089e0.d: crates/bench/benches/fig3.rs

/root/repo/target/debug/deps/fig3-fa049c1f81f089e0: crates/bench/benches/fig3.rs

crates/bench/benches/fig3.rs:
