/root/repo/target/debug/deps/fig4-9defaa0aa122ca6c.d: crates/bench/benches/fig4.rs

/root/repo/target/debug/deps/fig4-9defaa0aa122ca6c: crates/bench/benches/fig4.rs

crates/bench/benches/fig4.rs:
