/root/repo/target/debug/deps/fig5-80d54c86dc5e1ab4.d: crates/bench/benches/fig5.rs

/root/repo/target/debug/deps/fig5-80d54c86dc5e1ab4: crates/bench/benches/fig5.rs

crates/bench/benches/fig5.rs:
