/root/repo/target/debug/deps/fig6-b62a47d8a005a135.d: crates/bench/benches/fig6.rs Cargo.toml

/root/repo/target/debug/deps/libfig6-b62a47d8a005a135.rmeta: crates/bench/benches/fig6.rs Cargo.toml

crates/bench/benches/fig6.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
