/root/repo/target/debug/deps/fig6-ec70ff6a338013a1.d: crates/bench/benches/fig6.rs

/root/repo/target/debug/deps/fig6-ec70ff6a338013a1: crates/bench/benches/fig6.rs

crates/bench/benches/fig6.rs:
