/root/repo/target/debug/deps/figures-2afbb426a48c23b6.d: crates/bench/src/bin/figures.rs Cargo.toml

/root/repo/target/debug/deps/libfigures-2afbb426a48c23b6.rmeta: crates/bench/src/bin/figures.rs Cargo.toml

crates/bench/src/bin/figures.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
