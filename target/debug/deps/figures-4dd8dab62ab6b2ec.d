/root/repo/target/debug/deps/figures-4dd8dab62ab6b2ec.d: crates/bench/src/bin/figures.rs

/root/repo/target/debug/deps/figures-4dd8dab62ab6b2ec: crates/bench/src/bin/figures.rs

crates/bench/src/bin/figures.rs:
