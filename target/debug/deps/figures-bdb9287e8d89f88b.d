/root/repo/target/debug/deps/figures-bdb9287e8d89f88b.d: crates/bench/src/bin/figures.rs Cargo.toml

/root/repo/target/debug/deps/libfigures-bdb9287e8d89f88b.rmeta: crates/bench/src/bin/figures.rs Cargo.toml

crates/bench/src/bin/figures.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
