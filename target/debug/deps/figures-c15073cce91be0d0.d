/root/repo/target/debug/deps/figures-c15073cce91be0d0.d: crates/bench/src/bin/figures.rs

/root/repo/target/debug/deps/figures-c15073cce91be0d0: crates/bench/src/bin/figures.rs

crates/bench/src/bin/figures.rs:
