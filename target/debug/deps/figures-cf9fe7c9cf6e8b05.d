/root/repo/target/debug/deps/figures-cf9fe7c9cf6e8b05.d: crates/bench/src/bin/figures.rs

/root/repo/target/debug/deps/figures-cf9fe7c9cf6e8b05: crates/bench/src/bin/figures.rs

crates/bench/src/bin/figures.rs:
