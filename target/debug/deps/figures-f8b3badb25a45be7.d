/root/repo/target/debug/deps/figures-f8b3badb25a45be7.d: crates/bench/src/bin/figures.rs Cargo.toml

/root/repo/target/debug/deps/libfigures-f8b3badb25a45be7.rmeta: crates/bench/src/bin/figures.rs Cargo.toml

crates/bench/src/bin/figures.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
