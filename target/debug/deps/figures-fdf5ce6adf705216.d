/root/repo/target/debug/deps/figures-fdf5ce6adf705216.d: crates/bench/src/bin/figures.rs

/root/repo/target/debug/deps/figures-fdf5ce6adf705216: crates/bench/src/bin/figures.rs

crates/bench/src/bin/figures.rs:
