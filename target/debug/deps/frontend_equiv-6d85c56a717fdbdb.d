/root/repo/target/debug/deps/frontend_equiv-6d85c56a717fdbdb.d: crates/mint/tests/frontend_equiv.rs Cargo.toml

/root/repo/target/debug/deps/libfrontend_equiv-6d85c56a717fdbdb.rmeta: crates/mint/tests/frontend_equiv.rs Cargo.toml

crates/mint/tests/frontend_equiv.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
