/root/repo/target/debug/deps/frontend_equiv-cf98c42cf227ea1c.d: crates/mint/tests/frontend_equiv.rs

/root/repo/target/debug/deps/frontend_equiv-cf98c42cf227ea1c: crates/mint/tests/frontend_equiv.rs

crates/mint/tests/frontend_equiv.rs:
