/root/repo/target/debug/deps/interleavings-24783ee5f1c5f290.d: crates/protocol/tests/interleavings.rs

/root/repo/target/debug/deps/interleavings-24783ee5f1c5f290: crates/protocol/tests/interleavings.rs

crates/protocol/tests/interleavings.rs:
