/root/repo/target/debug/deps/interleavings-7373db77c0bdcb5b.d: crates/protocol/tests/interleavings.rs Cargo.toml

/root/repo/target/debug/deps/libinterleavings-7373db77c0bdcb5b.rmeta: crates/protocol/tests/interleavings.rs Cargo.toml

crates/protocol/tests/interleavings.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
