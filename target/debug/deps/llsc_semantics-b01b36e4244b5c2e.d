/root/repo/target/debug/deps/llsc_semantics-b01b36e4244b5c2e.d: crates/core/../../tests/llsc_semantics.rs

/root/repo/target/debug/deps/llsc_semantics-b01b36e4244b5c2e: crates/core/../../tests/llsc_semantics.rs

crates/core/../../tests/llsc_semantics.rs:
