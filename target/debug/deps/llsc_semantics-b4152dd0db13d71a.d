/root/repo/target/debug/deps/llsc_semantics-b4152dd0db13d71a.d: crates/core/../../tests/llsc_semantics.rs Cargo.toml

/root/repo/target/debug/deps/libllsc_semantics-b4152dd0db13d71a.rmeta: crates/core/../../tests/llsc_semantics.rs Cargo.toml

crates/core/../../tests/llsc_semantics.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
