/root/repo/target/debug/deps/lockfree_stack-48ab4773b78dac42.d: crates/core/../../tests/lockfree_stack.rs

/root/repo/target/debug/deps/lockfree_stack-48ab4773b78dac42: crates/core/../../tests/lockfree_stack.rs

crates/core/../../tests/lockfree_stack.rs:
