/root/repo/target/debug/deps/lockfree_stack-49a3e3de0090950b.d: crates/core/../../tests/lockfree_stack.rs Cargo.toml

/root/repo/target/debug/deps/liblockfree_stack-49a3e3de0090950b.rmeta: crates/core/../../tests/lockfree_stack.rs Cargo.toml

crates/core/../../tests/lockfree_stack.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
