/root/repo/target/debug/deps/mcs_assembly-07c634722cc1509a.d: crates/mint/tests/mcs_assembly.rs

/root/repo/target/debug/deps/mcs_assembly-07c634722cc1509a: crates/mint/tests/mcs_assembly.rs

crates/mint/tests/mcs_assembly.rs:
