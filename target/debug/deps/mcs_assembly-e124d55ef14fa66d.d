/root/repo/target/debug/deps/mcs_assembly-e124d55ef14fa66d.d: crates/mint/tests/mcs_assembly.rs Cargo.toml

/root/repo/target/debug/deps/libmcs_assembly-e124d55ef14fa66d.rmeta: crates/mint/tests/mcs_assembly.rs Cargo.toml

crates/mint/tests/mcs_assembly.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
