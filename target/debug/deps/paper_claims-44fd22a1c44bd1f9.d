/root/repo/target/debug/deps/paper_claims-44fd22a1c44bd1f9.d: crates/core/../../tests/paper_claims.rs

/root/repo/target/debug/deps/paper_claims-44fd22a1c44bd1f9: crates/core/../../tests/paper_claims.rs

crates/core/../../tests/paper_claims.rs:
