/root/repo/target/debug/deps/paper_claims-f50612d3b4a4e170.d: crates/core/../../tests/paper_claims.rs Cargo.toml

/root/repo/target/debug/deps/libpaper_claims-f50612d3b4a4e170.rmeta: crates/core/../../tests/paper_claims.rs Cargo.toml

crates/core/../../tests/paper_claims.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
