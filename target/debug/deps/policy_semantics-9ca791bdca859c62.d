/root/repo/target/debug/deps/policy_semantics-9ca791bdca859c62.d: crates/core/../../tests/policy_semantics.rs Cargo.toml

/root/repo/target/debug/deps/libpolicy_semantics-9ca791bdca859c62.rmeta: crates/core/../../tests/policy_semantics.rs Cargo.toml

crates/core/../../tests/policy_semantics.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
