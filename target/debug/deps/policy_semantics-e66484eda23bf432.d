/root/repo/target/debug/deps/policy_semantics-e66484eda23bf432.d: crates/core/../../tests/policy_semantics.rs

/root/repo/target/debug/deps/policy_semantics-e66484eda23bf432: crates/core/../../tests/policy_semantics.rs

crates/core/../../tests/policy_semantics.rs:
