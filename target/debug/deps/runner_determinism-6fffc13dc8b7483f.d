/root/repo/target/debug/deps/runner_determinism-6fffc13dc8b7483f.d: crates/core/../../tests/runner_determinism.rs Cargo.toml

/root/repo/target/debug/deps/librunner_determinism-6fffc13dc8b7483f.rmeta: crates/core/../../tests/runner_determinism.rs Cargo.toml

crates/core/../../tests/runner_determinism.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
