/root/repo/target/debug/deps/runner_determinism-a2a5c7b38d4d4150.d: crates/core/../../tests/runner_determinism.rs

/root/repo/target/debug/deps/runner_determinism-a2a5c7b38d4d4150: crates/core/../../tests/runner_determinism.rs

crates/core/../../tests/runner_determinism.rs:
