/root/repo/target/debug/deps/rwlock-3eb644f05e95e8ff.d: crates/core/../../tests/rwlock.rs

/root/repo/target/debug/deps/rwlock-3eb644f05e95e8ff: crates/core/../../tests/rwlock.rs

crates/core/../../tests/rwlock.rs:
