/root/repo/target/debug/deps/rwlock-87347cbd32828134.d: crates/core/../../tests/rwlock.rs Cargo.toml

/root/repo/target/debug/deps/librwlock-87347cbd32828134.rmeta: crates/core/../../tests/rwlock.rs Cargo.toml

crates/core/../../tests/rwlock.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
