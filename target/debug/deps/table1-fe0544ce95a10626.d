/root/repo/target/debug/deps/table1-fe0544ce95a10626.d: crates/bench/benches/table1.rs

/root/repo/target/debug/deps/table1-fe0544ce95a10626: crates/bench/benches/table1.rs

crates/bench/benches/table1.rs:
