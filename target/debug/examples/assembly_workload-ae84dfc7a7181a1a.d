/root/repo/target/debug/examples/assembly_workload-ae84dfc7a7181a1a.d: crates/core/../../examples/assembly_workload.rs

/root/repo/target/debug/examples/assembly_workload-ae84dfc7a7181a1a: crates/core/../../examples/assembly_workload.rs

crates/core/../../examples/assembly_workload.rs:
