/root/repo/target/debug/examples/assembly_workload-ed9ea23b7c499e5d.d: crates/core/../../examples/assembly_workload.rs Cargo.toml

/root/repo/target/debug/examples/libassembly_workload-ed9ea23b7c499e5d.rmeta: crates/core/../../examples/assembly_workload.rs Cargo.toml

crates/core/../../examples/assembly_workload.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
