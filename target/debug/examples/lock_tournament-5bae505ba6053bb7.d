/root/repo/target/debug/examples/lock_tournament-5bae505ba6053bb7.d: crates/core/../../examples/lock_tournament.rs

/root/repo/target/debug/examples/lock_tournament-5bae505ba6053bb7: crates/core/../../examples/lock_tournament.rs

crates/core/../../examples/lock_tournament.rs:
