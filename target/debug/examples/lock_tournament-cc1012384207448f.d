/root/repo/target/debug/examples/lock_tournament-cc1012384207448f.d: crates/core/../../examples/lock_tournament.rs Cargo.toml

/root/repo/target/debug/examples/liblock_tournament-cc1012384207448f.rmeta: crates/core/../../examples/lock_tournament.rs Cargo.toml

crates/core/../../examples/lock_tournament.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
