/root/repo/target/debug/examples/lockfree_structures-b10129d31e84ee98.d: crates/core/../../examples/lockfree_structures.rs Cargo.toml

/root/repo/target/debug/examples/liblockfree_structures-b10129d31e84ee98.rmeta: crates/core/../../examples/lockfree_structures.rs Cargo.toml

crates/core/../../examples/lockfree_structures.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
