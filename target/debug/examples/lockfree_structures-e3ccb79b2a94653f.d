/root/repo/target/debug/examples/lockfree_structures-e3ccb79b2a94653f.d: crates/core/../../examples/lockfree_structures.rs

/root/repo/target/debug/examples/lockfree_structures-e3ccb79b2a94653f: crates/core/../../examples/lockfree_structures.rs

crates/core/../../examples/lockfree_structures.rs:
