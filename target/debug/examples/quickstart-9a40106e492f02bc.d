/root/repo/target/debug/examples/quickstart-9a40106e492f02bc.d: crates/core/../../examples/quickstart.rs

/root/repo/target/debug/examples/quickstart-9a40106e492f02bc: crates/core/../../examples/quickstart.rs

crates/core/../../examples/quickstart.rs:
