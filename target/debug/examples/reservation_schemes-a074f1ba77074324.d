/root/repo/target/debug/examples/reservation_schemes-a074f1ba77074324.d: crates/core/../../examples/reservation_schemes.rs Cargo.toml

/root/repo/target/debug/examples/libreservation_schemes-a074f1ba77074324.rmeta: crates/core/../../examples/reservation_schemes.rs Cargo.toml

crates/core/../../examples/reservation_schemes.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
