/root/repo/target/debug/examples/reservation_schemes-b76f1dcd889f0ad5.d: crates/core/../../examples/reservation_schemes.rs

/root/repo/target/debug/examples/reservation_schemes-b76f1dcd889f0ad5: crates/core/../../examples/reservation_schemes.rs

crates/core/../../examples/reservation_schemes.rs:
