/root/repo/target/debug/examples/transitive_closure-57702aa00cb8cef2.d: crates/core/../../examples/transitive_closure.rs Cargo.toml

/root/repo/target/debug/examples/libtransitive_closure-57702aa00cb8cef2.rmeta: crates/core/../../examples/transitive_closure.rs Cargo.toml

crates/core/../../examples/transitive_closure.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
