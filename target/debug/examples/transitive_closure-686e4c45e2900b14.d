/root/repo/target/debug/examples/transitive_closure-686e4c45e2900b14.d: crates/core/../../examples/transitive_closure.rs

/root/repo/target/debug/examples/transitive_closure-686e4c45e2900b14: crates/core/../../examples/transitive_closure.rs

crates/core/../../examples/transitive_closure.rs:
