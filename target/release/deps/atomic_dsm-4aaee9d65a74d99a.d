/root/repo/target/release/deps/atomic_dsm-4aaee9d65a74d99a.d: crates/core/src/lib.rs crates/core/src/experiments/mod.rs crates/core/src/experiments/apps.rs crates/core/src/experiments/counters.rs crates/core/src/experiments/runner.rs crates/core/src/experiments/scaling.rs crates/core/src/experiments/table1.rs

/root/repo/target/release/deps/libatomic_dsm-4aaee9d65a74d99a.rlib: crates/core/src/lib.rs crates/core/src/experiments/mod.rs crates/core/src/experiments/apps.rs crates/core/src/experiments/counters.rs crates/core/src/experiments/runner.rs crates/core/src/experiments/scaling.rs crates/core/src/experiments/table1.rs

/root/repo/target/release/deps/libatomic_dsm-4aaee9d65a74d99a.rmeta: crates/core/src/lib.rs crates/core/src/experiments/mod.rs crates/core/src/experiments/apps.rs crates/core/src/experiments/counters.rs crates/core/src/experiments/runner.rs crates/core/src/experiments/scaling.rs crates/core/src/experiments/table1.rs

crates/core/src/lib.rs:
crates/core/src/experiments/mod.rs:
crates/core/src/experiments/apps.rs:
crates/core/src/experiments/counters.rs:
crates/core/src/experiments/runner.rs:
crates/core/src/experiments/scaling.rs:
crates/core/src/experiments/table1.rs:
