/root/repo/target/release/deps/atomic_dsm-df7c32a9443b57b5.d: crates/core/src/lib.rs crates/core/src/experiments/mod.rs crates/core/src/experiments/apps.rs crates/core/src/experiments/counters.rs crates/core/src/experiments/scaling.rs crates/core/src/experiments/table1.rs

/root/repo/target/release/deps/atomic_dsm-df7c32a9443b57b5: crates/core/src/lib.rs crates/core/src/experiments/mod.rs crates/core/src/experiments/apps.rs crates/core/src/experiments/counters.rs crates/core/src/experiments/scaling.rs crates/core/src/experiments/table1.rs

crates/core/src/lib.rs:
crates/core/src/experiments/mod.rs:
crates/core/src/experiments/apps.rs:
crates/core/src/experiments/counters.rs:
crates/core/src/experiments/scaling.rs:
crates/core/src/experiments/table1.rs:
