/root/repo/target/release/deps/bare_sc_mcs-23c63338f56b62f3.d: crates/core/../../tests/bare_sc_mcs.rs

/root/repo/target/release/deps/bare_sc_mcs-23c63338f56b62f3: crates/core/../../tests/bare_sc_mcs.rs

crates/core/../../tests/bare_sc_mcs.rs:
