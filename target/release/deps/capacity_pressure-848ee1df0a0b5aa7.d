/root/repo/target/release/deps/capacity_pressure-848ee1df0a0b5aa7.d: crates/core/../../tests/capacity_pressure.rs

/root/repo/target/release/deps/capacity_pressure-848ee1df0a0b5aa7: crates/core/../../tests/capacity_pressure.rs

crates/core/../../tests/capacity_pressure.rs:
