/root/repo/target/release/deps/coherence_stress-292e735ff6827a95.d: crates/core/../../tests/coherence_stress.rs

/root/repo/target/release/deps/coherence_stress-292e735ff6827a95: crates/core/../../tests/coherence_stress.rs

crates/core/../../tests/coherence_stress.rs:
