/root/repo/target/release/deps/dsm_bench-1eac44d1ff8c5d4f.d: crates/bench/src/lib.rs

/root/repo/target/release/deps/dsm_bench-1eac44d1ff8c5d4f: crates/bench/src/lib.rs

crates/bench/src/lib.rs:
