/root/repo/target/release/deps/dsm_bench-79fd4fc83187a8e2.d: crates/bench/src/lib.rs

/root/repo/target/release/deps/libdsm_bench-79fd4fc83187a8e2.rlib: crates/bench/src/lib.rs

/root/repo/target/release/deps/libdsm_bench-79fd4fc83187a8e2.rmeta: crates/bench/src/lib.rs

crates/bench/src/lib.rs:
