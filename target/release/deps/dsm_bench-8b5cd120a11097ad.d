/root/repo/target/release/deps/dsm_bench-8b5cd120a11097ad.d: crates/bench/src/lib.rs

/root/repo/target/release/deps/libdsm_bench-8b5cd120a11097ad.rlib: crates/bench/src/lib.rs

/root/repo/target/release/deps/libdsm_bench-8b5cd120a11097ad.rmeta: crates/bench/src/lib.rs

crates/bench/src/lib.rs:
