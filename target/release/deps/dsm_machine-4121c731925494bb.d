/root/repo/target/release/deps/dsm_machine-4121c731925494bb.d: crates/machine/src/lib.rs crates/machine/src/machine.rs crates/machine/src/program.rs crates/machine/src/stats.rs crates/machine/src/trace.rs

/root/repo/target/release/deps/libdsm_machine-4121c731925494bb.rlib: crates/machine/src/lib.rs crates/machine/src/machine.rs crates/machine/src/program.rs crates/machine/src/stats.rs crates/machine/src/trace.rs

/root/repo/target/release/deps/libdsm_machine-4121c731925494bb.rmeta: crates/machine/src/lib.rs crates/machine/src/machine.rs crates/machine/src/program.rs crates/machine/src/stats.rs crates/machine/src/trace.rs

crates/machine/src/lib.rs:
crates/machine/src/machine.rs:
crates/machine/src/program.rs:
crates/machine/src/stats.rs:
crates/machine/src/trace.rs:
