/root/repo/target/release/deps/dsm_machine-ba1a07d4ae048549.d: crates/machine/src/lib.rs crates/machine/src/machine.rs crates/machine/src/program.rs crates/machine/src/stats.rs crates/machine/src/trace.rs

/root/repo/target/release/deps/dsm_machine-ba1a07d4ae048549: crates/machine/src/lib.rs crates/machine/src/machine.rs crates/machine/src/program.rs crates/machine/src/stats.rs crates/machine/src/trace.rs

crates/machine/src/lib.rs:
crates/machine/src/machine.rs:
crates/machine/src/program.rs:
crates/machine/src/stats.rs:
crates/machine/src/trace.rs:
