/root/repo/target/release/deps/dsm_mesh-1f2e30f19c0be99c.d: crates/mesh/src/lib.rs crates/mesh/src/latency.rs crates/mesh/src/topology.rs crates/mesh/src/wormhole.rs

/root/repo/target/release/deps/libdsm_mesh-1f2e30f19c0be99c.rlib: crates/mesh/src/lib.rs crates/mesh/src/latency.rs crates/mesh/src/topology.rs crates/mesh/src/wormhole.rs

/root/repo/target/release/deps/libdsm_mesh-1f2e30f19c0be99c.rmeta: crates/mesh/src/lib.rs crates/mesh/src/latency.rs crates/mesh/src/topology.rs crates/mesh/src/wormhole.rs

crates/mesh/src/lib.rs:
crates/mesh/src/latency.rs:
crates/mesh/src/topology.rs:
crates/mesh/src/wormhole.rs:
