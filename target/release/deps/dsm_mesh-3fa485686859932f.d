/root/repo/target/release/deps/dsm_mesh-3fa485686859932f.d: crates/mesh/src/lib.rs crates/mesh/src/latency.rs crates/mesh/src/topology.rs crates/mesh/src/wormhole.rs

/root/repo/target/release/deps/dsm_mesh-3fa485686859932f: crates/mesh/src/lib.rs crates/mesh/src/latency.rs crates/mesh/src/topology.rs crates/mesh/src/wormhole.rs

crates/mesh/src/lib.rs:
crates/mesh/src/latency.rs:
crates/mesh/src/topology.rs:
crates/mesh/src/wormhole.rs:
