/root/repo/target/release/deps/dsm_mint-10bc0e5d1d0a2462.d: crates/mint/src/lib.rs crates/mint/src/asm.rs crates/mint/src/cpu.rs crates/mint/src/disasm.rs crates/mint/src/isa.rs

/root/repo/target/release/deps/libdsm_mint-10bc0e5d1d0a2462.rlib: crates/mint/src/lib.rs crates/mint/src/asm.rs crates/mint/src/cpu.rs crates/mint/src/disasm.rs crates/mint/src/isa.rs

/root/repo/target/release/deps/libdsm_mint-10bc0e5d1d0a2462.rmeta: crates/mint/src/lib.rs crates/mint/src/asm.rs crates/mint/src/cpu.rs crates/mint/src/disasm.rs crates/mint/src/isa.rs

crates/mint/src/lib.rs:
crates/mint/src/asm.rs:
crates/mint/src/cpu.rs:
crates/mint/src/disasm.rs:
crates/mint/src/isa.rs:
