/root/repo/target/release/deps/dsm_mint-ea134705919b3731.d: crates/mint/src/lib.rs crates/mint/src/asm.rs crates/mint/src/cpu.rs crates/mint/src/disasm.rs crates/mint/src/isa.rs

/root/repo/target/release/deps/dsm_mint-ea134705919b3731: crates/mint/src/lib.rs crates/mint/src/asm.rs crates/mint/src/cpu.rs crates/mint/src/disasm.rs crates/mint/src/isa.rs

crates/mint/src/lib.rs:
crates/mint/src/asm.rs:
crates/mint/src/cpu.rs:
crates/mint/src/disasm.rs:
crates/mint/src/isa.rs:
