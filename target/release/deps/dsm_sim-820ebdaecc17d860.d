/root/repo/target/release/deps/dsm_sim-820ebdaecc17d860.d: crates/sim/src/lib.rs crates/sim/src/config.rs crates/sim/src/event.rs crates/sim/src/fault.rs crates/sim/src/hash.rs crates/sim/src/ids.rs crates/sim/src/rng.rs crates/sim/src/time.rs

/root/repo/target/release/deps/libdsm_sim-820ebdaecc17d860.rlib: crates/sim/src/lib.rs crates/sim/src/config.rs crates/sim/src/event.rs crates/sim/src/fault.rs crates/sim/src/hash.rs crates/sim/src/ids.rs crates/sim/src/rng.rs crates/sim/src/time.rs

/root/repo/target/release/deps/libdsm_sim-820ebdaecc17d860.rmeta: crates/sim/src/lib.rs crates/sim/src/config.rs crates/sim/src/event.rs crates/sim/src/fault.rs crates/sim/src/hash.rs crates/sim/src/ids.rs crates/sim/src/rng.rs crates/sim/src/time.rs

crates/sim/src/lib.rs:
crates/sim/src/config.rs:
crates/sim/src/event.rs:
crates/sim/src/fault.rs:
crates/sim/src/hash.rs:
crates/sim/src/ids.rs:
crates/sim/src/rng.rs:
crates/sim/src/time.rs:
