/root/repo/target/release/deps/dsm_sim-a1bb890b81fa8282.d: crates/sim/src/lib.rs crates/sim/src/config.rs crates/sim/src/event.rs crates/sim/src/ids.rs crates/sim/src/rng.rs crates/sim/src/time.rs

/root/repo/target/release/deps/dsm_sim-a1bb890b81fa8282: crates/sim/src/lib.rs crates/sim/src/config.rs crates/sim/src/event.rs crates/sim/src/ids.rs crates/sim/src/rng.rs crates/sim/src/time.rs

crates/sim/src/lib.rs:
crates/sim/src/config.rs:
crates/sim/src/event.rs:
crates/sim/src/ids.rs:
crates/sim/src/rng.rs:
crates/sim/src/time.rs:
