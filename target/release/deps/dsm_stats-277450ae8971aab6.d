/root/repo/target/release/deps/dsm_stats-277450ae8971aab6.d: crates/stats/src/lib.rs crates/stats/src/contention.rs crates/stats/src/histogram.rs crates/stats/src/messages.rs crates/stats/src/table.rs crates/stats/src/writerun.rs

/root/repo/target/release/deps/dsm_stats-277450ae8971aab6: crates/stats/src/lib.rs crates/stats/src/contention.rs crates/stats/src/histogram.rs crates/stats/src/messages.rs crates/stats/src/table.rs crates/stats/src/writerun.rs

crates/stats/src/lib.rs:
crates/stats/src/contention.rs:
crates/stats/src/histogram.rs:
crates/stats/src/messages.rs:
crates/stats/src/table.rs:
crates/stats/src/writerun.rs:
