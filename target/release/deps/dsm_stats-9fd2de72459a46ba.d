/root/repo/target/release/deps/dsm_stats-9fd2de72459a46ba.d: crates/stats/src/lib.rs crates/stats/src/contention.rs crates/stats/src/histogram.rs crates/stats/src/messages.rs crates/stats/src/table.rs crates/stats/src/writerun.rs

/root/repo/target/release/deps/libdsm_stats-9fd2de72459a46ba.rlib: crates/stats/src/lib.rs crates/stats/src/contention.rs crates/stats/src/histogram.rs crates/stats/src/messages.rs crates/stats/src/table.rs crates/stats/src/writerun.rs

/root/repo/target/release/deps/libdsm_stats-9fd2de72459a46ba.rmeta: crates/stats/src/lib.rs crates/stats/src/contention.rs crates/stats/src/histogram.rs crates/stats/src/messages.rs crates/stats/src/table.rs crates/stats/src/writerun.rs

crates/stats/src/lib.rs:
crates/stats/src/contention.rs:
crates/stats/src/histogram.rs:
crates/stats/src/messages.rs:
crates/stats/src/table.rs:
crates/stats/src/writerun.rs:
