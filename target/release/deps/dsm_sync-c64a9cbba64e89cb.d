/root/repo/target/release/deps/dsm_sync-c64a9cbba64e89cb.d: crates/sync/src/lib.rs crates/sync/src/alloc.rs crates/sync/src/backoff.rs crates/sync/src/barrier.rs crates/sync/src/counter.rs crates/sync/src/mcs.rs crates/sync/src/primitive.rs crates/sync/src/rwlock.rs crates/sync/src/stack.rs crates/sync/src/submachine.rs crates/sync/src/tts.rs

/root/repo/target/release/deps/libdsm_sync-c64a9cbba64e89cb.rlib: crates/sync/src/lib.rs crates/sync/src/alloc.rs crates/sync/src/backoff.rs crates/sync/src/barrier.rs crates/sync/src/counter.rs crates/sync/src/mcs.rs crates/sync/src/primitive.rs crates/sync/src/rwlock.rs crates/sync/src/stack.rs crates/sync/src/submachine.rs crates/sync/src/tts.rs

/root/repo/target/release/deps/libdsm_sync-c64a9cbba64e89cb.rmeta: crates/sync/src/lib.rs crates/sync/src/alloc.rs crates/sync/src/backoff.rs crates/sync/src/barrier.rs crates/sync/src/counter.rs crates/sync/src/mcs.rs crates/sync/src/primitive.rs crates/sync/src/rwlock.rs crates/sync/src/stack.rs crates/sync/src/submachine.rs crates/sync/src/tts.rs

crates/sync/src/lib.rs:
crates/sync/src/alloc.rs:
crates/sync/src/backoff.rs:
crates/sync/src/barrier.rs:
crates/sync/src/counter.rs:
crates/sync/src/mcs.rs:
crates/sync/src/primitive.rs:
crates/sync/src/rwlock.rs:
crates/sync/src/stack.rs:
crates/sync/src/submachine.rs:
crates/sync/src/tts.rs:
