/root/repo/target/release/deps/dsm_sync-d428767c9e6a79a0.d: crates/sync/src/lib.rs crates/sync/src/alloc.rs crates/sync/src/backoff.rs crates/sync/src/barrier.rs crates/sync/src/counter.rs crates/sync/src/mcs.rs crates/sync/src/primitive.rs crates/sync/src/rwlock.rs crates/sync/src/stack.rs crates/sync/src/submachine.rs crates/sync/src/tts.rs

/root/repo/target/release/deps/dsm_sync-d428767c9e6a79a0: crates/sync/src/lib.rs crates/sync/src/alloc.rs crates/sync/src/backoff.rs crates/sync/src/barrier.rs crates/sync/src/counter.rs crates/sync/src/mcs.rs crates/sync/src/primitive.rs crates/sync/src/rwlock.rs crates/sync/src/stack.rs crates/sync/src/submachine.rs crates/sync/src/tts.rs

crates/sync/src/lib.rs:
crates/sync/src/alloc.rs:
crates/sync/src/backoff.rs:
crates/sync/src/barrier.rs:
crates/sync/src/counter.rs:
crates/sync/src/mcs.rs:
crates/sync/src/primitive.rs:
crates/sync/src/rwlock.rs:
crates/sync/src/stack.rs:
crates/sync/src/submachine.rs:
crates/sync/src/tts.rs:
