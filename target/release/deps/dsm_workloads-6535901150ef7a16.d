/root/repo/target/release/deps/dsm_workloads-6535901150ef7a16.d: crates/workloads/src/lib.rs crates/workloads/src/cholesky.rs crates/workloads/src/driver.rs crates/workloads/src/locked.rs crates/workloads/src/synthetic.rs crates/workloads/src/tclosure.rs crates/workloads/src/wire_route.rs

/root/repo/target/release/deps/dsm_workloads-6535901150ef7a16: crates/workloads/src/lib.rs crates/workloads/src/cholesky.rs crates/workloads/src/driver.rs crates/workloads/src/locked.rs crates/workloads/src/synthetic.rs crates/workloads/src/tclosure.rs crates/workloads/src/wire_route.rs

crates/workloads/src/lib.rs:
crates/workloads/src/cholesky.rs:
crates/workloads/src/driver.rs:
crates/workloads/src/locked.rs:
crates/workloads/src/synthetic.rs:
crates/workloads/src/tclosure.rs:
crates/workloads/src/wire_route.rs:
