/root/repo/target/release/deps/dsm_workloads-a1d1ad0e29d2be9a.d: crates/workloads/src/lib.rs crates/workloads/src/cholesky.rs crates/workloads/src/driver.rs crates/workloads/src/locked.rs crates/workloads/src/synthetic.rs crates/workloads/src/tclosure.rs crates/workloads/src/wire_route.rs

/root/repo/target/release/deps/libdsm_workloads-a1d1ad0e29d2be9a.rlib: crates/workloads/src/lib.rs crates/workloads/src/cholesky.rs crates/workloads/src/driver.rs crates/workloads/src/locked.rs crates/workloads/src/synthetic.rs crates/workloads/src/tclosure.rs crates/workloads/src/wire_route.rs

/root/repo/target/release/deps/libdsm_workloads-a1d1ad0e29d2be9a.rmeta: crates/workloads/src/lib.rs crates/workloads/src/cholesky.rs crates/workloads/src/driver.rs crates/workloads/src/locked.rs crates/workloads/src/synthetic.rs crates/workloads/src/tclosure.rs crates/workloads/src/wire_route.rs

crates/workloads/src/lib.rs:
crates/workloads/src/cholesky.rs:
crates/workloads/src/driver.rs:
crates/workloads/src/locked.rs:
crates/workloads/src/synthetic.rs:
crates/workloads/src/tclosure.rs:
crates/workloads/src/wire_route.rs:
