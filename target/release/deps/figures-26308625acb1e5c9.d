/root/repo/target/release/deps/figures-26308625acb1e5c9.d: crates/bench/src/bin/figures.rs

/root/repo/target/release/deps/figures-26308625acb1e5c9: crates/bench/src/bin/figures.rs

crates/bench/src/bin/figures.rs:
