/root/repo/target/release/deps/figures-7e6c4d3a6034a1cd.d: crates/bench/src/bin/figures.rs

/root/repo/target/release/deps/figures-7e6c4d3a6034a1cd: crates/bench/src/bin/figures.rs

crates/bench/src/bin/figures.rs:
