/root/repo/target/release/deps/figures-e3bc77d02487b8fc.d: crates/bench/src/bin/figures.rs

/root/repo/target/release/deps/figures-e3bc77d02487b8fc: crates/bench/src/bin/figures.rs

crates/bench/src/bin/figures.rs:
