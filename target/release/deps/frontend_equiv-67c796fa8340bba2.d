/root/repo/target/release/deps/frontend_equiv-67c796fa8340bba2.d: crates/mint/tests/frontend_equiv.rs

/root/repo/target/release/deps/frontend_equiv-67c796fa8340bba2: crates/mint/tests/frontend_equiv.rs

crates/mint/tests/frontend_equiv.rs:
