/root/repo/target/release/deps/interleavings-77408d46dcb4e9d2.d: crates/protocol/tests/interleavings.rs

/root/repo/target/release/deps/interleavings-77408d46dcb4e9d2: crates/protocol/tests/interleavings.rs

crates/protocol/tests/interleavings.rs:
