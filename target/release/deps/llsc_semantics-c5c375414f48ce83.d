/root/repo/target/release/deps/llsc_semantics-c5c375414f48ce83.d: crates/core/../../tests/llsc_semantics.rs

/root/repo/target/release/deps/llsc_semantics-c5c375414f48ce83: crates/core/../../tests/llsc_semantics.rs

crates/core/../../tests/llsc_semantics.rs:
