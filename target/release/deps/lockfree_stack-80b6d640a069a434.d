/root/repo/target/release/deps/lockfree_stack-80b6d640a069a434.d: crates/core/../../tests/lockfree_stack.rs

/root/repo/target/release/deps/lockfree_stack-80b6d640a069a434: crates/core/../../tests/lockfree_stack.rs

crates/core/../../tests/lockfree_stack.rs:
