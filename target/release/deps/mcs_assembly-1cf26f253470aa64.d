/root/repo/target/release/deps/mcs_assembly-1cf26f253470aa64.d: crates/mint/tests/mcs_assembly.rs

/root/repo/target/release/deps/mcs_assembly-1cf26f253470aa64: crates/mint/tests/mcs_assembly.rs

crates/mint/tests/mcs_assembly.rs:
