/root/repo/target/release/deps/paper_claims-5242a1893d5da626.d: crates/core/../../tests/paper_claims.rs

/root/repo/target/release/deps/paper_claims-5242a1893d5da626: crates/core/../../tests/paper_claims.rs

crates/core/../../tests/paper_claims.rs:
