/root/repo/target/release/deps/policy_semantics-2865616764c7f635.d: crates/core/../../tests/policy_semantics.rs

/root/repo/target/release/deps/policy_semantics-2865616764c7f635: crates/core/../../tests/policy_semantics.rs

crates/core/../../tests/policy_semantics.rs:
