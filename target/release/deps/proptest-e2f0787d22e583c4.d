/root/repo/target/release/deps/proptest-e2f0787d22e583c4.d: vendor/proptest/src/lib.rs

/root/repo/target/release/deps/proptest-e2f0787d22e583c4: vendor/proptest/src/lib.rs

vendor/proptest/src/lib.rs:
