/root/repo/target/release/deps/rwlock-0431dd92194f0cbf.d: crates/core/../../tests/rwlock.rs

/root/repo/target/release/deps/rwlock-0431dd92194f0cbf: crates/core/../../tests/rwlock.rs

crates/core/../../tests/rwlock.rs:
