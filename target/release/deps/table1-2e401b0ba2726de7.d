/root/repo/target/release/deps/table1-2e401b0ba2726de7.d: crates/bench/benches/table1.rs

/root/repo/target/release/deps/table1-2e401b0ba2726de7: crates/bench/benches/table1.rs

crates/bench/benches/table1.rs:
