/root/repo/target/release/examples/assembly_workload-c54ebaa947d7ee91.d: crates/core/../../examples/assembly_workload.rs

/root/repo/target/release/examples/assembly_workload-c54ebaa947d7ee91: crates/core/../../examples/assembly_workload.rs

crates/core/../../examples/assembly_workload.rs:
