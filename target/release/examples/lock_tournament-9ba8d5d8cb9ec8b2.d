/root/repo/target/release/examples/lock_tournament-9ba8d5d8cb9ec8b2.d: crates/core/../../examples/lock_tournament.rs

/root/repo/target/release/examples/lock_tournament-9ba8d5d8cb9ec8b2: crates/core/../../examples/lock_tournament.rs

crates/core/../../examples/lock_tournament.rs:
