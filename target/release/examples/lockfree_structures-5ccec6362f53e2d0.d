/root/repo/target/release/examples/lockfree_structures-5ccec6362f53e2d0.d: crates/core/../../examples/lockfree_structures.rs

/root/repo/target/release/examples/lockfree_structures-5ccec6362f53e2d0: crates/core/../../examples/lockfree_structures.rs

crates/core/../../examples/lockfree_structures.rs:
