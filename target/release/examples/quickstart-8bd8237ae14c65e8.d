/root/repo/target/release/examples/quickstart-8bd8237ae14c65e8.d: crates/core/../../examples/quickstart.rs

/root/repo/target/release/examples/quickstart-8bd8237ae14c65e8: crates/core/../../examples/quickstart.rs

crates/core/../../examples/quickstart.rs:
