/root/repo/target/release/examples/reservation_schemes-d19316cfb027e9ae.d: crates/core/../../examples/reservation_schemes.rs

/root/repo/target/release/examples/reservation_schemes-d19316cfb027e9ae: crates/core/../../examples/reservation_schemes.rs

crates/core/../../examples/reservation_schemes.rs:
