/root/repo/target/release/examples/transitive_closure-70aed11bdd66b11f.d: crates/core/../../examples/transitive_closure.rs

/root/repo/target/release/examples/transitive_closure-70aed11bdd66b11f: crates/core/../../examples/transitive_closure.rs

crates/core/../../examples/transitive_closure.rs:
