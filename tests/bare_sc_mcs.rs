//! The §3.1 bare-store-conditional optimization: "a process that
//! expects a particular value (and serial number) in memory can issue a
//! bare store_conditional … This capability is useful for algorithms
//! such as the MCS queue-based spin lock, in which it reduces by one
//! the number of memory accesses required to relinquish the lock."
//!
//! These tests run MCS acquire/release pairs on the full machine under
//! UNC with serial-number reservations and verify (a) exactness, (b)
//! that uncontended releases really are one access shorter.

use atomic_dsm::machine::{Action, MachineBuilder, ProcCtx};
use atomic_dsm::protocol::{LlscScheme, MemOp, SyncConfig, SyncPolicy};
use atomic_dsm::sim::{Addr, Cycle, MachineConfig};
use atomic_dsm::sync::{
    McsAcquire, McsLock, McsQnode, McsRelease, PrimChoice, Primitive, Step, SubMachine,
};
use std::sync::{Arc, Mutex};

const LOCK: Addr = Addr::new(0x40);
const COUNTER: Addr = Addr::new(0x80);

fn sync_cfg() -> SyncConfig {
    SyncConfig {
        policy: SyncPolicy::Unc,
        llsc: LlscScheme::SerialNumber,
        ..Default::default()
    }
}

fn run(nodes: u32, active: u32, iters: u64, bare: bool) -> (u64, u64, u64) {
    let bare_hits = Arc::new(Mutex::new(0u64));
    let mut b = MachineBuilder::new(MachineConfig::with_nodes(nodes));
    b.register_sync(LOCK, sync_cfg());
    for p in 0..active {
        let qnode = McsQnode::at(Addr::new(0x1000 + p as u64 * 64));
        let bare_hits = Arc::clone(&bare_hits);
        let choice = PrimChoice::plain(Primitive::Llsc);
        let mut left = iters;
        let mut acq: Option<McsAcquire> = None;
        let mut rel: Option<McsRelease> = None;
        let mut serial: Option<u64> = None;
        let mut stage = 0u8;
        b.add_program(move |ctx: &mut ProcCtx<'_>| loop {
            if let Some(m) = &mut acq {
                match m.step(ctx.last.take(), ctx.rng) {
                    Step::Op(op) => return Action::Op(op),
                    Step::Compute(c) => return Action::Compute(c),
                    Step::Done => {
                        serial = m.tail_serial_after_acquire();
                        acq = None;
                    }
                }
            }
            if let Some(m) = &mut rel {
                match m.step(ctx.last.take(), ctx.rng) {
                    Step::Op(op) => return Action::Op(op),
                    Step::Compute(c) => return Action::Compute(c),
                    Step::Done => {
                        *bare_hits.lock().unwrap() += m.bare_sc_hits;
                        rel = None;
                    }
                }
            }
            if left == 0 {
                return Action::Done;
            }
            stage += 1;
            match stage {
                1 => acq = Some(McsAcquire::new(McsLock { tail: LOCK }, qnode, choice)),
                2 => return Action::Op(MemOp::Load { addr: COUNTER }),
                3 => {
                    let v = ctx
                        .last
                        .take()
                        .expect("counter read")
                        .value()
                        .expect("value");
                    return Action::Op(MemOp::Store {
                        addr: COUNTER,
                        value: v + 1,
                    });
                }
                4 => {
                    ctx.last.take();
                    let r = McsRelease::new(McsLock { tail: LOCK }, qnode, choice);
                    rel = Some(if bare {
                        r.with_bare_serial(serial.take())
                    } else {
                        r
                    });
                }
                5 => {
                    stage = 0;
                    left -= 1;
                    // Space acquisitions out so releases are usually
                    // uncontended (the bare SC's win scenario).
                    return Action::Compute(500);
                }
                _ => unreachable!(),
            }
        });
    }
    for _ in active..nodes {
        b.add_program(|_: &mut ProcCtx<'_>| Action::Done);
    }
    let mut m = b.build();
    m.run(Cycle::new(10_000_000_000)).expect("completes");
    m.validate_coherence().unwrap();
    assert_eq!(
        m.read_word(COUNTER),
        active as u64 * iters,
        "lock lost an update"
    );
    let hits = *bare_hits.lock().unwrap();
    (m.stats().msgs.total_messages(), m.stats().sync_ops, hits)
}

#[test]
fn bare_sc_release_saves_exactly_one_access_uncontended() {
    // One active processor: fully deterministic op counts.
    // Per iteration: enqueue LL+SC (2 ops) + release (2 ops plain, 1
    // bare) on the lock line.
    let iters = 10;
    let (msgs_plain, ops_plain, hits_plain) = run(2, 1, iters, false);
    let (msgs_bare, ops_bare, hits_bare) = run(2, 1, iters, true);
    assert_eq!(hits_plain, 0);
    assert_eq!(
        hits_bare, iters,
        "every uncontended release takes the fast path"
    );
    assert_eq!(ops_plain, 4 * iters);
    assert_eq!(
        ops_bare,
        3 * iters,
        "the paper's promised one-access saving"
    );
    assert_eq!(
        msgs_plain - msgs_bare,
        2 * iters,
        "each saved LL is one request + one reply under UNC"
    );
}

#[test]
fn bare_sc_still_helps_with_mild_contention() {
    let iters = 10;
    let (_, ops_plain, _) = run(4, 4, iters, false);
    let (_, ops_bare, hits_bare) = run(4, 4, iters, true);
    assert!(
        hits_bare > 0,
        "spaced-out releases should hit the fast path"
    );
    assert!(
        ops_bare < ops_plain,
        "bare SC must reduce lock-line accesses ({ops_bare} vs {ops_plain})"
    );
}

#[test]
fn bare_sc_falls_back_safely_under_contention() {
    // With zero compute spacing, successors enqueue during critical
    // sections; bare SCs fail and fall back — exactness must hold.
    let bare_hits = Arc::new(Mutex::new(0u64));
    let nodes = 8u32;
    let iters = 15u64;
    let mut b = MachineBuilder::new(MachineConfig::with_nodes(nodes));
    b.register_sync(LOCK, sync_cfg());
    for p in 0..nodes {
        let qnode = McsQnode::at(Addr::new(0x1000 + p as u64 * 64));
        let bare_hits = Arc::clone(&bare_hits);
        let choice = PrimChoice::plain(Primitive::Llsc);
        let mut left = iters;
        let mut acq: Option<McsAcquire> = None;
        let mut rel: Option<McsRelease> = None;
        b.add_program(move |ctx: &mut ProcCtx<'_>| loop {
            if let Some(m) = &mut acq {
                match m.step(ctx.last.take(), ctx.rng) {
                    Step::Op(op) => return Action::Op(op),
                    Step::Compute(c) => return Action::Compute(c),
                    Step::Done => {
                        let serial = m.tail_serial_after_acquire();
                        acq = None;
                        rel = Some(
                            McsRelease::new(McsLock { tail: LOCK }, qnode, choice)
                                .with_bare_serial(serial),
                        );
                    }
                }
            }
            if let Some(m) = &mut rel {
                match m.step(ctx.last.take(), ctx.rng) {
                    Step::Op(op) => return Action::Op(op),
                    Step::Compute(c) => return Action::Compute(c),
                    Step::Done => {
                        *bare_hits.lock().unwrap() += m.bare_sc_hits;
                        rel = None;
                        left -= 1;
                    }
                }
            }
            if left == 0 {
                return Action::Done;
            }
            acq = Some(McsAcquire::new(McsLock { tail: LOCK }, qnode, choice));
        });
    }
    let mut m = b.build();
    m.run(Cycle::new(10_000_000_000)).unwrap();
    m.validate_coherence().unwrap();
    assert_eq!(m.read_word(LOCK), 0, "queue fully drained");
    // Under this much contention some bare SCs fail; the point is that
    // no handoff was ever lost (the run completed and drained).
    let _ = *bare_hits.lock().unwrap();
}
