//! Runs the workloads with deliberately tiny caches so that capacity
//! evictions (write-backs of dirty lines, silent drops of shared lines,
//! reservation loss) interleave with every protocol transaction. All
//! results must stay exact and coherent.

use atomic_dsm::sim::{CacheParams, Cycle, MachineConfig};
use atomic_dsm::sync::{PrimChoice, Primitive};
use atomic_dsm::workloads::synthetic::{build_synthetic, CounterKind, SyntheticConfig};
use atomic_dsm::workloads::wire_route::{build_wire_route, WireRouteConfig};
use atomic_dsm::{SyncConfig, SyncPolicy};

const LIMIT: Cycle = Cycle::new(5_000_000_000);

fn tiny_cache_config(nodes: u32) -> MachineConfig {
    let mut cfg = MachineConfig::with_nodes(nodes);
    // 8 lines per cache: far smaller than any working set here.
    cfg.cache = CacheParams { sets: 8, ways: 1 };
    cfg
}

#[test]
fn synthetic_counters_survive_tiny_caches() {
    for kind in CounterKind::ALL {
        for prim in Primitive::ALL {
            let scfg = SyntheticConfig {
                kind,
                choice: PrimChoice::plain(prim),
                sync: SyncConfig {
                    policy: SyncPolicy::Inv,
                    ..Default::default()
                },
                contention: 4,
                write_run: 1.0,
                rounds: 8,
            };
            let (mut m, layout) = build_synthetic(tiny_cache_config(8), &scfg);
            m.run(LIMIT)
                .unwrap_or_else(|e| panic!("{}/{}: {e}", kind.label(), prim.label()));
            assert_eq!(
                m.read_word(layout.counter),
                scfg.total_updates(8),
                "{}/{}",
                kind.label(),
                prim.label()
            );
            m.validate_coherence()
                .unwrap_or_else(|e| panic!("{}/{}: {e}", kind.label(), prim.label()));
        }
    }
}

#[test]
fn llsc_reservations_survive_eviction() {
    // LL/SC with a cache so small that the reserved line is regularly
    // evicted between LL and SC: the SC must fail (never succeed
    // wrongly) and the loop must still make progress.
    let scfg = SyntheticConfig {
        kind: CounterKind::LockFree,
        choice: PrimChoice::plain(Primitive::Llsc),
        sync: SyncConfig {
            policy: SyncPolicy::Inv,
            ..Default::default()
        },
        contention: 8,
        write_run: 1.0,
        rounds: 12,
    };
    let mut cfg = tiny_cache_config(8);
    cfg.cache = CacheParams { sets: 2, ways: 1 }; // brutally small
    let (mut m, layout) = build_synthetic(cfg, &scfg);
    m.run(LIMIT).unwrap();
    assert_eq!(m.read_word(layout.counter), scfg.total_updates(8));
    m.validate_coherence().unwrap();
}

#[test]
fn wire_route_survives_tiny_caches() {
    let cfg = WireRouteConfig {
        wires: 24,
        regions: 8,
        route_len: 3,
        cells_per_visit: 4,
        cells_per_region: 16,
        choice: PrimChoice::plain(Primitive::Cas),
        sync: SyncConfig {
            policy: SyncPolicy::Inv,
            ..Default::default()
        },
        seed: 3,
        compute_per_wire: 0,
    };
    let (mut m, layout) = build_wire_route(tiny_cache_config(8), &cfg);
    m.run(LIMIT).unwrap();
    m.validate_coherence().unwrap();
    assert_eq!(layout.total_cost(&m, &cfg), cfg.expected_total());
}

#[test]
fn upd_counters_survive_tiny_caches() {
    // UPD shared copies get silently evicted; updates to absent lines
    // must still be acknowledged and reads re-fetch fresh data.
    let scfg = SyntheticConfig {
        kind: CounterKind::LockFree,
        choice: PrimChoice::plain(Primitive::Cas),
        sync: SyncConfig {
            policy: SyncPolicy::Upd,
            ..Default::default()
        },
        contention: 8,
        write_run: 1.0,
        rounds: 10,
    };
    let mut cfg = tiny_cache_config(8);
    cfg.cache = CacheParams { sets: 2, ways: 2 };
    let (mut m, layout) = build_synthetic(cfg, &scfg);
    m.run(LIMIT).unwrap();
    assert_eq!(m.read_word(layout.counter), scfg.total_updates(8));
    m.validate_coherence().unwrap();
}
