//! The checkpoint/restore identity guarantee, end to end: for every
//! checkpointable workload class (synthetic counter, the three
//! applications, the lock-free structures), pausing a run mid-flight,
//! persisting the checkpoint to disk, restoring it in a logically fresh
//! context and finishing must produce a final result **bit-identical**
//! to a run that was never interrupted — at any worker count. Tampered
//! or torn checkpoint files must be refused (and quarantined), never
//! silently resumed.

use atomic_dsm::experiments::checkpoint::{self, CheckpointError, PauseOutcome};
use atomic_dsm::experiments::runner::{self, Job, JobResult};
use atomic_dsm::experiments::{apps::App, BarSpec, CounterKind, Scale};
use atomic_dsm::protocol::SyncPolicy;
use atomic_dsm::sync::{LinkPrim, Primitive};
use atomic_dsm::workloads::LfStructure;
use atomic_dsm::MachineConfig;
use std::path::PathBuf;

fn tiny() -> Scale {
    Scale {
        procs: 8,
        rounds: 8,
        tc_size: 8,
        wires: 16,
        tasks: 16,
    }
}

/// One job per checkpointable workload class, at test scale.
fn workloads() -> Vec<(&'static str, Job)> {
    let s = tiny();
    let bar = BarSpec::new(SyncPolicy::Inv, Primitive::Cas);
    vec![
        (
            "counter",
            Job::counter(
                MachineConfig::with_nodes(s.procs),
                CounterKind::LockFree,
                bar,
                s.procs,
                1.0,
                s.rounds,
            ),
        ),
        ("tclosure", Job::app(App::TransitiveClosure, bar, s)),
        ("wireroute", Job::app(App::WireRoute, bar, s)),
        ("cholesky", Job::app(App::Cholesky, bar, s)),
        (
            "lockfree",
            Job::lockfree(
                MachineConfig::with_nodes(s.procs),
                LfStructure::Queue,
                LinkPrim::Llsc,
                SyncPolicy::Inv,
                s.rounds as u32,
                8,
                4,
            ),
        ),
    ]
}

fn tmp(name: &str) -> PathBuf {
    std::env::temp_dir().join(format!("dsm-ckpt-it-{}-{name}", std::process::id()))
}

/// The bit-identity proxy: `Debug` output covers every field of every
/// output variant, and f64's `Debug` prints the shortest string that
/// round-trips, so equal strings mean equal bits.
fn render(r: &JobResult) -> String {
    format!("{r:?}")
}

/// An uninterrupted baseline for `job`, simulated fresh (no caches).
fn baseline(job: &Job) -> JobResult {
    match checkpoint::run_with_pause(job, u64::MAX).expect("checkpointable") {
        PauseOutcome::Completed(r) => r,
        PauseOutcome::Paused(_) => panic!("u64::MAX events must not pause"),
    }
}

/// Pause → save → load → replay-restore → finish, for every workload
/// class, comparing against the uninterrupted run byte for byte.
#[test]
fn every_workload_restores_bit_identically_through_disk() {
    for (name, job) in workloads() {
        let golden = render(&baseline(&job));
        let total = checkpoint::total_events(&job).expect("workload completes");
        for frac in [4, 2] {
            let pause = total / frac;
            assert!(pause > 0, "{name}: degenerate pause point");
            let paused = match checkpoint::run_with_pause(&job, pause).unwrap() {
                PauseOutcome::Paused(p) => p,
                PauseOutcome::Completed(_) => {
                    panic!("{name}: completed before interior pause {pause}/{total}")
                }
            };
            let path = tmp(&format!("{name}-{frac}"));
            paused.save(&path).expect("checkpoint saves");
            drop(paused); // the live machine dies with the "process"

            let cp = checkpoint::load(&path).expect("checkpoint loads");
            assert_eq!(cp.events, pause, "{name}: wrong pause coordinate");
            let resumed = checkpoint::resume(&cp).expect("restore succeeds");
            assert_eq!(
                render(&resumed),
                golden,
                "{name}: resume at {pause}/{total} events diverged from the uninterrupted run"
            );
            let _ = std::fs::remove_file(&path);
        }
    }
}

/// The in-process resume path (no disk round trip) obeys the same
/// identity, and the checkpoint coordinates land exactly on the
/// requested event boundary.
#[test]
fn in_process_resume_is_bit_identical() {
    let (_, job) = workloads().remove(0);
    let golden = render(&baseline(&job));
    let pause = checkpoint::total_events(&job).unwrap() / 3;
    let paused = match checkpoint::run_with_pause(&job, pause).unwrap() {
        PauseOutcome::Paused(p) => p,
        PauseOutcome::Completed(_) => panic!("completed before pause"),
    };
    assert_eq!(paused.checkpoint().events, pause);
    assert_eq!(render(&paused.resume()), golden);
}

/// Restoring must agree with the runner's own result for the same job
/// at any worker count: parallel dispatch cannot leak into a resumed
/// result, and vice versa.
#[test]
fn restore_matches_runner_output_across_worker_counts() {
    let (_, job) = workloads().remove(0);
    let pause = checkpoint::total_events(&job).unwrap() / 2;
    let paused = match checkpoint::run_with_pause(&job, pause).unwrap() {
        PauseOutcome::Paused(p) => p,
        PauseOutcome::Completed(_) => panic!("completed before pause"),
    };
    let resumed = render(&paused.resume());
    for jobs in [1usize, 8] {
        let batch = runner::with_workers(jobs, || {
            runner::clear_cache();
            runner::try_run_all(std::slice::from_ref(&job))
        });
        assert_eq!(
            render(&batch[0]),
            resumed,
            "resumed result diverged from a {jobs}-worker run"
        );
    }
}

/// A checkpoint whose digest does not match the replayed machine state
/// is refused with a `Diverged` diagnostic — never silently resumed.
#[test]
fn tampered_checkpoint_is_refused() {
    let (_, job) = workloads().remove(0);
    let pause = checkpoint::total_events(&job).unwrap() / 2;
    let paused = match checkpoint::run_with_pause(&job, pause).unwrap() {
        PauseOutcome::Paused(p) => p,
        PauseOutcome::Completed(_) => panic!("completed before pause"),
    };
    let mut cp = paused.checkpoint().clone();
    cp.digest ^= 1;
    match checkpoint::resume(&cp) {
        Err(CheckpointError::Diverged { events, .. }) => assert_eq!(events, pause),
        other => panic!("tampered digest must diverge, got {other:?}"),
    }
}

/// A torn checkpoint *file* (bit flip on disk) fails the container
/// checksum, is quarantined into `quarantined/`, and reports a
/// structured error — restoring never panics on corrupt input.
#[test]
fn torn_checkpoint_file_is_quarantined() {
    let (_, job) = workloads().remove(0);
    let pause = checkpoint::total_events(&job).unwrap() / 2;
    let paused = match checkpoint::run_with_pause(&job, pause).unwrap() {
        PauseOutcome::Paused(p) => p,
        PauseOutcome::Completed(_) => panic!("completed before pause"),
    };
    let dir = tmp("torn-dir");
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap();
    let path = dir.join("mid.ckpt");
    paused.save(&path).unwrap();

    let mut bytes = std::fs::read(&path).unwrap();
    let mid = bytes.len() / 2;
    bytes[mid] ^= 0x10;
    std::fs::write(&path, &bytes).unwrap();

    match checkpoint::resume_file(&path) {
        Err(CheckpointError::Snapshot(_)) => {}
        other => panic!("corrupt file must fail the container check, got {other:?}"),
    }
    assert!(!path.exists(), "corrupt checkpoint left in place");
    let quarantined: Vec<_> = std::fs::read_dir(dir.join("quarantined"))
        .expect("quarantine directory exists")
        .collect();
    assert!(!quarantined.is_empty(), "nothing was quarantined");
    let _ = std::fs::remove_dir_all(&dir);
}
