//! Property-based stress tests: random multiprogrammed operation mixes
//! driven through the full machine, checked for exact atomicity,
//! coherence invariants and determinism.

use atomic_dsm::machine::{Action, Machine, MachineBuilder, ProcCtx};
use atomic_dsm::protocol::{
    CasVariant, LlscScheme, MemOp, OpResult, PhiOp, SyncConfig, SyncPolicy,
};
use atomic_dsm::sim::{Addr, Cycle, MachineConfig, SimRng};
use proptest::prelude::*;

const LIMIT: Cycle = Cycle::new(2_000_000_000);

/// Builds a machine where every processor performs `iters` increments
/// on each of `counters` shared counters (policies assigned per
/// counter), interleaved with noise traffic on ordinary lines, using a
/// per-processor random mix of FAΦ / CAS-loop / LL-SC-loop updates.
fn random_mix_machine(
    nodes: u32,
    counters: usize,
    iters: u64,
    policies: Vec<SyncPolicy>,
    seed: u64,
) -> (Machine, Vec<Addr>) {
    assert_eq!(policies.len(), counters);
    let addrs: Vec<Addr> = (0..counters)
        .map(|i| Addr::new(0x1000 + i as u64 * 64))
        .collect();
    let mut b = MachineBuilder::new(MachineConfig::with_nodes(nodes));
    for (i, &a) in addrs.iter().enumerate() {
        b.register_sync(
            a,
            SyncConfig {
                policy: policies[i],
                cas_variant: match i % 3 {
                    0 => CasVariant::Plain,
                    1 => CasVariant::Deny,
                    _ => CasVariant::Share,
                },
                llsc: if i % 2 == 0 {
                    LlscScheme::BitVector
                } else {
                    LlscScheme::SerialNumber
                },
                home_atomics: false,
            },
        );
    }
    for p in 0..nodes {
        let addrs = addrs.clone();
        let mut rng = SimRng::new(seed ^ (p as u64) << 32);
        let noise = Addr::new(0x100_000 + p as u64 * 64);
        // Work list: (counter index, method 0..3) per update.
        let mut work: Vec<(usize, u8)> = (0..counters)
            .flat_map(|c| (0..iters).map(move |_| (c, 0u8)))
            .collect();
        for w in work.iter_mut() {
            w.1 = rng.range(3) as u8;
        }
        let mut rng2 = SimRng::new(seed ^ 0xABCD ^ p as u64);
        rng2.shuffle(&mut work);
        let mut idx = 0usize;
        let mut phase = 0u8; // 0 = start next update, 1.. = mid-protocol
        let mut pending_serial: Option<u64> = None;
        b.add_program(move |ctx: &mut ProcCtx<'_>| {
            if idx >= work.len() {
                return Action::Done;
            }
            let (c, method) = work[idx];
            let addr = addrs[c];
            match (method, phase, ctx.last) {
                // fetch_and_add: one op.
                (0, 0, _) => {
                    phase = 1;
                    Action::Op(MemOp::FetchPhi {
                        addr,
                        op: PhiOp::Add(1),
                    })
                }
                (0, 1, _) => {
                    phase = 0;
                    idx += 1;
                    // Noise between updates.
                    Action::Op(MemOp::Store {
                        addr: noise,
                        value: idx as u64,
                    })
                }
                // CAS loop.
                (1, 0, _) => {
                    phase = 1;
                    Action::Op(MemOp::Load { addr })
                }
                (1, 1, Some(OpResult::Loaded { value, .. })) => {
                    phase = 2;
                    Action::Op(MemOp::Cas {
                        addr,
                        expected: value,
                        new: value + 1,
                    })
                }
                (1, 2, Some(OpResult::CasDone { success, observed })) => {
                    if success {
                        phase = 0;
                        idx += 1;
                        Action::Op(MemOp::Load { addr: noise })
                    } else {
                        Action::Op(MemOp::Cas {
                            addr,
                            expected: observed,
                            new: observed + 1,
                        })
                    }
                }
                // LL/SC loop.
                (2, 0, _) => {
                    phase = 1;
                    Action::Op(MemOp::LoadLinked { addr })
                }
                (2, 1, Some(OpResult::Loaded { value, serial, .. })) => {
                    phase = 2;
                    pending_serial = serial;
                    Action::Op(MemOp::StoreConditional {
                        addr,
                        value: value + 1,
                        serial,
                    })
                }
                (2, 2, Some(OpResult::ScDone { success })) => {
                    let _ = pending_serial;
                    if success {
                        phase = 0;
                        idx += 1;
                        Action::Op(MemOp::DropCopy { addr: noise })
                    } else {
                        phase = 1;
                        Action::Op(MemOp::LoadLinked { addr })
                    }
                }
                other => panic!("unexpected program state {other:?}"),
            }
        });
    }
    let m = b.build();
    (m, addrs)
}

fn run_mix(
    nodes: u32,
    counters: usize,
    iters: u64,
    policies: Vec<SyncPolicy>,
    seed: u64,
) -> (u64, u64) {
    let (mut m, addrs) = random_mix_machine(nodes, counters, iters, policies, seed);
    let report = m.run(LIMIT).expect("mix completes");
    m.validate_coherence().expect("coherent");
    for &a in &addrs {
        assert_eq!(
            m.read_word(a),
            nodes as u64 * iters,
            "counter at {a} lost or duplicated updates"
        );
    }
    (report.cycles.as_u64(), report.events)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// Any mix of update methods on counters of any policy mix is
    /// exactly atomic, and the final machine state is coherent.
    #[test]
    fn random_mixes_are_exactly_atomic(
        seed in any::<u64>(),
        nodes in prop::sample::select(vec![2u32, 4, 8]),
        p0 in prop::sample::select(vec![SyncPolicy::Inv, SyncPolicy::Unc, SyncPolicy::Upd]),
        p1 in prop::sample::select(vec![SyncPolicy::Inv, SyncPolicy::Unc, SyncPolicy::Upd]),
        p2 in prop::sample::select(vec![SyncPolicy::Inv, SyncPolicy::Unc, SyncPolicy::Upd]),
    ) {
        run_mix(nodes, 3, 6, vec![p0, p1, p2], seed);
    }

    /// Bit-for-bit determinism: the same seed gives the same cycle
    /// count and event count.
    #[test]
    fn runs_are_deterministic(seed in any::<u64>()) {
        let a = run_mix(4, 2, 5, vec![SyncPolicy::Inv, SyncPolicy::Unc], seed);
        let b = run_mix(4, 2, 5, vec![SyncPolicy::Inv, SyncPolicy::Unc], seed);
        prop_assert_eq!(a, b);
    }
}

/// A long deterministic smoke run at 16 processors mixing everything.
#[test]
fn big_mixed_smoke_run() {
    run_mix(
        16,
        3,
        20,
        vec![SyncPolicy::Inv, SyncPolicy::Unc, SyncPolicy::Upd],
        0xC0FFEE,
    );
}
