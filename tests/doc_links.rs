//! Offline markdown link checker over the documentation tree (the CI
//! substitute for a network link checker): every relative link in the
//! top-level docs must point at a file that exists in the repository,
//! and every `#anchor` into a checked document must match one of its
//! headings. External `http(s)`/`mailto` links are out of scope — the
//! build is offline by design.

use std::collections::HashSet;
use std::path::{Path, PathBuf};

/// The documents under guard. RESULTS.md is the modern-architecture
/// write-up; the rest are the long-standing doc tree.
const DOCS: [&str; 6] = [
    "README.md",
    "ARCHITECTURE.md",
    "EXPERIMENTS.md",
    "RESULTS.md",
    "ROADMAP.md",
    "CHANGELOG.md",
];

fn repo_root() -> PathBuf {
    // CARGO_MANIFEST_DIR is crates/core; the docs live two levels up.
    Path::new(env!("CARGO_MANIFEST_DIR"))
        .join("../..")
        .canonicalize()
        .unwrap()
}

/// Extracts inline markdown link targets: `[text](target)` and
/// `![alt](target)`. Code fences are skipped so shell snippets with
/// `](` sequences cannot produce false positives.
fn link_targets(text: &str) -> Vec<String> {
    let mut out = Vec::new();
    let mut in_fence = false;
    for line in text.lines() {
        if line.trim_start().starts_with("```") {
            in_fence = !in_fence;
            continue;
        }
        if in_fence {
            continue;
        }
        let bytes = line.as_bytes();
        let mut i = 0;
        while i + 1 < bytes.len() {
            if bytes[i] == b']' && bytes[i + 1] == b'(' {
                let rest = &line[i + 2..];
                if let Some(end) = rest.find(')') {
                    let target = rest[..end].split_whitespace().next().unwrap_or("");
                    if !target.is_empty() {
                        out.push(target.to_string());
                    }
                }
            }
            i += 1;
        }
    }
    out
}

/// GitHub-style heading slugs: lowercase, punctuation dropped, spaces
/// to hyphens.
fn anchors(text: &str) -> HashSet<String> {
    let mut out = HashSet::new();
    let mut in_fence = false;
    for line in text.lines() {
        if line.trim_start().starts_with("```") {
            in_fence = !in_fence;
            continue;
        }
        if in_fence || !line.starts_with('#') {
            continue;
        }
        let heading = line.trim_start_matches('#').trim();
        let slug: String = heading
            .chars()
            .filter_map(|c| match c {
                'A'..='Z' => Some(c.to_ascii_lowercase()),
                'a'..='z' | '0'..='9' | '-' | '_' => Some(c),
                ' ' => Some('-'),
                _ => None,
            })
            .collect();
        out.insert(slug);
    }
    out
}

#[test]
fn all_docs_exist_and_every_relative_link_resolves() {
    let root = repo_root();
    let mut errors = Vec::new();
    let mut doc_anchors: Vec<(String, HashSet<String>)> = Vec::new();
    for doc in DOCS {
        match std::fs::read_to_string(root.join(doc)) {
            Ok(text) => doc_anchors.push((doc.to_string(), anchors(&text))),
            Err(e) => errors.push(format!("{doc}: unreadable ({e})")),
        }
    }
    for doc in DOCS {
        let Ok(text) = std::fs::read_to_string(root.join(doc)) else {
            continue;
        };
        for target in link_targets(&text) {
            if target.starts_with("http://")
                || target.starts_with("https://")
                || target.starts_with("mailto:")
            {
                continue; // external; offline build cannot verify
            }
            let (path_part, anchor) = match target.split_once('#') {
                Some((p, a)) => (p, Some(a)),
                None => (target.as_str(), None),
            };
            // Resolve the file part (empty = same document).
            let file = if path_part.is_empty() {
                doc.to_string()
            } else {
                path_part.to_string()
            };
            let resolved = root.join(&file);
            if !resolved.exists() {
                errors.push(format!(
                    "{doc}: broken link `{target}` ({file} does not exist)"
                ));
                continue;
            }
            // Verify anchors into documents we parsed.
            if let Some(anchor) = anchor {
                if let Some((_, slugs)) = doc_anchors.iter().find(|(d, _)| *d == file) {
                    if !slugs.contains(anchor) {
                        errors.push(format!(
                            "{doc}: broken anchor `{target}` (no heading slugs to `{anchor}` in {file})"
                        ));
                    }
                }
            }
        }
    }
    assert!(
        errors.is_empty(),
        "documentation link rot:\n  {}",
        errors.join("\n  ")
    );
}

#[test]
fn link_extractor_understands_the_grammar() {
    let text =
        "See [docs](EXPERIMENTS.md#env-vars) and ![img](a/b.png).\n```\nnot [a](link.md)\n```\n";
    assert_eq!(link_targets(text), ["EXPERIMENTS.md#env-vars", "a/b.png"]);
    let slugs = anchors("# Hello, World!\n## `figures modern` artifact\n");
    assert!(slugs.contains("hello-world"));
    assert!(slugs.contains("figures-modern-artifact"));
}
