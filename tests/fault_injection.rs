//! Robustness tests for the fault-injection harness: randomized
//! protocol-legal fault schedules (delay jitter, forced evictions,
//! reservation wipes) must never break atomicity, coherence or
//! termination; paranoid invariant checking must be a pure observer;
//! injected runs must stay bit-for-bit deterministic; and failures must
//! surface as structured diagnostics, not panics.

use atomic_dsm::experiments::runner::{self, Job};
use atomic_dsm::experiments::{BarSpec, CounterKind};
use atomic_dsm::machine::{Action, Machine, MachineBuilder, ProcCtx, RunError};
use atomic_dsm::protocol::{MemOp, OpResult, PhiOp, SyncConfig, SyncPolicy};
use atomic_dsm::sim::{Addr, Cycle, FaultConfig, MachineConfig};
use atomic_dsm::sync::stack::{unpack_node, StackPop, StackPrim, StackPush};
use atomic_dsm::sync::{Primitive, ShmAlloc, Step, SubMachine};
use proptest::prelude::*;
use std::collections::HashSet;
use std::sync::{Arc, Mutex};

const LIMIT: Cycle = Cycle::new(200_000_000);

/// A counter machine where processor `p` increments a shared counter
/// `iters` times using method `p % 3` (fetch_and_add, CAS loop, LL/SC
/// loop), under the given fault schedule.
fn counter_machine(
    nodes: u32,
    iters: u64,
    policy: SyncPolicy,
    faults: FaultConfig,
    seed: u64,
) -> (Machine, Addr) {
    let counter = Addr::new(0x2000);
    let mut mcfg = MachineConfig::with_nodes(nodes);
    mcfg.seed = seed;
    mcfg.faults = faults;
    let mut b = MachineBuilder::new(mcfg);
    b.register_sync(
        counter,
        SyncConfig {
            policy,
            ..Default::default()
        },
    );
    for p in 0..nodes {
        let method = p % 3;
        let mut done_count = 0u64;
        let mut phase = 0u8;
        b.add_program(move |ctx: &mut ProcCtx<'_>| loop {
            if done_count == iters {
                return Action::Done;
            }
            match method {
                0 => {
                    done_count += 1;
                    return Action::Op(MemOp::FetchPhi {
                        addr: counter,
                        op: PhiOp::Add(1),
                    });
                }
                1 => match (phase, ctx.last.take()) {
                    (0, _) => {
                        phase = 1;
                        return Action::Op(MemOp::Load { addr: counter });
                    }
                    (1, Some(OpResult::Loaded { value, .. })) => {
                        phase = 2;
                        return Action::Op(MemOp::Cas {
                            addr: counter,
                            expected: value,
                            new: value + 1,
                        });
                    }
                    (2, Some(OpResult::CasDone { success, observed })) => {
                        if success {
                            phase = 0;
                            done_count += 1;
                        } else {
                            return Action::Op(MemOp::Cas {
                                addr: counter,
                                expected: observed,
                                new: observed + 1,
                            });
                        }
                    }
                    other => panic!("unexpected CAS program state {other:?}"),
                },
                _ => match (phase, ctx.last.take()) {
                    (0, _) => {
                        phase = 1;
                        return Action::Op(MemOp::LoadLinked { addr: counter });
                    }
                    (1, Some(OpResult::Loaded { value, serial, .. })) => {
                        phase = 2;
                        return Action::Op(MemOp::StoreConditional {
                            addr: counter,
                            value: value + 1,
                            serial,
                        });
                    }
                    (2, Some(OpResult::ScDone { success })) => {
                        if success {
                            phase = 0;
                            done_count += 1;
                        } else {
                            phase = 1;
                            return Action::Op(MemOp::LoadLinked { addr: counter });
                        }
                    }
                    other => panic!("unexpected LL/SC program state {other:?}"),
                },
            }
        });
    }
    (b.build(), counter)
}

/// Runs a faulted counter mix to completion, checks exact atomicity,
/// coherence and invariants, and returns the run's observable fingerprint
/// (cycles, events, faults actually injected).
fn run_counter(
    nodes: u32,
    iters: u64,
    policy: SyncPolicy,
    faults: FaultConfig,
    seed: u64,
) -> (u64, u64, (u64, u64, u64)) {
    let (mut m, counter) = counter_machine(nodes, iters, policy, faults, seed);
    let report = m
        .run(LIMIT)
        .unwrap_or_else(|e| panic!("faulted {policy} run failed: {e}"));
    m.validate_coherence().expect("coherent after faulted run");
    let violations = m.check_invariants();
    assert!(violations.is_empty(), "{violations:?}");
    assert_eq!(
        m.read_word(counter),
        u64::from(nodes) * iters,
        "{policy}: faulted run lost or duplicated updates"
    );
    (report.cycles.as_u64(), report.events, m.injected_faults())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(10))]

    /// Any randomized schedule of protocol-legal faults — jitter, forced
    /// evictions, reservation wipes — preserves exact atomicity and final
    /// coherence on the mixed-primitive counter workload, with the
    /// paranoid checker validating every transition and the watchdog
    /// proving termination progress.
    #[test]
    fn random_fault_schedules_preserve_atomicity(
        seed in any::<u64>(),
        jitter in 0u32..3_000,
        jmax in 1u64..64,
        evict in 0u32..8_000,
        // Wipe rates are kept below the point where every LL/SC window
        // is destroyed: a wipe storm that outpaces the SC round-trip
        // starves the retry loop *legally* (each failed SC still
        // retires, so it is neither deadlock nor livelock — just no
        // forward progress for the wiped processor).
        wipe in 0u32..2_000,
        period in prop::sample::select(vec![1024u64, 4096]),
        policy in prop::sample::select(vec![SyncPolicy::Inv, SyncPolicy::Unc, SyncPolicy::Upd]),
    ) {
        let faults = FaultConfig {
            jitter_per_10k: jitter,
            jitter_max: jmax,
            evict_per_10k: evict,
            wipe_per_10k: wipe,
            corrupt_per_10k: 0,
            period,
            paranoid: true,
            watchdog: 10_000_000,
        };
        run_counter(4, 6, policy, faults, seed);
    }

    /// The same fault schedule and seed reproduce the same run exactly:
    /// cycle count, event count and injected-fault counts all match.
    #[test]
    fn fault_injected_runs_are_deterministic(seed in any::<u64>()) {
        let faults = FaultConfig {
            paranoid: true,
            watchdog: 10_000_000,
            ..FaultConfig::light()
        };
        let a = run_counter(4, 5, SyncPolicy::Inv, faults.clone(), seed);
        let b = run_counter(4, 5, SyncPolicy::Inv, faults, seed);
        prop_assert_eq!(a, b);
    }
}

/// Paranoid mode is a pure observer: it must not change a single cycle
/// or event of a fault-free run.
#[test]
fn paranoid_mode_changes_nothing() {
    let plain = run_counter(4, 8, SyncPolicy::Inv, FaultConfig::default(), 42);
    let paranoid = FaultConfig {
        paranoid: true,
        ..FaultConfig::default()
    };
    let checked = run_counter(4, 8, SyncPolicy::Inv, paranoid, 42);
    assert_eq!(plain.0, checked.0, "paranoid mode changed the cycle count");
    assert_eq!(plain.1, checked.1, "paranoid mode changed the event count");
}

/// A saturated fault schedule must actually fire — otherwise the suite
/// is testing nothing. Two processors (fetch_and_add + CAS loop, no
/// LL/SC so certain wipes cannot starve anyone) under every-window
/// evictions and wipes.
#[test]
fn saturated_schedule_actually_injects() {
    let faults = FaultConfig {
        evict_per_10k: 10_000,
        wipe_per_10k: 10_000,
        period: 64,
        ..FaultConfig::default()
    };
    let (_, _, (evictions, wipes, _)) = run_counter(2, 24, SyncPolicy::Inv, faults, 7);
    assert!(evictions > 0, "no evictions applied");
    assert!(wipes > 0, "no reservation wipes applied");
}

/// The lock-free stack conserves its nodes under the heavy fault preset
/// with paranoid checking on: no node is lost or duplicated.
#[test]
fn lockfree_stack_survives_heavy_faults() {
    let nodes = 4u32;
    let per_proc = 6u64;
    let mut alloc = ShmAlloc::new(32, nodes);
    let top = alloc.word();
    let node_addrs: Vec<Vec<Addr>> = (0..nodes)
        .map(|_| (0..per_proc).map(|_| alloc.array(2)).collect())
        .collect();

    let popped: Arc<Mutex<Vec<u64>>> = Arc::new(Mutex::new(Vec::new()));
    let mut mcfg = MachineConfig::with_nodes(nodes);
    // The light preset, not heavy: heavy's wipe storm (a reservation
    // wipe every ~4k cycles per node) can legally starve the stack's
    // LL/SC retry loop forever. Light leaves a progress window while
    // still racing evictions and wipes against the stack protocol.
    mcfg.faults = FaultConfig {
        paranoid: true,
        watchdog: 10_000_000,
        ..FaultConfig::light()
    };
    let mut b = MachineBuilder::new(mcfg);
    b.register_sync(top, SyncConfig::default());

    for p in 0..nodes {
        let my_nodes = node_addrs[p as usize].clone();
        let popped = Arc::clone(&popped);
        let mut round = 0usize;
        let mut pushing = true;
        let mut push: Option<StackPush> = None;
        let mut pop: Option<StackPop> = None;
        b.add_program(move |ctx: &mut ProcCtx<'_>| loop {
            if let Some(m) = &mut push {
                match m.step(ctx.last.take(), ctx.rng) {
                    Step::Op(op) => return Action::Op(op),
                    Step::Compute(c) => return Action::Compute(c),
                    Step::Done => push = None,
                }
            }
            if let Some(m) = &mut pop {
                match m.step(ctx.last.take(), ctx.rng) {
                    Step::Op(op) => return Action::Op(op),
                    Step::Compute(c) => return Action::Compute(c),
                    Step::Done => {
                        if let Some(n) = m.popped() {
                            popped.lock().unwrap().push(n);
                        }
                        pop = None;
                    }
                }
            }
            if round == my_nodes.len() {
                return Action::Done;
            }
            if pushing {
                pushing = false;
                push = Some(StackPush::new(top, my_nodes[round], StackPrim::Llsc));
            } else {
                pushing = true;
                round += 1;
                pop = Some(StackPop::new(top, StackPrim::Llsc));
            }
        });
    }

    let mut m = b.build();
    m.run(LIMIT).expect("faulted stack stress completes");
    m.validate_coherence().unwrap();
    assert!(m.check_invariants().is_empty());

    let mut remaining = Vec::new();
    let mut cursor = match StackPrim::Llsc {
        StackPrim::CasCounted => unpack_node(m.read_word(top)),
        _ => m.read_word(top),
    };
    while cursor != 0 {
        remaining.push(cursor);
        assert!(
            remaining.len() <= (nodes as usize) * per_proc as usize + 1,
            "stack has a cycle!"
        );
        cursor = m.read_word(Addr::new(cursor));
    }
    let all_nodes: HashSet<u64> = node_addrs.iter().flatten().map(|a| a.as_u64()).collect();
    let mut seen = HashSet::new();
    for &n in popped.lock().unwrap().iter().chain(remaining.iter()) {
        assert!(all_nodes.contains(&n), "unknown node {n:#x}");
        assert!(seen.insert(n), "node {n:#x} duplicated under faults!");
    }
    assert_eq!(
        seen.len(),
        all_nodes.len(),
        "nodes lost under faults ({} of {})",
        seen.len(),
        all_nodes.len()
    );
}

/// An impossibly tight watchdog window trips on the first outstanding
/// operation and reports a structured livelock diagnostic naming the
/// blocked processors — instead of spinning forever or panicking.
#[test]
fn watchdog_reports_livelock_with_blocked_processors() {
    let faults = FaultConfig {
        watchdog: 1,
        ..FaultConfig::default()
    };
    let (mut m, _) = counter_machine(4, 4, SyncPolicy::Unc, faults, 3);
    let err = m.run(LIMIT).expect_err("watchdog must fire");
    match &err {
        RunError::Livelock { window, procs, .. } => {
            assert_eq!(*window, 1);
            assert!(
                procs.iter().any(|p| p.op.is_some()),
                "livelock dump must name a blocked op: {procs:?}"
            );
        }
        other => panic!("expected a livelock, got {other}"),
    }
    let rendered = err.to_string();
    assert!(rendered.contains("livelock"), "{rendered}");
    assert!(rendered.contains("blocked on"), "{rendered}");
}

/// Deliberate state corruption (the test-only hook) is caught by the
/// invariant checker as a structured diagnostic carrying the offending
/// line and node set — not as a panic.
#[test]
fn corruption_is_caught_as_structured_diagnostic() {
    let shared = Addr::new(0x40);
    let mut b = MachineBuilder::new(MachineConfig::with_nodes(2));
    for _ in 0..2 {
        b.add_program(move |ctx: &mut ProcCtx<'_>| {
            if ctx.last.is_none() {
                Action::Op(MemOp::Load { addr: shared })
            } else {
                Action::Done
            }
        });
    }
    let mut m = b.build();
    m.run(LIMIT).expect("load run completes");
    assert!(m.check_invariants().is_empty());

    let line = shared.line(32);
    assert!(m.corrupt_promote_shared(atomic_dsm::sim::NodeId::new(0), line));
    assert!(m.corrupt_promote_shared(atomic_dsm::sim::NodeId::new(1), line));
    let violations = m.check_invariants();
    assert_eq!(violations.len(), 1, "{violations:?}");
    let v = &violations[0];
    assert_eq!(v.invariant, "single-writer");
    assert_eq!(v.line, Some(line));
    assert_eq!(
        v.nodes,
        vec![
            atomic_dsm::sim::NodeId::new(0),
            atomic_dsm::sim::NodeId::new(1)
        ]
    );
    assert!(m.validate_coherence().is_err());
}

/// One failing job reports its own `JobError` without aborting its
/// siblings: the rest of the batch completes and returns `Ok`.
#[test]
fn runner_surfaces_per_job_failures_without_aborting_siblings() {
    let bar = BarSpec::new(SyncPolicy::Unc, Primitive::FetchPhi);
    let mut doomed_mcfg = MachineConfig::with_nodes(4);
    doomed_mcfg.faults.watchdog = 1; // trips on the first remote op
    let doomed = Job::counter(doomed_mcfg, CounterKind::LockFree, bar, 4, 1.0, 4);
    let healthy = Job::counter(
        MachineConfig::with_nodes(4),
        CounterKind::LockFree,
        bar,
        4,
        1.0,
        4,
    );
    let results = runner::try_run_all(&[doomed.clone(), healthy.clone()]);
    let err = results[0].as_ref().expect_err("doomed job must fail");
    assert!(err.message.contains("livelock"), "{err}");
    assert!(
        results[1].is_ok(),
        "sibling must survive the doomed job: {:?}",
        results[1]
    );
    // Failures are cached like successes: no re-simulation.
    let before = runner::stats().completed;
    let again = runner::try_run_one(&doomed);
    assert_eq!(again.expect_err("still failing").message, err.message);
    assert_eq!(
        runner::stats().completed,
        before,
        "failure was re-simulated"
    );
}

/// Regression: jitter must not break per-pair FIFO for a home node's
/// messages to its *co-located* cache. The local fast path in
/// `LatencyNetwork::send` used to skip the FIFO clamp, so a jittered
/// `CasGrant` could be overtaken by a later `FwdCas` on the same
/// (node, node) pair — the intervention then found the cache in
/// `Shared` (its grant still in flight) and died with a directory
/// mismatch. The fault injector found this on the `INV CASs +drop`
/// bar; this pins the exact failing job.
#[test]
fn jitter_preserves_local_fifo_between_home_and_colocated_cache() {
    let mut mcfg = MachineConfig::with_nodes(16);
    mcfg.faults = FaultConfig::light();
    let mut bar = BarSpec::new(SyncPolicy::Inv, Primitive::Cas);
    bar.cas_variant = atomic_dsm::protocol::CasVariant::Share;
    bar.drop_copy = true;
    let job = Job::counter(mcfg, CounterKind::LockFree, bar, 2, 1.0, 16);
    let result = runner::try_run_one(&job);
    assert!(result.is_ok(), "{}", result.unwrap_err());
}
