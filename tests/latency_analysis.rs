//! End-to-end tests for the latency-observability tentpole: a traced
//! run's ring dump feeds the `dsm-analyze` engine, which must
//! reconstruct operation spans, produce percentile tables, and emit an
//! additive critical-path decomposition — all byte-deterministically.
//! Also covers the `figures latency`/`metrics` artifacts' worker-count
//! independence and the zero-perturbation contract: tracing must not
//! change simulated results.

use atomic_dsm::experiments::runner;
use atomic_dsm::experiments::{latency, metrics, BarSpec, CounterKind, Scale};
use atomic_dsm::protocol::SyncPolicy;
use atomic_dsm::sim::{Cycle, MachineConfig};
use atomic_dsm::trace::{perfetto, TraceSpec};
use atomic_dsm::workloads::{build_synthetic, SyntheticConfig};
use atomic_dsm::{Machine, Primitive};
use dsm_analyze::Analysis;
use std::path::PathBuf;
use std::sync::{Mutex, MutexGuard};

/// The runner cache and worker override are process-wide; tests that
/// touch them must not interleave.
static EXCLUSIVE: Mutex<()> = Mutex::new(());

fn exclusive() -> MutexGuard<'static, ()> {
    EXCLUSIVE
        .lock()
        .unwrap_or_else(std::sync::PoisonError::into_inner)
}

const LIMIT: Cycle = Cycle::new(100_000_000);

fn scratch(name: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("dsm-latan-{}-{name}", std::process::id()));
    std::fs::create_dir_all(&dir).expect("create scratch dir");
    dir
}

/// A contended CAS counter: plenty of retries, invalidations and
/// network traffic for the analyzer to attribute.
fn contended_cas_machine(spec: Option<TraceSpec>) -> Machine {
    let bar = BarSpec::new(SyncPolicy::Inv, Primitive::Cas);
    let scfg = SyntheticConfig {
        kind: CounterKind::LockFree,
        choice: bar.prim_choice(),
        sync: bar.sync_config(),
        contention: 8,
        write_run: 1.0,
        rounds: 16,
    };
    let (mut machine, _layout) = build_synthetic(MachineConfig::with_nodes(8), &scfg);
    if let Some(spec) = &spec {
        machine.attach_tracer(spec);
    }
    machine
}

/// Ring-only spec with every category (span phases need `msg`).
fn ring_spec(dir: &std::path::Path) -> TraceSpec {
    TraceSpec::from_spec(&format!("ring:262144:{}", dir.display())).expect("valid spec")
}

#[test]
fn traced_run_analyzes_end_to_end_with_additive_decomposition() {
    let dir = scratch("e2e");
    let mut m = contended_cas_machine(Some(ring_spec(&dir)));
    m.run(LIMIT).expect("run");
    let files = m.trace_files().to_vec();
    assert_eq!(files.len(), 1, "ring file written");

    let a = Analysis::from_files(&files).expect("ring parses");
    assert!(!a.spans.is_empty(), "spans reconstructed from the ring");
    assert_eq!(a.files, 1);

    // Every span's decomposition must sum exactly to its latency — the
    // tentpole's headline invariant.
    let mut phase_bearing = 0usize;
    for s in &a.spans {
        let parts = s.decompose();
        assert_eq!(
            parts.values().sum::<u64>(),
            s.latency(),
            "decomposition not additive for span {} ({})",
            s.id,
            s.op
        );
        if s.phases.iter().any(|p| p.label == "net") {
            phase_bearing += 1;
        }
    }
    assert!(
        phase_bearing > 0,
        "network phases attributed to remote operations"
    );

    // The percentile table covers the workload's primitives.
    let by_op = a.latency_by_op();
    assert!(by_op.contains_key("Cas"), "ops: {:?}", by_op.keys());
    for (op, h) in &by_op {
        assert!(h.total() > 0, "{op}: empty histogram");
        assert!(h.percentile(50, 100) <= h.max(), "{op}: p50 beyond max");
    }

    // Aggregate decomposition exposes non-local components and the
    // report renders every section.
    let labels = a.component_labels();
    assert!(labels.iter().any(|l| l == "net"), "labels: {labels:?}");
    assert!(labels.iter().any(|l| l == "local"));
    let report = a.report();
    for section in [
        "operation latency",
        "critical path",
        "hottest lines",
        "retry chains",
        "p99",
        "Cas",
    ] {
        assert!(report.contains(section), "report lacks `{section}`");
    }
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn contended_cas_yields_retry_chains() {
    let dir = scratch("chains");
    let mut m = contended_cas_machine(Some(ring_spec(&dir)));
    m.run(LIMIT).expect("run");
    let a = Analysis::from_files(m.trace_files()).expect("ring parses");
    let chains = a.chains();
    assert!(!chains.is_empty());
    let retried: Vec<_> = chains.iter().filter(|c| c.spans.len() > 1).collect();
    assert!(
        !retried.is_empty(),
        "8-way contended CAS must produce failed-then-retried attempts"
    );
    for c in &retried {
        assert_eq!(
            c.retry_cycles() + c.backoff_cycles() + c.final_cycles(),
            c.duration(),
            "chain decomposition not additive (proc {}, line {:#x})",
            c.proc,
            c.line
        );
    }
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn analysis_report_is_deterministic_across_runs() {
    let run = |name: &str| {
        let dir = scratch(name);
        let mut m = contended_cas_machine(Some(ring_spec(&dir)));
        m.run(LIMIT).expect("run");
        let report = Analysis::from_files(m.trace_files())
            .expect("ring parses")
            .report();
        std::fs::remove_dir_all(&dir).ok();
        report
    };
    assert_eq!(run("det-a"), run("det-b"), "analyzer output must be stable");
}

#[test]
fn tracing_does_not_perturb_simulated_results() {
    let dir = scratch("perturb");
    let mut traced = contended_cas_machine(Some(ring_spec(&dir)));
    let mut plain = contended_cas_machine(None);
    let rt = traced.run(LIMIT).expect("traced run");
    let rp = plain.run(LIMIT).expect("plain run");
    assert_eq!(
        (rt.cycles, rt.events),
        (rp.cycles, rp.events),
        "span tracking changed the simulation"
    );
    let digest = |m: &Machine| {
        let mut h = atomic_dsm::sim::StableHasher::new();
        m.stats().digest(&mut h);
        h.finish()
    };
    assert_eq!(
        digest(&traced),
        digest(&plain),
        "stats (including the latency histogram) must not depend on tracing"
    );
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn perfetto_gains_span_slices_that_validate() {
    let dir = scratch("perfetto-spans");
    let spec = TraceSpec {
        out: Some(dir.clone()),
        ..TraceSpec::default()
    };
    let mut m = contended_cas_machine(Some(spec));
    m.run(LIMIT).expect("run");
    let json = m.tracer().unwrap().perfetto_json().unwrap();
    perfetto::validate(&json).expect("trace with span slices validates");
    assert!(json.contains("\"outcome\""), "op slices carry outcomes");
    assert!(json.contains("\"span\""), "phase slices carry span ids");
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn latency_table_is_identical_across_worker_counts() {
    let _guard = exclusive();
    let tiny = Scale {
        procs: 4,
        rounds: 4,
        tc_size: 4,
        wires: 8,
        tasks: 8,
    };
    let run = |workers: usize| {
        runner::with_workers(workers, || {
            runner::clear_cache();
            latency::render(&latency::run(&tiny))
        })
    };
    assert_eq!(run(1), run(8), "worker count changed the latency table");
}

#[test]
fn metrics_table_is_identical_across_worker_counts() {
    let _guard = exclusive();
    let tiny = Scale {
        procs: 4,
        rounds: 4,
        tc_size: 4,
        wires: 8,
        tasks: 8,
    };
    let run = |workers: usize| {
        runner::with_workers(workers, || {
            runner::clear_cache();
            let runs = metrics::run(&tiny);
            (metrics::render(&runs), metrics::csv_rows(&runs))
        })
    };
    assert_eq!(run(1), run(8), "worker count changed the metrics table");
}
