//! The linearizability oracle over full-machine executions.
//!
//! Every lock-free structure — Michael–Scott queue, Harris list,
//! bucket hash map — runs on the simulated DSM machine with its
//! invocation/response history stamped in simulated cycles, and the
//! Wing–Gong checker must accept that history against the sequential
//! specification. Three execution regimes are covered: normal,
//! paranoid (the protocol invariant checker validates every
//! transition), and fault-injected (deterministic jitter, forced
//! evictions and reservation wipes via [`FaultConfig`]).
//!
//! The negative direction matters just as much: a deliberately buggy
//! implementation — the classic unvalidated-CAS stack pop, driven
//! through a directed ABA schedule — must produce a history the
//! checker *rejects*, and a rejected history must be written out as a
//! diagnostic artifact. A checker that accepts everything tests
//! nothing.

use atomic_dsm::machine::{Action, MachineBuilder, ProcCtx};
use atomic_dsm::protocol::{MemOp, OpResult, SyncConfig, SyncPolicy};
use atomic_dsm::sim::{Cycle, FaultConfig, MachineConfig};
use atomic_dsm::sync::{LinkPrim, ShmAlloc};
use atomic_dsm::trace::{
    assert_linearizable, check, FifoQueueSpec, HistEvent, HistOp, HistRet, History, LifoStackSpec,
    Rejection, SetSpec,
};
use atomic_dsm::workloads::{build_lockfree, check_invariants, LfConfig, LfStructure};
use std::sync::atomic::{AtomicU32, Ordering};
use std::sync::{Arc, Mutex};

const LIMIT: Cycle = Cycle::new(5_000_000_000);

/// No faults, no paranoia — the default execution regime.
fn normal() -> FaultConfig {
    FaultConfig::default()
}

/// Protocol invariant checker after every transition (pure observer).
fn paranoid() -> FaultConfig {
    FaultConfig {
        paranoid: true,
        ..FaultConfig::default()
    }
}

/// The light fault preset (jitter + evictions + reservation wipes)
/// with paranoid checking and a watchdog. Heavy's wipe storm can
/// legally starve LL/SC retry loops, so light is the stress regime
/// every structure must survive (see `tests/fault_injection.rs`).
fn faulted() -> FaultConfig {
    FaultConfig {
        paranoid: true,
        watchdog: 10_000_000,
        ..FaultConfig::light()
    }
}

/// Runs one structure on the full machine and pushes its history
/// through invariants + the linearizability oracle.
fn run_and_check(structure: LfStructure, prim: LinkPrim, policy: SyncPolicy, faults: FaultConfig) {
    let mut mcfg = MachineConfig::with_nodes(4);
    mcfg.faults = faults;
    let cfg = LfConfig {
        structure,
        prim,
        sync: SyncConfig {
            policy,
            ..Default::default()
        },
        ops_per_proc: 6,
        key_space: 8,
        buckets: 3,
    };
    let label = format!("{}-{}-{}", structure.label(), prim, policy.label());
    let (mut m, run) = build_lockfree(mcfg, &cfg);
    m.run(LIMIT).unwrap_or_else(|e| panic!("{label}: {e}"));
    m.validate_coherence()
        .unwrap_or_else(|e| panic!("{label}: {e}"));
    check_invariants(&m, &cfg, &run).unwrap_or_else(|e| panic!("{label}: {e}"));
    let hist = run.history.lock().unwrap();
    match structure {
        LfStructure::Queue => assert_linearizable(&label, &FifoQueueSpec, &hist),
        LfStructure::List | LfStructure::Map => assert_linearizable(&label, &SetSpec, &hist),
    }
}

/// Every structure × link primitive × coherence policy produces a
/// linearizable history under normal execution.
#[test]
fn all_structures_linearizable_normal() {
    for structure in LfStructure::ALL {
        for prim in LinkPrim::ALL {
            for policy in SyncPolicy::ALL {
                run_and_check(structure, prim, policy, normal());
            }
        }
    }
}

/// Paranoid invariant checking observes every transition without
/// disturbing linearizability.
#[test]
fn all_structures_linearizable_paranoid() {
    for structure in LfStructure::ALL {
        for prim in LinkPrim::ALL {
            run_and_check(structure, prim, SyncPolicy::Inv, paranoid());
        }
    }
}

/// Fault injection (jitter, evictions, reservation wipes) stretches
/// operation windows and forces retries, but histories stay
/// linearizable for every structure and primitive.
#[test]
fn all_structures_linearizable_under_faults() {
    for structure in LfStructure::ALL {
        for prim in LinkPrim::ALL {
            run_and_check(structure, prim, SyncPolicy::Inv, faulted());
        }
    }
}

/// Faulted runs under the memory-side reservation policies too.
#[test]
fn faulted_runs_cover_unc_and_upd() {
    for policy in [SyncPolicy::Unc, SyncPolicy::Upd] {
        run_and_check(LfStructure::Queue, LinkPrim::Llsc, policy, faulted());
        run_and_check(LfStructure::Map, LinkPrim::EmulLlsc, policy, faulted());
    }
}

// ---------------------------------------------------------------------------
// The negative: a deliberately buggy implementation the checker must
// reject.
// ---------------------------------------------------------------------------

/// One step of a directed two-processor schedule.
#[derive(Debug, Clone)]
enum SStep {
    /// Issue a memory operation and assert its result.
    Op(MemOp, Expect),
    /// Spin (host-side) until the shared phase reaches the value.
    Wait(u32),
    /// Advance the shared phase.
    Set(u32),
    /// Mark the invocation time of the next recorded operation.
    Begin,
    /// Record a completed operation into the history.
    Record(HistOp, HistRet),
}

#[derive(Debug, Clone)]
enum Expect {
    /// A load returning exactly this value.
    Value(u64),
    /// A CAS that must succeed.
    CasOk,
    /// A plain store.
    StoreOk,
}

/// Interprets a script as a machine program, recording history events
/// with real invocation/response cycle stamps.
fn scripted(
    steps: Vec<SStep>,
    phase: Arc<AtomicU32>,
    hist: Arc<Mutex<History>>,
    proc: u32,
) -> impl FnMut(&mut ProcCtx<'_>) -> Action {
    let mut idx = 0usize;
    let mut invoked = 0u64;
    let mut expecting: Option<Expect> = None;
    move |ctx: &mut ProcCtx<'_>| {
        if let Some(exp) = expecting.take() {
            let r = ctx.last.take().expect("scripted op result");
            match (&exp, &r) {
                (Expect::Value(v), OpResult::Loaded { value, .. }) => {
                    assert_eq!(value, v, "scripted load read the wrong value")
                }
                (Expect::CasOk, OpResult::CasDone { success, observed }) => {
                    assert!(*success, "scripted CAS failed (observed {observed:#x})")
                }
                (Expect::StoreOk, OpResult::Stored) => {}
                other => panic!("scripted step got unexpected result {other:?}"),
            }
        }
        loop {
            let Some(step) = steps.get(idx) else {
                return Action::Done;
            };
            match step {
                SStep::Op(op, exp) => {
                    expecting = Some(exp.clone());
                    idx += 1;
                    return Action::Op(*op);
                }
                SStep::Wait(p) => {
                    if phase.load(Ordering::Relaxed) < *p {
                        return Action::Compute(8);
                    }
                    idx += 1;
                }
                SStep::Set(p) => {
                    phase.store(*p, Ordering::Relaxed);
                    idx += 1;
                }
                SStep::Begin => {
                    invoked = ctx.now.as_u64();
                    idx += 1;
                }
                SStep::Record(op, ret) => {
                    hist.lock().unwrap().push(HistEvent {
                        proc,
                        invoked,
                        responded: ctx.now.as_u64(),
                        op: *op,
                        ret: *ret,
                    });
                    idx += 1;
                }
            }
        }
    }
}

/// The classic ABA bug, reproduced deterministically on the full
/// machine: a Treiber-stack pop implemented with an *unvalidated plain
/// CAS* (no reservation, no counter) reads `top = Y, Y.next = X`,
/// stalls, and meanwhile the other processor pops Y, pops X, and
/// pushes Y back. The victim's `CAS(top, Y → X)` then succeeds — the
/// address matches even though the stack changed underneath — leaving
/// the already-popped X reachable as the new top. The final pop
/// returns X a second time: one push of X, two pops of X, and the
/// Wing–Gong checker must find no linearization.
///
/// This is the in-tree "deliberately buggy seeded implementation"
/// negative: the safe disciplines (LL/SC, counted CAS — see
/// `tests/lockfree_stack.rs`) close exactly this window.
#[test]
fn aba_buggy_stack_pop_is_rejected() {
    let mut alloc = ShmAlloc::new(32, 2);
    let top = alloc.word();
    let x = alloc.array(2);
    let y = alloc.array(2);
    let (xv, yv) = (x.as_u64(), y.as_u64());

    let phase = Arc::new(AtomicU32::new(0));
    let hist: Arc<Mutex<History>> = Arc::default();
    // Seed: stack is X (bottom) then Y (top), recorded as two
    // sequential pushes that precede every machine operation.
    for (t, v) in [(0u64, xv), (1, yv)] {
        hist.lock().unwrap().push(HistEvent {
            proc: 0,
            invoked: t,
            responded: t,
            op: HistOp::Push(v),
            ret: HistRet::Ok,
        });
    }

    let mut b = MachineBuilder::new(MachineConfig::with_nodes(2));
    for addr in [top, x, y] {
        b.register_sync(addr, SyncConfig::default());
    }
    b.init_word(top, yv);
    b.init_word(y, xv); // Y.next = X
    b.init_word(x, 0); // X.next = nil

    // Processor 0: the victim. Reads top and next, then completes the
    // pop with a plain CAS after the world has changed underneath.
    let victim = vec![
        SStep::Begin,
        SStep::Op(MemOp::Load { addr: top }, Expect::Value(yv)),
        SStep::Op(MemOp::Load { addr: y }, Expect::Value(xv)),
        SStep::Set(1),
        SStep::Wait(2),
        SStep::Op(
            MemOp::Cas {
                addr: top,
                expected: yv,
                new: xv,
            },
            Expect::CasOk,
        ),
        SStep::Record(HistOp::Pop, HistRet::Value(yv)),
        SStep::Set(3),
    ];

    // Processor 1: pops Y, pops X, pushes Y back (all sequential and
    // individually correct), then pops the corrupted top.
    let interferer = vec![
        SStep::Wait(1),
        // pop -> Y
        SStep::Begin,
        SStep::Op(MemOp::Load { addr: top }, Expect::Value(yv)),
        SStep::Op(MemOp::Load { addr: y }, Expect::Value(xv)),
        SStep::Op(
            MemOp::Cas {
                addr: top,
                expected: yv,
                new: xv,
            },
            Expect::CasOk,
        ),
        SStep::Record(HistOp::Pop, HistRet::Value(yv)),
        // pop -> X
        SStep::Begin,
        SStep::Op(MemOp::Load { addr: top }, Expect::Value(xv)),
        SStep::Op(MemOp::Load { addr: x }, Expect::Value(0)),
        SStep::Op(
            MemOp::Cas {
                addr: top,
                expected: xv,
                new: 0,
            },
            Expect::CasOk,
        ),
        SStep::Record(HistOp::Pop, HistRet::Value(xv)),
        // push Y back
        SStep::Begin,
        SStep::Op(MemOp::Store { addr: y, value: 0 }, Expect::StoreOk),
        SStep::Op(
            MemOp::Cas {
                addr: top,
                expected: 0,
                new: yv,
            },
            Expect::CasOk,
        ),
        SStep::Record(HistOp::Push(yv), HistRet::Ok),
        SStep::Set(2),
        // The victim's stale CAS lands here, resurrecting X.
        SStep::Wait(3),
        SStep::Begin,
        SStep::Op(MemOp::Load { addr: top }, Expect::Value(xv)),
        SStep::Op(MemOp::Load { addr: x }, Expect::Value(0)),
        SStep::Op(
            MemOp::Cas {
                addr: top,
                expected: xv,
                new: 0,
            },
            Expect::CasOk,
        ),
        SStep::Record(HistOp::Pop, HistRet::Value(xv)),
    ];

    b.add_program(scripted(victim, Arc::clone(&phase), Arc::clone(&hist), 0));
    b.add_program(scripted(
        interferer,
        Arc::clone(&phase),
        Arc::clone(&hist),
        1,
    ));

    let mut m = b.build();
    m.run(LIMIT).expect("directed ABA schedule completes");
    m.validate_coherence().unwrap();

    // X was pushed once and popped twice: no linearization can exist.
    // 2 seeded pushes + 1 victim pop + 4 interferer ops = 7 events.
    let hist = hist.lock().unwrap();
    assert_eq!(hist.len(), 7);
    match check(&LifoStackSpec, &hist) {
        Err(Rejection::NotLinearizable { total, .. }) => assert_eq!(total, 7),
        other => panic!("ABA history must be rejected, got {other:?}"),
    }
}

/// A rejected history is written out as a diagnostic artifact (the CI
/// job uploads these on failure) before the assertion panics.
#[test]
fn rejected_history_writes_an_artifact() {
    let dir = std::path::Path::new("target").join("lin-rejects-selftest");
    let _ = std::fs::remove_dir_all(&dir);
    std::env::set_var("DSM_LIN_REJECTS", &dir);

    let mut h = History::new();
    for (t, op, ret) in [
        (0u64, HistOp::Push(7), HistRet::Ok),
        (1, HistOp::Pop, HistRet::Value(7)),
        (2, HistOp::Pop, HistRet::Value(7)), // popped twice, pushed once
    ] {
        h.push(HistEvent {
            proc: 0,
            invoked: 2 * t,
            responded: 2 * t + 1,
            op,
            ret,
        });
    }
    let result = std::panic::catch_unwind(|| {
        assert_linearizable("artifact-selftest", &LifoStackSpec, &h);
    });
    std::env::remove_var("DSM_LIN_REJECTS");
    assert!(result.is_err(), "a non-linearizable history must panic");
    let artifact = dir.join("artifact-selftest.txt");
    let text = std::fs::read_to_string(&artifact)
        .unwrap_or_else(|e| panic!("rejection artifact {} missing: {e}", artifact.display()));
    assert!(text.contains("no linearization exists"), "{text}");
    assert!(text.contains("Pop"), "{text}");
}
