//! End-to-end LL/SC semantics through the full machine: reservations,
//! intervening writes, the ABA/pointer problem, bare store-conditionals
//! and the limited-reservation local-failure optimization.

use atomic_dsm::machine::{Action, MachineBuilder, ProcCtx};
use atomic_dsm::protocol::{LlscScheme, MemOp, OpResult, SyncConfig, SyncPolicy};
use atomic_dsm::sim::{Addr, Cycle, MachineConfig};
use std::sync::{Arc, Mutex};

const X: Addr = Addr::new(0x40);
const LIMIT: Cycle = Cycle::new(10_000_000);

/// P0 does LL(x); P1 stores x; P0 then does SC — which must fail, under
/// both cache-side (INV) and memory-side (UNC) reservations.
#[test]
fn sc_fails_after_intervening_remote_write() {
    for policy in [SyncPolicy::Inv, SyncPolicy::Unc] {
        let outcome: Arc<Mutex<Option<bool>>> = Arc::new(Mutex::new(None));
        let mut b = MachineBuilder::new(MachineConfig::with_nodes(2));
        b.register_sync(
            X,
            SyncConfig {
                policy,
                ..Default::default()
            },
        );

        let out = Arc::clone(&outcome);
        let mut stage = 0;
        b.add_program(move |ctx: &mut ProcCtx<'_>| {
            stage += 1;
            match stage {
                1 => Action::Op(MemOp::LoadLinked { addr: X }),
                2 => Action::Barrier(0), // let P1 write
                3 => Action::Barrier(1),
                4 => {
                    let serial = None;
                    Action::Op(MemOp::StoreConditional {
                        addr: X,
                        value: 7,
                        serial,
                    })
                }
                5 => {
                    let OpResult::ScDone { success } = ctx.result() else {
                        panic!()
                    };
                    *out.lock().unwrap() = Some(success);
                    Action::Done
                }
                _ => unreachable!(),
            }
        });
        let mut stage = 0;
        b.add_program(move |_: &mut ProcCtx<'_>| {
            stage += 1;
            match stage {
                1 => Action::Barrier(0),
                2 => Action::Op(MemOp::Store { addr: X, value: 5 }),
                3 => Action::Barrier(1),
                4 => Action::Done,
                _ => unreachable!(),
            }
        });
        let mut m = b.build();
        m.run(LIMIT).unwrap();
        assert_eq!(
            *outcome.lock().unwrap(),
            Some(false),
            "{policy}: SC after an intervening write must fail"
        );
        assert_eq!(m.read_word(X), 5, "{policy}: the SC must not have written");
    }
}

/// The ABA problem: a location is written away from and back to its
/// original value between LL and SC. A plain reservation-bit scheme
/// correctly fails the SC; CAS would wrongly succeed — and the
/// serial-number scheme gives SC the same protection while permitting
/// bare SCs.
#[test]
fn aba_fails_sc_but_fools_cas() {
    // Part 1: SC fails under ABA (bit-vector reservations, UNC).
    let sc_result: Arc<Mutex<Option<bool>>> = Arc::new(Mutex::new(None));
    let cas_result: Arc<Mutex<Option<bool>>> = Arc::new(Mutex::new(None));
    let mut b = MachineBuilder::new(MachineConfig::with_nodes(2));
    b.register_sync(
        X,
        SyncConfig {
            policy: SyncPolicy::Unc,
            ..Default::default()
        },
    );
    b.init_word(X, 1);

    let sc_out = Arc::clone(&sc_result);
    let cas_out = Arc::clone(&cas_result);
    let mut stage = 0;
    b.add_program(move |ctx: &mut ProcCtx<'_>| {
        stage += 1;
        match stage {
            1 => Action::Op(MemOp::LoadLinked { addr: X }), // reads 1
            2 => Action::Barrier(0),                        // P1 does 1 -> 2 -> 1
            3 => Action::Barrier(1),
            4 => Action::Op(MemOp::StoreConditional {
                addr: X,
                value: 9,
                serial: None,
            }),
            5 => {
                let OpResult::ScDone { success } = ctx.result() else {
                    panic!()
                };
                *sc_out.lock().unwrap() = Some(success);
                // Now try CAS with the originally observed value 1.
                Action::Op(MemOp::Cas {
                    addr: X,
                    expected: 1,
                    new: 9,
                })
            }
            6 => {
                let OpResult::CasDone { success, .. } = ctx.result() else {
                    panic!()
                };
                *cas_out.lock().unwrap() = Some(success);
                Action::Done
            }
            _ => unreachable!(),
        }
    });
    let mut stage = 0;
    b.add_program(move |_: &mut ProcCtx<'_>| {
        stage += 1;
        match stage {
            1 => Action::Barrier(0),
            2 => Action::Op(MemOp::Store { addr: X, value: 2 }),
            3 => Action::Op(MemOp::Store { addr: X, value: 1 }), // back to 1: ABA
            4 => Action::Barrier(1),
            5 => Action::Done,
            _ => unreachable!(),
        }
    });
    let mut m = b.build();
    m.run(LIMIT).unwrap();
    assert_eq!(
        *sc_result.lock().unwrap(),
        Some(false),
        "SC must detect the ABA writes"
    );
    assert_eq!(
        *cas_result.lock().unwrap(),
        Some(true),
        "CAS cannot detect ABA — this is §2.2's pointer problem"
    );
}

/// Bare store-conditional with the serial-number scheme: a processor
/// that learns (value, serial) indirectly can SC without a preceding
/// LL — the §3.1 optimization that saves the MCS release an access.
#[test]
fn bare_sc_with_serial_numbers() {
    let result: Arc<Mutex<Vec<bool>>> = Arc::new(Mutex::new(Vec::new()));
    let mut b = MachineBuilder::new(MachineConfig::with_nodes(2));
    b.register_sync(
        X,
        SyncConfig {
            policy: SyncPolicy::Unc,
            llsc: LlscScheme::SerialNumber,
            ..Default::default()
        },
    );
    let out = Arc::clone(&result);
    let mut stage = 0;
    b.add_program(move |ctx: &mut ProcCtx<'_>| {
        stage += 1;
        match stage {
            // A bare SC with the initial serial number (0): succeeds.
            1 => Action::Op(MemOp::StoreConditional {
                addr: X,
                value: 11,
                serial: Some(0),
            }),
            2 => {
                let OpResult::ScDone { success } = ctx.result() else {
                    panic!()
                };
                out.lock().unwrap().push(success);
                // A bare SC with a stale serial: fails.
                Action::Op(MemOp::StoreConditional {
                    addr: X,
                    value: 22,
                    serial: Some(0),
                })
            }
            3 => {
                let OpResult::ScDone { success } = ctx.result() else {
                    panic!()
                };
                out.lock().unwrap().push(success);
                Action::Done
            }
            _ => unreachable!(),
        }
    });
    b.add_program(|_: &mut ProcCtx<'_>| Action::Done);
    let mut m = b.build();
    m.run(LIMIT).unwrap();
    assert_eq!(*result.lock().unwrap(), vec![true, false]);
    assert_eq!(m.read_word(X), 11);
}

/// Beyond-limit load_linked under the limited-k scheme reports
/// `reserved == false`, and the paper's point is that the doomed SC can
/// then "fail locally without causing any network traffic".
#[test]
fn beyond_limit_ll_reports_failure_indicator() {
    let flags: Arc<Mutex<Vec<bool>>> = Arc::new(Mutex::new(Vec::new()));
    let mut b = MachineBuilder::new(MachineConfig::with_nodes(4));
    b.register_sync(
        X,
        SyncConfig {
            policy: SyncPolicy::Unc,
            llsc: LlscScheme::Limited(2),
            ..Default::default()
        },
    );
    for p in 0..4u32 {
        let flags = Arc::clone(&flags);
        let mut stage = 0;
        b.add_program(move |ctx: &mut ProcCtx<'_>| {
            stage += 1;
            match stage {
                // Serialize the LLs with barriers so the reservation
                // order is deterministic: procs 0 and 1 get slots.
                1 => {
                    if p == 0 {
                        Action::Op(MemOp::LoadLinked { addr: X })
                    } else {
                        Action::Compute(1)
                    }
                }
                2 => {
                    if let Some(OpResult::Loaded { reserved, .. }) = ctx.last {
                        flags.lock().unwrap().push(reserved);
                    }
                    Action::Barrier(0)
                }
                3 => {
                    if p == 1 {
                        Action::Op(MemOp::LoadLinked { addr: X })
                    } else {
                        Action::Compute(1)
                    }
                }
                4 => {
                    if let Some(OpResult::Loaded { reserved, .. }) = ctx.last {
                        flags.lock().unwrap().push(reserved);
                    }
                    Action::Barrier(1)
                }
                5 => {
                    if p == 2 {
                        Action::Op(MemOp::LoadLinked { addr: X })
                    } else {
                        Action::Compute(1)
                    }
                }
                6 => {
                    if let Some(OpResult::Loaded { reserved, .. }) = ctx.last {
                        flags.lock().unwrap().push(reserved);
                    }
                    Action::Done
                }
                _ => unreachable!(),
            }
        });
    }
    let mut m = b.build();
    m.run(LIMIT).unwrap();
    // p0 and p1 reserved; p2 was beyond the limit. (Each proc records
    // only its own LL's flag; barriers order them 0, 1, 2.)
    assert_eq!(*flags.lock().unwrap(), vec![true, true, false]);
}

/// A failed local SC (no reservation) must not generate any network
/// traffic under the INV implementation.
#[test]
fn local_sc_failure_is_traffic_free() {
    let mut b = MachineBuilder::new(MachineConfig::with_nodes(2));
    b.register_sync(
        X,
        SyncConfig {
            policy: SyncPolicy::Inv,
            ..Default::default()
        },
    );
    let mut stage = 0;
    b.add_program(move |ctx: &mut ProcCtx<'_>| {
        stage += 1;
        match stage {
            1 => Action::Op(MemOp::StoreConditional {
                addr: X,
                value: 1,
                serial: None,
            }),
            2 => {
                assert_eq!(ctx.result(), OpResult::ScDone { success: false });
                assert_eq!(ctx.last_chain, Some(0), "failed SC must be local");
                Action::Done
            }
            _ => unreachable!(),
        }
    });
    b.add_program(|_: &mut ProcCtx<'_>| Action::Done);
    let mut m = b.build();
    m.run(LIMIT).unwrap();
    assert_eq!(
        m.stats().msgs.total_messages(),
        0,
        "no messages at all were needed"
    );
}
