//! Determinism regressions for the lock-free tier, mirroring
//! `tests/runner_determinism.rs`: benchmark tables must be bitwise
//! identical at any worker count, history capture must be a pure
//! function of the job (not of scheduling), and turning tracing on
//! must not move a single cycle or history byte — recording happens
//! entirely host-side and issues no memory operations.

use atomic_dsm::experiments::lockfree;
use atomic_dsm::experiments::runner::{self, Job};
use atomic_dsm::experiments::Scale;
use atomic_dsm::protocol::{SyncConfig, SyncPolicy};
use atomic_dsm::sim::{Cycle, MachineConfig};
use atomic_dsm::sync::LinkPrim;
use atomic_dsm::trace::TraceSpec;
use atomic_dsm::workloads::{build_lockfree, LfConfig, LfStructure};
use std::sync::{Mutex, MutexGuard};

/// The runner cache and progress counters are process-wide; tests that
/// clear the cache must not interleave.
static EXCLUSIVE: Mutex<()> = Mutex::new(());

fn exclusive() -> MutexGuard<'static, ()> {
    EXCLUSIVE
        .lock()
        .unwrap_or_else(std::sync::PoisonError::into_inner)
}

fn tiny() -> Scale {
    Scale {
        procs: 4,
        rounds: 4,
        tc_size: 4,
        wires: 8,
        tasks: 8,
    }
}

fn cfg(structure: LfStructure) -> LfConfig {
    LfConfig {
        structure,
        prim: LinkPrim::EmulLlsc,
        sync: SyncConfig {
            policy: SyncPolicy::Inv,
            ..Default::default()
        },
        ops_per_proc: 5,
        key_space: 8,
        buckets: 3,
    }
}

/// Runs one structure and returns its observable fingerprint: the
/// rendered history and the elapsed cycle count. `trace` attaches an
/// in-memory ring tracer before running.
fn fingerprint(structure: LfStructure, trace: bool) -> (String, u64) {
    let (mut m, run) = build_lockfree(MachineConfig::with_nodes(4), &cfg(structure));
    if trace {
        // Ring sink only (no file output path is ever flushed to the
        // repo root — target/ is ignored), every category recorded.
        let spec = TraceSpec::from_spec("ring:4096:target/lockfree-determinism-trace").unwrap();
        m.attach_tracer(&spec);
    }
    let report = m.run(Cycle::new(5_000_000_000)).expect("run completes");
    let rendered = run.history.lock().unwrap().render();
    (rendered, report.cycles.as_u64())
}

/// The tentpole guarantee carried over to the new tier: the full
/// lock-free table sweep renders to the exact same bytes on 1 worker
/// and on 8.
#[test]
fn lockfree_tables_are_bitwise_identical_across_worker_counts() {
    let _guard = exclusive();
    let scale = tiny();
    let run = |workers: usize| {
        runner::with_workers(workers, || {
            runner::clear_cache();
            lockfree::render(&lockfree::run_tables(&scale))
        })
    };
    assert_eq!(run(1), run(8), "worker count changed lock-free tables");
}

/// History capture is a pure function of the configuration: two
/// fresh builds of the same machine produce byte-identical rendered
/// histories and identical cycle counts, for every structure.
#[test]
fn history_capture_is_reproducible() {
    for structure in LfStructure::ALL {
        let a = fingerprint(structure, false);
        let b = fingerprint(structure, false);
        assert_eq!(a, b, "{}: history not reproducible", structure.label());
    }
}

/// Tracing is a pure observer of the lock-free tier: attaching a
/// tracer changes neither the recorded history nor the cycle count.
/// (History recording itself is host-side and issues no memory
/// operations, so the benchmark numbers are identical with the
/// history kept or discarded — this pins the other direction, that
/// *tracing* cannot perturb the history.)
#[test]
fn tracing_changes_neither_history_nor_cycles() {
    for structure in LfStructure::ALL {
        let plain = fingerprint(structure, false);
        let traced = fingerprint(structure, true);
        assert_eq!(
            plain,
            traced,
            "{}: tracing perturbed the run",
            structure.label()
        );
    }
}

/// Lock-free job keys: equal inputs give equal keys and seeds,
/// distinct inputs distinct seeds, and the bucket count is
/// canonicalized away for the structures that ignore it.
#[test]
fn lockfree_job_keys_and_seeds_distinguish_inputs() {
    let _guard = exclusive();
    let job = |structure, prim, policy, buckets| {
        Job::lockfree(
            MachineConfig::with_nodes(4),
            structure,
            prim,
            policy,
            5,
            8,
            buckets,
        )
    };
    let base = job(LfStructure::Queue, LinkPrim::Llsc, SyncPolicy::Inv, 4);
    assert_eq!(
        base,
        job(LfStructure::Queue, LinkPrim::Llsc, SyncPolicy::Inv, 4)
    );
    assert_eq!(
        base.seed(),
        job(LfStructure::Queue, LinkPrim::Llsc, SyncPolicy::Inv, 4).seed()
    );
    // The queue ignores buckets: different requests, one cache entry.
    assert_eq!(
        base,
        job(LfStructure::Queue, LinkPrim::Llsc, SyncPolicy::Inv, 7)
    );
    // The map does not.
    assert_ne!(
        job(LfStructure::Map, LinkPrim::Llsc, SyncPolicy::Inv, 4),
        job(LfStructure::Map, LinkPrim::Llsc, SyncPolicy::Inv, 7)
    );
    // Structure, primitive and policy all reach the seed.
    for other in [
        job(LfStructure::List, LinkPrim::Llsc, SyncPolicy::Inv, 4),
        job(LfStructure::Queue, LinkPrim::EmulLlsc, SyncPolicy::Inv, 4),
        job(LfStructure::Queue, LinkPrim::Llsc, SyncPolicy::Unc, 4),
    ] {
        assert_ne!(base.seed(), other.seed());
    }
    // And the family tag keeps lock-free jobs off the other families'
    // cache entries.
    assert_ne!(base.seed(), Job::table1(0).seed());

    // Duplicate jobs in one batch simulate once.
    runner::clear_cache();
    let before = runner::stats();
    runner::run_all(&[base.clone(), base.clone(), base.clone()]);
    let after = runner::stats();
    assert_eq!(
        after.completed - before.completed,
        1,
        "duplicate lock-free jobs re-simulated"
    );
}
