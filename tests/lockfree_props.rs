//! Property-based stress for the lock-free tier: random operation
//! mixes, machine sizes, seeds and fault schedules for the queue, the
//! list and the map, asserting on every sample that
//!
//! * the run completes coherently (with paranoid invariant checking
//!   and a watchdog on every faulted case),
//! * the structure invariants hold — queue value conservation and
//!   per-producer FIFO, list/map sortedness, home-bucket placement and
//!   key conservation ([`check_invariants`]),
//! * the recorded history is accepted by the Wing–Gong checker
//!   against the sequential specification.
//!
//! Workload sizes are chosen so every history fits the checker's
//! [`MAX_OPS`] cap — nothing is silently truncated.

use atomic_dsm::protocol::{SyncConfig, SyncPolicy};
use atomic_dsm::sim::{Cycle, FaultConfig, MachineConfig};
use atomic_dsm::sync::LinkPrim;
use atomic_dsm::trace::{check, linearize::MAX_OPS, FifoQueueSpec, SetSpec};
use atomic_dsm::workloads::{build_lockfree, check_invariants, LfConfig, LfStructure};
use proptest::prelude::*;

const LIMIT: Cycle = Cycle::new(200_000_000);

/// Builds, runs and fully checks one randomized sample.
#[allow(clippy::too_many_arguments)]
fn run_sample(
    structure: LfStructure,
    prim: LinkPrim,
    policy: SyncPolicy,
    nodes: u32,
    ops_per_proc: u32,
    key_space: u64,
    buckets: u32,
    seed: u64,
    faults: FaultConfig,
) {
    let label = format!(
        "{}/{}/{}/n{}xo{}",
        structure.label(),
        prim,
        policy.label(),
        nodes,
        ops_per_proc
    );
    let mut mcfg = MachineConfig::with_nodes(nodes);
    mcfg.seed = seed;
    mcfg.faults = faults;
    let cfg = LfConfig {
        structure,
        prim,
        sync: SyncConfig {
            policy,
            ..Default::default()
        },
        ops_per_proc,
        key_space,
        buckets,
    };
    let (mut m, run) = build_lockfree(mcfg, &cfg);
    m.run(LIMIT).unwrap_or_else(|e| panic!("{label}: {e}"));
    m.validate_coherence()
        .unwrap_or_else(|e| panic!("{label}: {e}"));
    check_invariants(&m, &cfg, &run).unwrap_or_else(|e| panic!("{label}: {e}"));

    let hist = run.history.lock().unwrap();
    assert!(
        hist.len() <= MAX_OPS,
        "{label}: workload sized over the checker cap ({} ops)",
        hist.len()
    );
    let accepted = match structure {
        LfStructure::Queue => check(&FifoQueueSpec, &hist),
        LfStructure::List | LfStructure::Map => check(&SetSpec, &hist),
    };
    accepted.unwrap_or_else(|r| panic!("{label}: history rejected: {r}"));
}

fn structures() -> impl Strategy<Value = LfStructure> {
    prop::sample::select(LfStructure::ALL.to_vec())
}

fn prims() -> impl Strategy<Value = LinkPrim> {
    prop::sample::select(LinkPrim::ALL.to_vec())
}

fn policies() -> impl Strategy<Value = SyncPolicy> {
    prop::sample::select(vec![SyncPolicy::Inv, SyncPolicy::Unc, SyncPolicy::Upd])
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// Fault-free random mixes: any structure, primitive, policy,
    /// machine size, op count, key space and machine seed.
    #[test]
    fn random_mixes_are_linearizable(
        structure in structures(),
        prim in prims(),
        policy in policies(),
        nodes in 2u32..=5,
        ops_per_proc in 2u32..=8,
        key_space in 3u64..=12,
        buckets in 1u32..=5,
        seed in any::<u64>(),
    ) {
        // Queue histories are 2 * nodes * ops_per_proc ops: 5×8×2 = 80
        // worst case, far under MAX_OPS.
        run_sample(
            structure, prim, policy, nodes, ops_per_proc, key_space,
            buckets, seed, FaultConfig::default(),
        );
    }

    /// Fault-injected random mixes, with the schedule itself drawn
    /// from `FaultConfig::from_spec` strings (the same grammar the CLI
    /// and `DSM_FAULTS` accept). Paranoid checking and a watchdog ride
    /// on every sample; wipe rates stay below the starvation regime
    /// (see `tests/fault_injection.rs` on why heavy is excluded).
    #[test]
    fn faulted_mixes_are_linearizable(
        structure in structures(),
        prim in prims(),
        policy in policies(),
        nodes in 2u32..=4,
        ops_per_proc in 2u32..=6,
        seed in any::<u64>(),
        spec in prop::sample::select(vec![
            "light",
            "jitter=800,jmax=48",
            "evict=4000,period=1024",
            "jitter=300,jmax=16,evict=2000,wipe=500,period=2048",
        ]),
    ) {
        let mut faults = FaultConfig::from_spec(spec)
            .unwrap_or_else(|e| panic!("bad spec `{spec}`: {e}"));
        faults.paranoid = true;
        faults.watchdog = 10_000_000;
        run_sample(
            structure, prim, policy, nodes, ops_per_proc, 8, 3, seed, faults,
        );
    }
}
