//! End-to-end lock-free stack runs on the full machine: concurrent
//! pushes and pops across processors must neither lose nor duplicate
//! nodes, under both safe head disciplines (LL/SC and counted CAS) and
//! every coherence policy.
//!
//! Every run also records a complete invocation/response history
//! (stamped with simulated cycles) and, when it fits the checker's
//! op cap, replays it through the Wing–Gong linearizability oracle
//! against [`LifoStackSpec`] — so the stack is held to the same
//! standard as the queue/list/map tier in `tests/linearizability.rs`,
//! not just to node conservation.

use atomic_dsm::machine::{Action, MachineBuilder, ProcCtx};
use atomic_dsm::sim::{Addr, Cycle, MachineConfig};
use atomic_dsm::sync::stack::{unpack_node, StackPop, StackPrim, StackPush};
use atomic_dsm::sync::{ShmAlloc, Step, SubMachine};
use atomic_dsm::trace::linearize::MAX_OPS;
use atomic_dsm::trace::{assert_linearizable, HistEvent, HistOp, HistRet, History, LifoStackSpec};
use atomic_dsm::{SyncConfig, SyncPolicy};
use std::collections::HashSet;
use std::sync::{Arc, Mutex};

const LIMIT: Cycle = Cycle::new(5_000_000_000);

fn run_stress(prim: StackPrim, policy: SyncPolicy, nodes: u32, per_proc: u64) {
    let mut alloc = ShmAlloc::new(32, nodes);
    let top = alloc.word();
    let node_addrs: Vec<Vec<Addr>> = (0..nodes)
        .map(|_| (0..per_proc).map(|_| alloc.array(2)).collect())
        .collect();

    let popped: Arc<Mutex<Vec<u64>>> = Arc::new(Mutex::new(Vec::new()));
    let hist: Arc<Mutex<History>> = Arc::default();
    let mut b = MachineBuilder::new(MachineConfig::with_nodes(nodes));
    b.register_sync(
        top,
        SyncConfig {
            policy,
            ..Default::default()
        },
    );

    for p in 0..nodes {
        let my_nodes = node_addrs[p as usize].clone();
        let popped = Arc::clone(&popped);
        let hist = Arc::clone(&hist);
        let mut round = 0usize;
        let mut pushing = true;
        let mut invoked = 0u64;
        let mut push: Option<StackPush> = None;
        let mut pop: Option<StackPop> = None;
        b.add_program(move |ctx: &mut ProcCtx<'_>| loop {
            if let Some(m) = &mut push {
                match m.step(ctx.last.take(), ctx.rng) {
                    Step::Op(op) => return Action::Op(op),
                    Step::Compute(c) => return Action::Compute(c),
                    Step::Done => {
                        hist.lock().unwrap().push(HistEvent {
                            proc: p,
                            invoked,
                            responded: ctx.now.as_u64(),
                            op: HistOp::Push(my_nodes[round].as_u64()),
                            ret: HistRet::Ok,
                        });
                        push = None;
                    }
                }
            }
            if let Some(m) = &mut pop {
                match m.step(ctx.last.take(), ctx.rng) {
                    Step::Op(op) => return Action::Op(op),
                    Step::Compute(c) => return Action::Compute(c),
                    Step::Done => {
                        let ret = match m.popped() {
                            Some(n) => {
                                popped.lock().unwrap().push(n);
                                HistRet::Value(n)
                            }
                            None => HistRet::Empty,
                        };
                        hist.lock().unwrap().push(HistEvent {
                            proc: p,
                            invoked,
                            responded: ctx.now.as_u64(),
                            op: HistOp::Pop,
                            ret,
                        });
                        pop = None;
                        round += 1;
                    }
                }
            }
            if round == my_nodes.len() {
                return Action::Done;
            }
            invoked = ctx.now.as_u64();
            if pushing {
                pushing = false;
                push = Some(StackPush::new(top, my_nodes[round], prim));
            } else {
                pushing = true;
                pop = Some(StackPop::new(top, prim));
            }
        });
    }

    let mut m = b.build();
    m.run(LIMIT).expect("stack stress completes");
    m.validate_coherence().unwrap();

    // Walk the remaining stack.
    let mut remaining = Vec::new();
    let mut cursor = match prim {
        StackPrim::CasCounted => unpack_node(m.read_word(top)),
        _ => m.read_word(top),
    };
    while cursor != 0 {
        remaining.push(cursor);
        assert!(
            remaining.len() <= (nodes as usize) * per_proc as usize + 1,
            "stack has a cycle!"
        );
        cursor = m.read_word(Addr::new(cursor));
    }

    // Conservation: every node appears exactly once, in `popped` or on
    // the stack.
    let all_nodes: HashSet<u64> = node_addrs.iter().flatten().map(|a| a.as_u64()).collect();
    let mut seen = HashSet::new();
    for &n in popped.lock().unwrap().iter().chain(remaining.iter()) {
        assert!(
            all_nodes.contains(&n),
            "{prim:?}/{policy}: unknown node {n:#x}"
        );
        assert!(seen.insert(n), "{prim:?}/{policy}: node {n:#x} duplicated!");
    }
    assert_eq!(
        seen.len(),
        all_nodes.len(),
        "{prim:?}/{policy}: nodes lost ({} of {})",
        seen.len(),
        all_nodes.len()
    );

    // Replay the cycle-stamped history through the linearizability
    // oracle whenever it fits the checker's cap (the 16×16 stress run
    // records 512 ops and exercises conservation only).
    let hist = hist.lock().unwrap();
    assert_eq!(hist.len(), (nodes as usize) * (per_proc as usize) * 2);
    if hist.len() <= MAX_OPS {
        let name = format!("stack-{prim:?}-{policy}-n{nodes}");
        assert_linearizable(&name, &LifoStackSpec, &hist);
    }
}

#[test]
fn llsc_stack_conserves_nodes_inv() {
    run_stress(StackPrim::Llsc, SyncPolicy::Inv, 8, 12);
}

#[test]
fn llsc_stack_conserves_nodes_unc() {
    run_stress(StackPrim::Llsc, SyncPolicy::Unc, 8, 12);
}

#[test]
fn counted_cas_stack_conserves_nodes_inv() {
    run_stress(StackPrim::CasCounted, SyncPolicy::Inv, 8, 12);
}

#[test]
fn counted_cas_stack_conserves_nodes_unc() {
    run_stress(StackPrim::CasCounted, SyncPolicy::Unc, 8, 12);
}

#[test]
fn counted_cas_stack_conserves_nodes_upd() {
    run_stress(StackPrim::CasCounted, SyncPolicy::Upd, 8, 12);
}

#[test]
fn bigger_llsc_stack_stress() {
    run_stress(StackPrim::Llsc, SyncPolicy::Inv, 16, 16);
}
