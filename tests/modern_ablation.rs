//! Regression tests for the modern-architecture ablation (`figures
//! modern` — see RESULTS.md): the whole artifact must be byte-identical
//! across experiment-runner worker counts (`--jobs`) and PDES machine
//! sharding (`DSM_WORKERS`), and the directed false-sharing workload
//! must diverge under cache-coherent atomics while converging under
//! home-node atomics.

use atomic_dsm::experiments::{modern, runner, Scale};
use std::sync::{Mutex, MutexGuard};

/// The runner cache and the process environment are process-wide; the
/// tests here mutate both, so they must not interleave.
static EXCLUSIVE: Mutex<()> = Mutex::new(());

fn exclusive() -> MutexGuard<'static, ()> {
    EXCLUSIVE
        .lock()
        .unwrap_or_else(std::sync::PoisonError::into_inner)
}

fn tiny() -> Scale {
    Scale {
        procs: 8,
        rounds: 8,
        tc_size: 8,
        wires: 16,
        tasks: 16,
    }
}

/// The complete rendered artifact plus its CSV form, regenerated from
/// scratch (cache cleared) at the given runner worker count.
fn artifact(jobs: usize) -> (String, String) {
    runner::with_workers(jobs, || {
        runner::clear_cache();
        let report = modern::run(&tiny());
        let csv: Vec<String> = modern::csv_rows(&report)
            .into_iter()
            .map(|r| r.join(","))
            .collect();
        (modern::render(&report), csv.join("\n"))
    })
}

/// The acceptance criterion verbatim: `figures modern` emits its
/// tables deterministically — byte-identical across `--jobs 1` and
/// `--jobs 8`.
#[test]
fn modern_artifact_is_bitwise_identical_across_jobs() {
    let _guard = exclusive();
    let serial = artifact(1);
    let parallel = artifact(8);
    assert_eq!(
        serial, parallel,
        "runner worker count changed the modern artifact"
    );
}

/// The same bytes again when every simulated machine is sharded across
/// PDES worker threads via `DSM_WORKERS`.
#[test]
fn modern_artifact_is_bitwise_identical_across_dsm_workers() {
    let _guard = exclusive();
    std::env::remove_var("DSM_WORKERS");
    let serial = artifact(2);
    std::env::set_var("DSM_WORKERS", "4");
    let sharded = artifact(2);
    std::env::remove_var("DSM_WORKERS");
    assert_eq!(
        serial, sharded,
        "DSM_WORKERS sharding changed the modern artifact"
    );
}

/// The directed false-sharing regression: two privately-owned counters
/// packed into one cache line vs split across lines. Cache-coherent
/// atomics must pay a clear ping-pong penalty for packing; home-node
/// atomics (which never migrate the line) must not care.
#[test]
fn false_sharing_penalty_exists_under_cc_and_vanishes_under_home_atomics() {
    let rows = modern::false_sharing(8, 32);
    let get = |label: &str| {
        rows.iter()
            .find(|r| r.implementation == label)
            .unwrap_or_else(|| panic!("missing row {label}"))
    };
    let cc = get("INV FAP");
    let unc = get("UNC FAP");
    let hna = get("INV FAP @home");
    assert!(
        cc.same_line > cc.split_line * 1.8,
        "CC: packed ({:.1}) must clearly exceed split ({:.1})",
        cc.same_line,
        cc.split_line
    );
    for (name, row) in [("UNC", unc), ("home-atomic", hna)] {
        let ratio = row.same_line / row.split_line;
        assert!(
            (0.95..1.05).contains(&ratio),
            "{name}: packed ({:.1}) and split ({:.1}) must converge, ratio {ratio:.2}",
            row.same_line,
            row.split_line
        );
    }
    // And the modern point of the exercise: once the counters are
    // packed, home-node atomics beat the cache-coherent implementation
    // that the 1995 analysis recommends for low contention.
    assert!(
        hna.same_line < cc.same_line,
        "packed: home atomics ({:.1}) must beat CC ({:.1})",
        hna.same_line,
        cc.same_line
    );
}
