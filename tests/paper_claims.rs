//! Integration tests encoding the paper's §4.3 findings as executable
//! assertions, at a reduced (16-processor) scale with the same shape.
//!
//! Each test quotes the claim it checks. Claims that are sensitive to
//! the exact latency constants (which the paper does not publish) are
//! recorded in EXPERIMENTS.md instead of being asserted here.

use atomic_dsm::experiments::counters::measure_bar;
use atomic_dsm::experiments::{BarSpec, CounterKind, Scale};
use atomic_dsm::protocol::CasVariant;
use atomic_dsm::{Primitive, SyncPolicy};

fn scale() -> Scale {
    Scale {
        procs: 16,
        rounds: 24,
        tc_size: 0,
        wires: 0,
        tasks: 0,
    }
}

fn cost(kind: CounterKind, bar: BarSpec, c: u32, a: f64) -> f64 {
    measure_bar(kind, &bar, c, a, &scale()).avg_cycles
}

/// "In the case of no contention with short write runs, UNC
/// implementations of the three primitives are competitive with, and
/// sometimes better than, the corresponding cached implementations,
/// even with an average write-run length as large as 2."
#[test]
fn unc_competitive_at_short_write_runs() {
    for prim in Primitive::ALL {
        let unc = cost(
            CounterKind::LockFree,
            BarSpec::new(SyncPolicy::Unc, prim),
            1,
            1.0,
        );
        let inv = cost(
            CounterKind::LockFree,
            BarSpec::new(SyncPolicy::Inv, prim),
            1,
            1.0,
        );
        assert!(
            unc <= inv * 1.1,
            "{prim}: UNC ({unc:.0}) should be competitive with INV ({inv:.0}) at a=1"
        );
    }
}

/// "On the other hand, as write-run length increases, INV increasingly
/// outperforms UNC and UPD, because subsequent accesses in a run are
/// all hits."
#[test]
fn inv_wins_at_long_write_runs() {
    for prim in Primitive::ALL {
        let inv1 = cost(
            CounterKind::LockFree,
            BarSpec::new(SyncPolicy::Inv, prim),
            1,
            1.0,
        );
        let inv10 = cost(
            CounterKind::LockFree,
            BarSpec::new(SyncPolicy::Inv, prim),
            1,
            10.0,
        );
        let unc10 = cost(
            CounterKind::LockFree,
            BarSpec::new(SyncPolicy::Unc, prim),
            1,
            10.0,
        );
        let upd10 = cost(
            CounterKind::LockFree,
            BarSpec::new(SyncPolicy::Upd, prim),
            1,
            10.0,
        );
        assert!(
            inv10 < inv1,
            "{prim}: INV must get cheaper as runs lengthen"
        );
        assert!(
            inv10 < unc10,
            "{prim}: INV ({inv10:.0}) must beat UNC ({unc10:.0}) at a=10"
        );
        assert!(
            inv10 <= upd10,
            "{prim}: INV ({inv10:.0}) must beat UPD ({upd10:.0}) at a=10"
        );
    }
}

/// "UNC fetch_and_add yields superior performance over the other
/// primitives and implementations, especially with contention."
#[test]
fn unc_fetch_and_add_dominates_contended_counters() {
    let champion = cost(
        CounterKind::LockFree,
        BarSpec::new(SyncPolicy::Unc, Primitive::FetchPhi),
        16,
        1.0,
    );
    for prim in [Primitive::Llsc, Primitive::Cas] {
        for policy in SyncPolicy::ALL {
            let other = cost(CounterKind::LockFree, BarSpec::new(policy, prim), 16, 1.0);
            assert!(
                champion < other,
                "UNC FAP ({champion:.0}) must beat {policy} {} ({other:.0}) at c=16",
                prim.label()
            );
        }
    }
}

/// "Among the INV universal primitives, compare_and_swap almost always
/// benefits from load_exclusive … load_exclusive helps minimize the
/// failure rate of compare_and_swap as contention increases."
#[test]
fn load_exclusive_helps_inv_cas_under_contention() {
    let plain = BarSpec::new(SyncPolicy::Inv, Primitive::Cas);
    let lx = BarSpec {
        load_exclusive: true,
        ..plain
    };
    let plain_c = cost(CounterKind::LockFree, plain, 16, 1.0);
    let lx_c = cost(CounterKind::LockFree, lx, 16, 1.0);
    assert!(
        lx_c < plain_c * 1.05,
        "CAS+lx ({lx_c:.0}) should not lose to plain CAS ({plain_c:.0}) at c=16"
    );
}

/// "The performance of the INVd and INVs implementations of
/// compare_and_swap is almost always equal to or worse than that of
/// compare_and_swap or compare_and_swap/load_exclusive."
#[test]
fn invd_invs_do_not_beat_cas_with_load_exclusive() {
    let lx = BarSpec {
        load_exclusive: true,
        ..BarSpec::new(SyncPolicy::Inv, Primitive::Cas)
    };
    let lx_c = cost(CounterKind::LockFree, lx, 16, 1.0);
    for variant in [CasVariant::Deny, CasVariant::Share] {
        let v = BarSpec {
            cas_variant: variant,
            ..BarSpec::new(SyncPolicy::Inv, Primitive::Cas)
        };
        let v_c = cost(CounterKind::LockFree, v, 16, 1.0);
        assert!(
            lx_c <= v_c * 1.05,
            "{variant:?} ({v_c:.0}) should not beat CAS+lx ({lx_c:.0}); extra comparators \
             in memory are not warranted"
        );
    }
}

/// "As for UPD universal primitives, compare_and_swap is always better
/// than load_linked/store_conditional, as … load_linked requests have
/// to go to memory even if the datum is cached locally."
#[test]
fn upd_cas_beats_upd_llsc() {
    for (c, a) in [(1u32, 2.0), (1, 3.0), (4, 1.0), (8, 1.0)] {
        let cas = cost(
            CounterKind::LockFree,
            BarSpec::new(SyncPolicy::Upd, Primitive::Cas),
            c,
            a,
        );
        let llsc = cost(
            CounterKind::LockFree,
            BarSpec::new(SyncPolicy::Upd, Primitive::Llsc),
            c,
            a,
        );
        assert!(
            cas <= llsc,
            "c={c} a={a}: UPD CAS ({cas:.0}) must not lose to UPD LL/SC ({llsc:.0})"
        );
    }
}

/// "With an INV policy and an average write-run length of one with no
/// contention, drop_copy improves the performance of fetch_and_Φ and
/// compare_and_swap/load_exclusive."
#[test]
fn drop_copy_helps_inv_at_write_run_one() {
    for base in [
        BarSpec::new(SyncPolicy::Inv, Primitive::FetchPhi),
        BarSpec {
            load_exclusive: true,
            ..BarSpec::new(SyncPolicy::Inv, Primitive::Cas)
        },
    ] {
        let without = cost(CounterKind::LockFree, base, 1, 1.0);
        let with = cost(
            CounterKind::LockFree,
            BarSpec {
                drop_copy: true,
                ..base
            },
            1,
            1.0,
        );
        assert!(
            with < without,
            "{}: drop_copy must help at c=1 a=1 ({without:.0} -> {with:.0})",
            base.label()
        );
    }
}

/// …and the flip side: with long write runs drop_copy throws away
/// exactly the locality INV benefits from.
#[test]
fn drop_copy_hurts_inv_at_long_write_runs() {
    let base = BarSpec::new(SyncPolicy::Inv, Primitive::FetchPhi);
    let without = cost(CounterKind::LockFree, base, 1, 10.0);
    let with = cost(
        CounterKind::LockFree,
        BarSpec {
            drop_copy: true,
            ..base
        },
        1,
        10.0,
    );
    assert!(
        with > without,
        "drop_copy must hurt at a=10 ({without:.0} -> {with:.0})"
    );
}

/// "With an UPD policy, drop_copy always improves performance, because
/// it reduces the number of useless updates and in most cases reduces
/// the number of serialized messages for a write from 3 to 2."
#[test]
fn drop_copy_helps_upd_without_contention() {
    for prim in [Primitive::Cas, Primitive::Llsc] {
        for a in [1.0, 2.0, 3.0] {
            let base = BarSpec::new(SyncPolicy::Upd, prim);
            let without = cost(CounterKind::LockFree, base, 1, a);
            let with = cost(
                CounterKind::LockFree,
                BarSpec {
                    drop_copy: true,
                    ..base
                },
                1,
                a,
            );
            assert!(
                with <= without,
                "{} a={a}: drop_copy must help UPD ({without:.0} -> {with:.0})",
                prim.label()
            );
        }
    }
}

/// The overall recommendation of §5: CAS in the cache controllers with
/// write-invalidate plus load_exclusive gives good performance both
/// without contention (long runs benefit from caching) and with it.
#[test]
fn recommended_configuration_is_never_terrible() {
    let rec = BarSpec {
        load_exclusive: true,
        ..BarSpec::new(SyncPolicy::Inv, Primitive::Cas)
    };
    for (c, a) in [(1u32, 1.0), (1, 10.0), (4, 1.0), (16, 1.0)] {
        let rec_c = cost(CounterKind::LockFree, rec, c, a);
        // Compare against every other universal-primitive bar.
        for bar in [
            BarSpec::new(SyncPolicy::Unc, Primitive::Cas),
            BarSpec::new(SyncPolicy::Unc, Primitive::Llsc),
            BarSpec::new(SyncPolicy::Upd, Primitive::Cas),
            BarSpec::new(SyncPolicy::Upd, Primitive::Llsc),
            BarSpec::new(SyncPolicy::Inv, Primitive::Llsc),
        ] {
            let other = cost(CounterKind::LockFree, bar, c, a);
            assert!(
                rec_c <= other * 1.6,
                "c={c} a={a}: recommended INV CAS+lx ({rec_c:.0}) should be within 60% of \
                 {} ({other:.0})",
                bar.label()
            );
        }
    }
}
