//! Serial-vs-PDES identity: the parallel engine must be bit-identical
//! to the serial one, for every workload class, at every worker count.
//!
//! The fingerprint is maximally strict: simulated cycle count, total
//! events dispatched, and the machine's full [`state_digest`] (event
//! queue, ports, caches, directories, processor state, RNG streams,
//! merged statistics) — if a single event were dispatched in a
//! different order or a single float summed differently, these runs
//! would diverge.
//!
//! Serial-only instrumentation (paranoid checking, fault injection,
//! tracing) forces the serial engine regardless of the requested
//! worker count; the tests assert that asking for workers under those
//! configurations is honored (identical results), mirroring the
//! serial-vs-parallel-jobs identity check in `runner_determinism.rs`.

use atomic_dsm::machine::{with_fault_config, Machine};
use atomic_dsm::protocol::{SyncConfig, SyncPolicy};
use atomic_dsm::sim::{Cycle, FaultConfig, MachineConfig};
use atomic_dsm::sync::{LinkPrim, PrimChoice, Primitive};
use atomic_dsm::trace::TraceSpec;
use atomic_dsm::workloads::{
    build_lockfree, build_synthetic, build_tclosure, CounterKind, LfConfig, LfStructure,
    SyntheticConfig, TcConfig,
};

const LIMIT: Cycle = Cycle::new(500_000_000);

/// Everything a run can observably produce, all in one tuple.
fn fingerprint(mut m: Machine, workers: usize) -> (u64, u64, u64, u64, u64) {
    m.set_workers(workers);
    let report = m.run(LIMIT).expect("workload completes");
    let stats = m.stats();
    (
        report.cycles.as_u64(),
        report.events,
        m.state_digest(),
        stats.msgs.total_messages(),
        stats.ops,
    )
}

fn counter_machine(nodes: u32) -> Machine {
    let cfg = SyntheticConfig {
        kind: CounterKind::LockFree,
        choice: PrimChoice::plain(Primitive::FetchPhi),
        sync: SyncConfig {
            policy: SyncPolicy::Inv,
            ..Default::default()
        },
        contention: nodes,
        write_run: 1.0,
        rounds: 6,
    };
    build_synthetic(MachineConfig::with_nodes(nodes), &cfg).0
}

fn app_machine(nodes: u32) -> Machine {
    let cfg = TcConfig {
        size: 12,
        choice: PrimChoice::plain(Primitive::FetchPhi),
        sync: SyncConfig {
            policy: SyncPolicy::Inv,
            ..Default::default()
        },
        density: 0.3,
        seed: 7,
    };
    build_tclosure(MachineConfig::with_nodes(nodes), &cfg).0
}

fn lockfree_machine(nodes: u32) -> Machine {
    let cfg = LfConfig {
        structure: LfStructure::Queue,
        prim: LinkPrim::EmulLlsc,
        sync: SyncConfig {
            policy: SyncPolicy::Inv,
            ..Default::default()
        },
        ops_per_proc: 4,
        key_space: 8,
        buckets: 3,
    };
    build_lockfree(MachineConfig::with_nodes(nodes), &cfg).0
}

/// Asserts that `build` yields identical observable results at every
/// worker count (1 = the serial engine, the reference).
fn assert_identical(build: &dyn Fn() -> Machine, label: &str) {
    let serial = fingerprint(build(), 1);
    for workers in [2usize, 3, 8] {
        let par = fingerprint(build(), workers);
        assert_eq!(
            serial, par,
            "{label}: {workers}-worker run diverged from serial"
        );
    }
}

#[test]
fn counter_identical_across_worker_counts() {
    assert_identical(&|| counter_machine(8), "synthetic counter");
}

#[test]
fn app_tclosure_identical_across_worker_counts() {
    assert_identical(&|| app_machine(16), "app-tclosure");
}

#[test]
fn lockfree_identical_across_worker_counts() {
    assert_identical(&|| lockfree_machine(4), "lockfree queue");
}

#[test]
fn identity_holds_at_64_nodes() {
    // Paper scale: one shard per mesh row at 8 workers.
    assert_identical(&|| counter_machine(64), "synthetic counter @64");
}

#[test]
fn identity_holds_at_xl_scale() {
    // The smaller of the beyond-paper `scaling-xl` sizes (256
    // processors, a 16x16 mesh): the machines the PDES engine exists
    // for must satisfy the same bit-identity as the paper-scale ones.
    // Few rounds keep the test inside CI budgets.
    let build = || {
        let cfg = SyntheticConfig {
            kind: CounterKind::LockFree,
            choice: PrimChoice::plain(Primitive::FetchPhi),
            sync: SyncConfig {
                policy: SyncPolicy::Inv,
                ..Default::default()
            },
            contention: 256,
            write_run: 1.0,
            rounds: 2,
        };
        build_synthetic(MachineConfig::with_nodes(256), &cfg).0
    };
    let serial = fingerprint(build(), 1);
    for workers in [4usize, 8] {
        let par = fingerprint(build(), workers);
        assert_eq!(
            serial, par,
            "xl counter @256: {workers}-worker run diverged from serial"
        );
    }
}

#[test]
fn paranoid_runs_honor_worker_requests() {
    // DSM_PARANOID forces the serial engine; requesting workers must
    // change nothing.
    let reference = fingerprint(app_machine(8), 1);
    for workers in [2usize, 8] {
        let faults = FaultConfig {
            paranoid: true,
            ..Default::default()
        };
        let fp = with_fault_config(faults, || fingerprint(app_machine(8), workers));
        assert_eq!(
            reference, fp,
            "paranoid run with {workers} workers diverged"
        );
    }
}

#[test]
fn fault_injected_runs_honor_worker_requests() {
    // DSM_FAULTS=light forces the serial engine. Fault-injected results
    // legitimately differ from fault-free ones, so compare the injected
    // runs against each other across worker counts.
    let light = FaultConfig::from_spec("light").unwrap();
    let reference = with_fault_config(light.clone(), || fingerprint(counter_machine(8), 1));
    for workers in [2usize, 8] {
        let fp = with_fault_config(light.clone(), || fingerprint(counter_machine(8), workers));
        assert_eq!(
            reference, fp,
            "fault-injected run with {workers} workers diverged"
        );
    }
}

#[test]
fn traced_runs_honor_worker_requests() {
    // Tracing forces the serial engine; a traced 8-worker run must be
    // byte-identical to a traced serial run, and tracing itself must
    // not move a cycle relative to the untraced serial run.
    let untraced = fingerprint(app_machine(8), 1);
    let traced = |workers: usize| {
        let mut m = app_machine(8);
        let spec = TraceSpec::from_spec("ring:4096:target/pdes-identity-trace").unwrap();
        m.attach_tracer(&spec);
        fingerprint(m, workers)
    };
    assert_eq!(untraced, traced(1), "tracing moved a cycle");
    assert_eq!(untraced, traced(8), "traced 8-worker run diverged");
}

#[test]
fn pdes_runs_are_deterministic_across_repeats() {
    // Same worker count, repeated: thread scheduling must not leak into
    // results.
    let a = fingerprint(app_machine(16), 4);
    let b = fingerprint(app_machine(16), 4);
    assert_eq!(a, b, "4-worker run is not reproducible");
}
