//! Corruption-tolerance guarantees of the persistent result cache,
//! exercised end to end through the runner: a torn, bit-flipped or
//! truncated on-disk entry is quarantined and the job re-simulated to a
//! byte-identical result — corruption costs time, never correctness and
//! never a panic. Entries appear atomically, hits skip simulation, and
//! a populated store survives process "restarts" (simulated here by
//! clearing the in-memory memo).

use atomic_dsm::experiments::runner::{self, Job, JobResult};
use atomic_dsm::experiments::{diskcache, BarSpec, CounterKind};
use atomic_dsm::protocol::SyncPolicy;
use atomic_dsm::sync::Primitive;
use atomic_dsm::MachineConfig;
use std::path::{Path, PathBuf};
use std::sync::{Mutex, MutexGuard};

/// The in-memory memo and the stats counters are process-wide; tests
/// that clear the cache or assert on deltas must serialize.
static EXCLUSIVE: Mutex<()> = Mutex::new(());

fn exclusive() -> MutexGuard<'static, ()> {
    EXCLUSIVE
        .lock()
        .unwrap_or_else(std::sync::PoisonError::into_inner)
}

fn tiny_job(rounds: u64) -> Job {
    Job::counter(
        MachineConfig::with_nodes(4),
        CounterKind::LockFree,
        BarSpec::new(SyncPolicy::Inv, Primitive::Cas),
        4,
        1.0,
        rounds,
    )
}

fn scratch(name: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("dsm-diskcache-it-{}-{name}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

fn render(r: &JobResult) -> String {
    format!("{r:?}")
}

/// The store's entry files (`<fingerprint>.job`) in `dir`.
fn entries(dir: &Path) -> Vec<PathBuf> {
    let mut v: Vec<PathBuf> = std::fs::read_dir(dir)
        .unwrap()
        .map(|e| e.unwrap().path())
        .filter(|p| p.extension().is_some_and(|x| x == "job"))
        .collect();
    v.sort();
    v
}

/// Runs `job` as a "fresh process": in-memory memo cleared first, so
/// the only cache that can answer is the disk store.
fn run_fresh(dir: &Path, job: &Job) -> JobResult {
    diskcache::with_cache_dir(Some(dir), || {
        runner::clear_cache();
        runner::try_run_one(job)
    })
}

/// Populate → corrupt the entry in three different ways → every time
/// the corrupt entry is quarantined, the job re-simulates, and the
/// result is byte-identical to the original.
#[test]
fn corrupt_entries_are_quarantined_and_resimulated_identically() {
    let _guard = exclusive();
    let dir = scratch("corrupt");
    let job = tiny_job(4);
    let golden = render(&run_fresh(&dir, &job));
    let files = entries(&dir);
    assert_eq!(files.len(), 1, "one job, one entry: {files:?}");
    let entry = files[0].clone();
    let pristine = std::fs::read(&entry).unwrap();

    type Mangle = fn(&[u8]) -> Vec<u8>;
    let corruptions: [(&str, Mangle); 3] = [
        ("truncated", |b| b[..b.len() / 2].to_vec()),
        ("bit-flipped", |b| {
            let mut v = b.to_vec();
            let mid = v.len() / 2;
            v[mid] ^= 0x01;
            v
        }),
        ("version-skewed", |b| {
            // Byte 8 is the format version (after the 8-byte magic).
            let mut v = b.to_vec();
            v[8] = v[8].wrapping_add(1);
            v
        }),
    ];
    for (name, mangle) in corruptions {
        std::fs::write(&entry, mangle(&pristine)).unwrap();
        let before = runner::stats();
        let again = render(&run_fresh(&dir, &job));
        let after = runner::stats();
        assert_eq!(again, golden, "{name}: re-simulated result diverged");
        assert_eq!(
            after.disk_quarantined,
            before.disk_quarantined + 1,
            "{name}: entry was not quarantined"
        );
        assert_eq!(
            after.completed,
            before.completed + 1,
            "{name}: job was not re-simulated"
        );
        let q = dir.join("quarantined");
        assert!(
            std::fs::read_dir(&q)
                .map(|d| d.count() > 0)
                .unwrap_or(false),
            "{name}: quarantine directory is empty"
        );
        // The re-simulation rewrote a healthy entry for the next round.
        assert_eq!(entries(&dir).len(), 1, "{name}: entry not rewritten");
        let _ = std::fs::remove_dir_all(&q);
    }
    let _ = std::fs::remove_dir_all(&dir);
}

/// A healthy entry written by one "process" serves a later one without
/// re-simulating, and the served bytes equal the original result.
#[test]
fn populated_store_survives_a_restart() {
    let _guard = exclusive();
    let dir = scratch("restart");
    let job = tiny_job(6);
    let golden = render(&run_fresh(&dir, &job));
    let before = runner::stats();
    let again = render(&run_fresh(&dir, &job));
    let after = runner::stats();
    assert_eq!(again, golden);
    assert_eq!(after.disk_hits, before.disk_hits + 1, "expected a disk hit");
    assert_eq!(after.completed, before.completed, "job was re-simulated");
    let _ = std::fs::remove_dir_all(&dir);
}

/// With the store disabled (no directory), nothing is written anywhere.
#[test]
fn disabled_store_writes_nothing() {
    let _guard = exclusive();
    let dir = scratch("disabled");
    let job = tiny_job(8);
    let before = runner::stats();
    diskcache::with_cache_dir(None, || {
        runner::clear_cache();
        let _ = runner::try_run_one(&job);
    });
    let after = runner::stats();
    assert_eq!(after.disk_stores, before.disk_stores);
    assert!(entries(&dir).is_empty());
    let _ = std::fs::remove_dir_all(&dir);
}
