//! Machine-level checks of the defining behaviours of each coherence
//! policy — the mechanisms behind the paper's §4.3 explanations.

use atomic_dsm::machine::{Action, MachineBuilder, ProcCtx};
use atomic_dsm::protocol::{MemOp, PhiOp, SyncConfig, SyncPolicy};
use atomic_dsm::sim::{Addr, Cycle, MachineConfig};
use std::sync::{Arc, Mutex};

const X: Addr = Addr::new(0x40);
const LIMIT: Cycle = Cycle::new(10_000_000);

/// UPD's selling point: "a high read hit rate, even in the case of
/// alternating accesses by different processors". P0 reads, P1 writes,
/// P0 reads again — under UPD the second read is a local hit with the
/// *new* value; under INV it is a miss.
#[test]
fn upd_keeps_read_copies_fresh_and_local() {
    for (policy, expect_hit) in [(SyncPolicy::Upd, true), (SyncPolicy::Inv, false)] {
        let second_read_chain: Arc<Mutex<Option<u32>>> = Arc::new(Mutex::new(None));
        let value_seen: Arc<Mutex<Option<u64>>> = Arc::new(Mutex::new(None));
        let mut b = MachineBuilder::new(MachineConfig::with_nodes(2));
        b.register_sync(
            X,
            SyncConfig {
                policy,
                ..Default::default()
            },
        );

        let chain_out = Arc::clone(&second_read_chain);
        let value_out = Arc::clone(&value_seen);
        let mut stage = 0;
        b.add_program(move |ctx: &mut ProcCtx<'_>| {
            stage += 1;
            match stage {
                1 => Action::Op(MemOp::Load { addr: X }), // allocate a copy
                2 => Action::Barrier(0),                  // P1 writes 7
                3 => Action::Barrier(1),
                4 => Action::Op(MemOp::Load { addr: X }),
                5 => {
                    *chain_out.lock().unwrap() = ctx.last_chain;
                    *value_out.lock().unwrap() = ctx.last.and_then(|r| r.value());
                    Action::Done
                }
                _ => unreachable!(),
            }
        });
        let mut stage = 0;
        b.add_program(move |_: &mut ProcCtx<'_>| {
            stage += 1;
            match stage {
                1 => Action::Barrier(0),
                2 => Action::Op(MemOp::Store { addr: X, value: 7 }),
                3 => Action::Barrier(1),
                4 => Action::Done,
                _ => unreachable!(),
            }
        });
        let mut m = b.build();
        m.run(LIMIT).unwrap();
        assert_eq!(
            *value_seen.lock().unwrap(),
            Some(7),
            "{policy}: reader must see the new value"
        );
        let chain = second_read_chain.lock().unwrap().expect("read completed");
        if expect_hit {
            assert_eq!(
                chain, 0,
                "UPD second read must hit locally (update was pushed)"
            );
        } else {
            assert!(
                chain >= 2,
                "INV second read must miss (copy was invalidated)"
            );
        }
    }
}

/// Loads to a remote-dirty line route through the home: 4 serialized
/// messages (the read analogue of Table 1's remote-exclusive store).
#[test]
fn read_of_remote_dirty_line_takes_four_messages() {
    let chain: Arc<Mutex<Option<u32>>> = Arc::new(Mutex::new(None));
    let mut b = MachineBuilder::new(MachineConfig::with_nodes(4));
    b.register_sync(
        X,
        SyncConfig {
            policy: SyncPolicy::Inv,
            ..Default::default()
        },
    );

    // P0 dirties the line.
    let mut stage = 0;
    b.add_program(move |_: &mut ProcCtx<'_>| {
        stage += 1;
        match stage {
            1 => Action::Op(MemOp::Store { addr: X, value: 3 }),
            2 => Action::Barrier(0),
            3 => Action::Done,
            _ => unreachable!(),
        }
    });
    // P1 reads it.
    let chain_out = Arc::clone(&chain);
    let mut stage = 0;
    b.add_program(move |ctx: &mut ProcCtx<'_>| {
        stage += 1;
        match stage {
            1 => Action::Barrier(0),
            2 => Action::Op(MemOp::Load { addr: X }),
            3 => {
                assert_eq!(ctx.last.and_then(|r| r.value()), Some(3));
                *chain_out.lock().unwrap() = ctx.last_chain;
                Action::Done
            }
            _ => unreachable!(),
        }
    });
    for _ in 2..4 {
        let mut stage = 0;
        b.add_program(move |_: &mut ProcCtx<'_>| {
            stage += 1;
            match stage {
                1 => Action::Barrier(0),
                2 => Action::Done,
                _ => unreachable!(),
            }
        });
    }
    let mut m = b.build();
    m.run(LIMIT).unwrap();
    assert_eq!(
        chain.lock().unwrap().expect("read completed"),
        4,
        "requester -> home -> owner -> home -> requester"
    );
}

/// UNC lines must never occupy cache space: after thousands of UNC
/// accesses the local-op count stays zero.
#[test]
fn unc_never_hits() {
    let mut b = MachineBuilder::new(MachineConfig::with_nodes(2));
    b.register_sync(
        X,
        SyncConfig {
            policy: SyncPolicy::Unc,
            ..Default::default()
        },
    );
    let mut left = 500;
    b.add_program(move |_: &mut ProcCtx<'_>| {
        left -= 1;
        if left == 0 {
            Action::Done
        } else {
            Action::Op(MemOp::FetchPhi {
                addr: X,
                op: PhiOp::Add(1),
            })
        }
    });
    b.add_program(|_: &mut ProcCtx<'_>| Action::Done);
    let mut m = b.build();
    m.run(LIMIT).unwrap();
    assert_eq!(m.stats().local_ops, 0, "UNC ops can never be cache hits");
    assert_eq!(
        m.stats().msgs.chains().mean(),
        2.0,
        "every UNC op is exactly 2 messages"
    );
}

/// Exclusive ownership migrates: when two processors alternate writes
/// to one line, each write is a 4-message ownership transfer through
/// the home.
#[test]
fn ownership_ping_pong_is_symmetric() {
    let chains: Arc<Mutex<Vec<u32>>> = Arc::new(Mutex::new(Vec::new()));
    let mut b = MachineBuilder::new(MachineConfig::with_nodes(2));
    b.register_sync(
        X,
        SyncConfig {
            policy: SyncPolicy::Inv,
            ..Default::default()
        },
    );
    for p in 0..2u32 {
        let chains = Arc::clone(&chains);
        let mut round = 0u32;
        // Phases per round: 0 = maybe-write, 1 = barrier, then repeat.
        let mut phase = 0u8;
        b.add_program(move |ctx: &mut ProcCtx<'_>| loop {
            if round == 6 {
                return Action::Done;
            }
            match phase {
                0 => {
                    phase = 1;
                    let my_turn = round.is_multiple_of(2) == (p == 0);
                    if my_turn {
                        return Action::Op(MemOp::FetchPhi {
                            addr: X,
                            op: PhiOp::Add(1),
                        });
                    }
                }
                1 => {
                    if let Some(c) = ctx.last_chain.take() {
                        chains.lock().unwrap().push(c);
                    }
                    phase = 2;
                    return Action::Barrier(round % 2);
                }
                _ => {
                    phase = 0;
                    round += 1;
                }
            }
        });
    }
    let mut m = b.build();
    m.run(LIMIT).unwrap();
    assert_eq!(m.read_word(X), 6);
    let chains = chains.lock().unwrap();
    // The very first write finds the line uncached (chain 2); every
    // subsequent write must reclaim it from the other owner (chain 4).
    assert_eq!(chains.len(), 6);
    assert_eq!(chains[0], 2);
    assert!(
        chains[1..].iter().all(|&c| c == 4),
        "alternating writers must produce 4-message ownership transfers: {chains:?}"
    );
}

/// UPD update-fanout atomicity: while a writer's update is still in
/// flight to a sharer, the *writer's own* completion waits for the
/// sharer's acknowledgment, so two alternating UPD writers can never
/// observe each other's writes out of order.
#[test]
fn upd_writer_waits_for_update_acks() {
    let chains: Arc<Mutex<Vec<u32>>> = Arc::new(Mutex::new(Vec::new()));
    let mut b = MachineBuilder::new(MachineConfig::with_nodes(3));
    b.register_sync(
        X,
        SyncConfig {
            policy: SyncPolicy::Upd,
            ..Default::default()
        },
    );
    // P2 becomes a sharer first, so every write must fan out an update.
    let mut stage = 0;
    b.add_program(move |_: &mut ProcCtx<'_>| {
        stage += 1;
        match stage {
            1 => Action::Op(MemOp::Load { addr: X }),
            2 => Action::Barrier(0),
            3 => Action::Done,
            _ => unreachable!(),
        }
    });
    let chains_out = Arc::clone(&chains);
    let mut stage = 0;
    b.add_program(move |ctx: &mut ProcCtx<'_>| {
        stage += 1;
        match stage {
            1 => Action::Barrier(0),
            2 => Action::Op(MemOp::Store { addr: X, value: 1 }),
            3 => {
                chains_out.lock().unwrap().push(ctx.last_chain.unwrap());
                Action::Done
            }
            _ => unreachable!(),
        }
    });
    let mut stage = 0;
    b.add_program(move |_: &mut ProcCtx<'_>| {
        stage += 1;
        match stage {
            1 => Action::Barrier(0),
            2 => Action::Done,
            _ => unreachable!(),
        }
    });
    let mut m = b.build();
    m.run(LIMIT).unwrap();
    // Table 1: UPD store to cached data = 3 serialized messages
    // (request -> update -> ack); the writer waited for the ack.
    assert_eq!(*chains.lock().unwrap(), vec![3]);
    m.validate_coherence().unwrap();
}
