//! Regression tests for the parallel experiment runner's headline
//! guarantees: results are bitwise identical at any worker count, the
//! cache returns exactly what a fresh simulation returns, job keys
//! hash stably, and a panicking job fails the run instead of
//! deadlocking the pool.

use atomic_dsm::experiments::runner::{self, Job};
use atomic_dsm::experiments::{
    apps, basic_bars, counters, scaling, table1, BarSpec, CounterKind, Scale,
};
use dsm_protocol::SyncPolicy;
use dsm_sim::{FaultConfig, MachineConfig};
use dsm_sync::Primitive;
use std::sync::{Mutex, MutexGuard};

/// The cache and progress counters are process-wide, so tests that
/// clear the cache or assert on stat deltas must not interleave when
/// the harness runs tests on parallel threads.
static EXCLUSIVE: Mutex<()> = Mutex::new(());

fn exclusive() -> MutexGuard<'static, ()> {
    EXCLUSIVE
        .lock()
        .unwrap_or_else(std::sync::PoisonError::into_inner)
}

fn tiny() -> Scale {
    Scale {
        procs: 8,
        rounds: 8,
        tc_size: 8,
        wires: 16,
        tasks: 16,
    }
}

/// The tentpole guarantee: an entire figure sweep renders to the exact
/// same bytes whether the runner uses 1 worker or 8. Per-job seeds come
/// from the job key, never from scheduling, so parallelism cannot leak
/// into results.
#[test]
fn figure_sweep_is_bitwise_identical_across_worker_counts() {
    let _guard = exclusive();
    let bars = basic_bars();
    let scale = tiny();
    let serial = runner::with_workers(1, || {
        runner::clear_cache();
        let graphs = counters::run_figure(CounterKind::LockFree, &bars, &scale);
        counters::render(CounterKind::LockFree, &graphs)
    });
    let parallel = runner::with_workers(8, || {
        runner::clear_cache();
        let graphs = counters::run_figure(CounterKind::LockFree, &bars, &scale);
        counters::render(CounterKind::LockFree, &graphs)
    });
    assert_eq!(serial, parallel, "worker count changed figure output");
}

/// Same guarantee for the table and the scaling sweep renderers.
#[test]
fn table_and_scaling_are_identical_across_worker_counts() {
    let _guard = exclusive();
    let run = |workers: usize| {
        runner::with_workers(workers, || {
            runner::clear_cache();
            let table: Vec<_> = table1::run();
            let lines = scaling::run_scaling(CounterKind::LockFree, 4);
            (format!("{table:?}"), scaling::render(&lines))
        })
    };
    assert_eq!(run(1), run(8), "worker count changed table/scaling output");
}

/// Cached results are bitwise what a fresh simulation produces: run a
/// point, clear the cache, run it again, and compare every field.
#[test]
fn cached_point_equals_freshly_simulated_point() {
    let _guard = exclusive();
    let job = Job::counter(
        MachineConfig::with_nodes(4),
        CounterKind::TtsLock,
        BarSpec::new(SyncPolicy::Inv, Primitive::Llsc),
        4,
        2.0,
        4,
    );
    let first = runner::run_one(&job).into_counter();
    let hits = runner::stats().cache_hits;
    let cached = runner::run_one(&job).into_counter();
    assert!(
        runner::stats().cache_hits > hits,
        "second request missed the cache"
    );
    runner::clear_cache();
    let fresh = runner::run_one(&job).into_counter();
    for (a, b) in [(&first, &cached), (&first, &fresh)] {
        assert_eq!(a.avg_cycles.to_bits(), b.avg_cycles.to_bits());
        assert_eq!(a.updates, b.updates);
        assert_eq!(a.cycles, b.cycles);
        assert_eq!(a.bar, b.bar);
    }
}

/// Application runs are deterministic through the runner too.
#[test]
fn app_run_is_reproducible() {
    let _guard = exclusive();
    let bar = BarSpec::new(SyncPolicy::Inv, Primitive::FetchPhi);
    let a = runner::with_workers(2, || {
        runner::clear_cache();
        apps::run_app(apps::App::TransitiveClosure, &bar, &tiny())
    });
    runner::clear_cache();
    let b = apps::run_app(apps::App::TransitiveClosure, &bar, &tiny());
    assert_eq!(a.cycles, b.cycles);
    assert_eq!(a.write_run.to_bits(), b.write_run.to_bits());
}

/// Job keys: equal inputs hash equal (and hit the cache); different
/// inputs produce different keys and different derived seeds.
#[test]
fn job_keys_and_seeds_distinguish_inputs() {
    let _guard = exclusive();
    let base = |wr: f64, c: u32| {
        Job::counter(
            MachineConfig::with_nodes(8),
            CounterKind::LockFree,
            BarSpec::new(SyncPolicy::Unc, Primitive::FetchPhi),
            c,
            wr,
            8,
        )
    };
    assert_eq!(base(1.5, 2), base(1.5, 2));
    assert_eq!(base(1.5, 2).seed(), base(1.5, 2).seed());
    assert_ne!(base(1.5, 2), base(2.0, 2));
    assert_ne!(base(1.5, 2).seed(), base(2.0, 2).seed());
    assert_ne!(base(1.5, 2).seed(), base(1.5, 4).seed());
    // Different job families never collide on the key.
    assert_ne!(base(1.0, 2).seed(), Job::table1(0).seed());

    // Equal keys share one cache entry.
    runner::clear_cache();
    let before = runner::stats();
    runner::run_all(&[base(1.5, 2), base(1.5, 2), base(1.5, 2)]);
    let after = runner::stats();
    assert_eq!(
        after.completed - before.completed,
        1,
        "duplicate jobs re-simulated"
    );
    assert_eq!(
        after.cache_hits - before.cache_hits,
        0,
        "in-batch duplicates are deduped, not hits"
    );
    runner::run_one(&base(1.5, 2));
    assert_eq!(runner::stats().cache_hits - after.cache_hits, 1);
}

/// Fault-injected sweeps keep the headline guarantee: the same
/// `FaultConfig` and seed produce byte-identical results whether the
/// batch runs on 1 worker or 8. The injector draws from its own forked
/// RNG stream keyed off the job seed, so host scheduling cannot reach
/// the fault schedule.
#[test]
fn fault_injected_sweep_is_identical_across_worker_counts() {
    let _guard = exclusive();
    let mut mcfg = MachineConfig::with_nodes(8);
    mcfg.faults = FaultConfig {
        paranoid: true,
        watchdog: 50_000_000,
        ..FaultConfig::light()
    };
    let jobs: Vec<Job> = [1u32, 4, 8]
        .into_iter()
        .flat_map(|c| {
            basic_bars()
                .into_iter()
                .map(move |b| (c, b))
                .collect::<Vec<_>>()
        })
        .map(|(c, b)| Job::counter(mcfg.clone(), CounterKind::LockFree, b, c, 1.0, 4))
        .collect();
    let run = |workers: usize| {
        runner::with_workers(workers, || {
            runner::clear_cache();
            format!("{:?}", runner::try_run_all(&jobs))
        })
    };
    let serial = run(1);
    let parallel = run(8);
    assert_eq!(serial, parallel, "worker count changed faulted results");
    // The faulted sweep must also differ from the fault-free one in its
    // cache identity: faults are part of the job key, never a global.
    let mut plain = jobs[0].clone();
    if let Job::Counter { mcfg, .. } = &mut plain {
        mcfg.faults = FaultConfig::default();
    }
    assert_ne!(jobs[0], plain, "fault config must distinguish job keys");
    assert_eq!(
        jobs[0].seed(),
        plain.seed(),
        "faults must not move the seed"
    );
}

/// A panicking job must fail the whole run (propagating the panic) and
/// must not deadlock or hang the worker pool.
#[test]
fn panicking_job_fails_the_run_without_deadlock() {
    let items: Vec<u32> = (0..64).collect();
    let result = std::panic::catch_unwind(|| {
        runner::fan_out(&items, 4, |&i| {
            assert!(i != 17, "injected failure");
            i * 2
        })
    });
    assert!(result.is_err(), "worker panic must propagate to the caller");

    // The pool is still usable after a failed run.
    let ok = runner::fan_out(&items, 4, |&i| i + 1);
    assert_eq!(ok.len(), items.len());
}
