//! End-to-end reader-writer-lock runs: writers must be mutually
//! exclusive with everyone; readers must run concurrently and never
//! observe a torn write.

use atomic_dsm::machine::{Action, MachineBuilder, ProcCtx};
use atomic_dsm::protocol::MemOp;
use atomic_dsm::sim::{Cycle, MachineConfig};
use atomic_dsm::sync::rwlock::{ReadAcquire, ReadRelease, WriteAcquire, WriteRelease};
use atomic_dsm::sync::{Primitive, ShmAlloc, Step, SubMachine};
use atomic_dsm::{SyncConfig, SyncPolicy};
use std::sync::{Arc, Mutex};

const LIMIT: Cycle = Cycle::new(5_000_000_000);

/// Writers store (k, k) into two separate shared words under the write
/// lock; readers take the read lock and load both words — they must
/// always be equal. The two words live on different cache lines so
/// coherence alone cannot provide the atomicity; the lock must.
fn run(prim: Primitive, policy: SyncPolicy, writers: u32, readers: u32, iters: u64) {
    let nodes = writers + readers;
    let mut alloc = ShmAlloc::new(32, nodes);
    let lock = alloc.word();
    let d1 = alloc.word();
    let d2 = alloc.word();

    let torn: Arc<Mutex<Vec<(u64, u64)>>> = Arc::new(Mutex::new(Vec::new()));
    let reads_done = Arc::new(Mutex::new(0u64));
    let mut b = MachineBuilder::new(MachineConfig::with_nodes(nodes));
    b.register_sync(
        lock,
        SyncConfig {
            policy,
            ..Default::default()
        },
    );

    enum Frag {
        RA(ReadAcquire),
        RR(ReadRelease),
        WA(WriteAcquire),
        WR(WriteRelease),
        None,
    }

    for p in 0..nodes {
        let is_writer = p < writers;
        let torn = Arc::clone(&torn);
        let reads_done = Arc::clone(&reads_done);
        let mut left = iters;
        let mut frag = Frag::None;
        let mut stage = 0u8;
        let mut v1 = 0u64;
        b.add_program(move |ctx: &mut ProcCtx<'_>| loop {
            // Drive the active lock fragment.
            let step = match &mut frag {
                Frag::RA(m) => Some(m.step(ctx.last.take(), ctx.rng)),
                Frag::RR(m) => Some(m.step(ctx.last.take(), ctx.rng)),
                Frag::WA(m) => Some(m.step(ctx.last.take(), ctx.rng)),
                Frag::WR(m) => Some(m.step(ctx.last.take(), ctx.rng)),
                Frag::None => None,
            };
            match step {
                Some(Step::Op(op)) => return Action::Op(op),
                Some(Step::Compute(c)) => return Action::Compute(c),
                Some(Step::Done) => frag = Frag::None,
                None => {}
            }
            if left == 0 {
                return Action::Done;
            }
            stage += 1;
            if is_writer {
                match stage {
                    1 => frag = Frag::WA(WriteAcquire::new(lock, prim)),
                    2 => {
                        return Action::Op(MemOp::Store {
                            addr: d1,
                            value: left,
                        })
                    }
                    3 => {
                        return Action::Op(MemOp::Store {
                            addr: d2,
                            value: left,
                        })
                    }
                    4 => frag = Frag::WR(WriteRelease::new(lock)),
                    5 => {
                        stage = 0;
                        left -= 1;
                    }
                    _ => unreachable!(),
                }
            } else {
                match stage {
                    1 => frag = Frag::RA(ReadAcquire::new(lock, prim)),
                    2 => return Action::Op(MemOp::Load { addr: d1 }),
                    3 => {
                        v1 = ctx.last.take().expect("d1 read").value().expect("value");
                        return Action::Op(MemOp::Load { addr: d2 });
                    }
                    4 => {
                        let v2 = ctx.last.take().expect("d2 read").value().expect("value");
                        if v1 != v2 {
                            torn.lock().unwrap().push((v1, v2));
                        }
                        *reads_done.lock().unwrap() += 1;
                        frag = Frag::RR(ReadRelease::new(lock, prim));
                    }
                    5 => {
                        stage = 0;
                        left -= 1;
                    }
                    _ => unreachable!(),
                }
            }
        });
    }

    let mut m = b.build();
    m.run(LIMIT).expect("rwlock run completes");
    m.validate_coherence().unwrap();
    assert!(
        torn.lock().unwrap().is_empty(),
        "{prim}/{policy}: torn reads observed: {:?}",
        torn.lock().unwrap()
    );
    assert_eq!(*reads_done.lock().unwrap(), readers as u64 * iters);
    assert_eq!(m.read_word(lock), 0, "lock fully released");
}

#[test]
fn cas_rwlock_inv() {
    run(Primitive::Cas, SyncPolicy::Inv, 3, 5, 12);
}

#[test]
fn cas_rwlock_unc() {
    run(Primitive::Cas, SyncPolicy::Unc, 3, 5, 12);
}

#[test]
fn llsc_rwlock_inv() {
    run(Primitive::Llsc, SyncPolicy::Inv, 3, 5, 12);
}

#[test]
fn llsc_rwlock_upd() {
    run(Primitive::Llsc, SyncPolicy::Upd, 2, 4, 8);
}

#[test]
fn reader_heavy_mix() {
    run(Primitive::Cas, SyncPolicy::Inv, 1, 15, 10);
}

#[test]
fn writer_heavy_mix() {
    run(Primitive::Llsc, SyncPolicy::Inv, 7, 1, 10);
}
