//! Job-supervision guarantees, end to end through the runner: host
//! wall-clock timeouts are typed transient, retried on a bounded
//! budget, and never cached anywhere; deterministic fault-implicated
//! failures are auto-shrunk to a minimal reproducer plus a plain-text
//! dump, both referenced from the failing job's error message; and a
//! saved reproducer replays the failure in a fresh context.

use atomic_dsm::experiments::runner::{self, Job};
use atomic_dsm::experiments::{diskcache, repro, BarSpec, CounterKind};
use atomic_dsm::protocol::SyncPolicy;
use atomic_dsm::sim::FaultConfig;
use atomic_dsm::sync::Primitive;
use atomic_dsm::MachineConfig;
use std::path::PathBuf;
use std::sync::{Mutex, MutexGuard};

/// These tests mutate process-global state (the runner's memo and
/// counters; one test sets `DSM_WALL_LIMIT`), so they serialize.
static EXCLUSIVE: Mutex<()> = Mutex::new(());

fn exclusive() -> MutexGuard<'static, ()> {
    EXCLUSIVE
        .lock()
        .unwrap_or_else(std::sync::PoisonError::into_inner)
}

/// Restores a mutated environment variable on drop (also on panic).
struct EnvGuard(&'static str, Option<std::ffi::OsString>);

impl EnvGuard {
    fn set(key: &'static str, value: &str) -> Self {
        let prev = std::env::var_os(key);
        std::env::set_var(key, value);
        EnvGuard(key, prev)
    }
}

impl Drop for EnvGuard {
    fn drop(&mut self) {
        match self.1.take() {
            Some(v) => std::env::set_var(self.0, v),
            None => std::env::remove_var(self.0),
        }
    }
}

fn scratch(name: &str) -> PathBuf {
    let dir =
        std::env::temp_dir().join(format!("dsm-supervision-it-{}-{name}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

fn counter_job(procs: u32, rounds: u64, faults: FaultConfig) -> Job {
    let mut mcfg = MachineConfig::with_nodes(procs);
    mcfg.faults = faults;
    Job::counter(
        mcfg,
        CounterKind::LockFree,
        BarSpec::new(SyncPolicy::Inv, Primitive::Cas),
        procs,
        1.0,
        rounds,
    )
}

/// A fault configuration whose jitter provably trips the livelock
/// watchdog: the watchdog-only baseline passes, but a handful of
/// injected message delays (up to 4000 cycles against a 1500-cycle
/// window) stall retirement past the window. Deterministic — same
/// seed, same stream, same livelock.
fn doomed_faults() -> FaultConfig {
    FaultConfig {
        jitter_per_10k: 500,
        jitter_max: 4000,
        watchdog: 1500,
        period: 64,
        ..FaultConfig::default()
    }
}

/// A wall-clock budget of 1ms fails any non-trivial simulation as a
/// *transient*, typed timeout: retried on the configured budget, never
/// cached in memory, never persisted to disk.
#[test]
fn wall_clock_timeout_is_transient_retried_and_never_cached() {
    let _guard = exclusive();
    let dir = scratch("timeout");
    std::fs::create_dir_all(&dir).unwrap();
    // Large enough that the wall check (every 8192 events) fires.
    let job = counter_job(16, 64, FaultConfig::default());
    let (err, retries_used, stored) = {
        let _env = EnvGuard::set("DSM_WALL_LIMIT", "1");
        diskcache::with_cache_dir(Some(&dir), || {
            runner::with_retries(2, || {
                runner::clear_cache();
                let before = runner::stats().retries;
                let err = runner::try_run_one(&job).expect_err("1ms budget must time out");
                let stored = std::fs::read_dir(&dir).unwrap().count();
                (err, runner::stats().retries - before, stored)
            })
        })
    };
    assert!(err.transient, "timeout must be typed transient: {err}");
    assert!(err.message.contains("wall-clock budget exhausted"), "{err}");
    assert_eq!(
        retries_used, 2,
        "transient failure must use the retry budget"
    );
    assert_eq!(stored, 0, "a transient failure must never be persisted");
    // Not poisoned in the in-memory memo either: with the budget gone,
    // the very same job succeeds.
    let ok = runner::try_run_one(&job);
    assert!(ok.is_ok(), "transient failure was cached: {ok:?}");
    let _ = std::fs::remove_dir_all(&dir);
}

/// The headline supervision pipeline: a seeded fault-implicated
/// livelock fails deterministically, the runner auto-emits a dump and a
/// ddmin-shrunk reproducer (minimal: exactly one of the applied faults
/// survives), the error message references both artifacts, and the
/// saved reproducer replays the failure from disk in one step.
#[test]
fn fault_implicated_failure_is_shrunk_to_a_minimal_reproducer() {
    let _guard = exclusive();
    // Baseline: the watchdog alone does not fire on this job.
    let baseline = counter_job(
        4,
        4,
        FaultConfig {
            watchdog: 1500,
            ..FaultConfig::default()
        },
    );
    runner::clear_cache();
    assert!(
        runner::try_run_one(&baseline).is_ok(),
        "watchdog-only baseline must pass"
    );

    let dir = scratch("shrink");
    let job = counter_job(4, 4, doomed_faults());
    let err = repro::with_repro_dir(Some(&dir), || {
        runner::clear_cache();
        runner::try_run_one(&job).expect_err("jittered job must livelock")
    });
    assert!(!err.transient, "a livelock is deterministic, not transient");
    assert!(err.message.contains("livelock"), "{err}");
    assert!(err.message.contains("blocked on"), "{err}");
    assert!(
        err.message.contains("[reproducer: ") && err.message.contains("dump: "),
        "error must reference the emitted artifacts: {err}"
    );

    let stem = format!("{:016x}", job.seed());
    let dump = std::fs::read_to_string(dir.join(format!("{stem}.dump.txt")))
        .expect("failure dump emitted");
    assert!(dump.contains("livelock"), "{dump}");
    assert!(dump.contains("faults applied:"), "{dump}");

    let rep = repro::load(&dir.join(format!("{stem}.repro"))).expect("reproducer emitted");
    assert_eq!(
        rep.allowed_faults(),
        Some(1),
        "ddmin must isolate the single culprit delay: {rep:?}"
    );
    assert!(rep.message.contains("livelock"), "{rep:?}");

    let replay = repro::replay(&rep).expect("replay runs");
    assert!(
        replay.reproduced,
        "minimal reproducer must reproduce: {}",
        replay.message
    );
    assert!(replay.message.contains("livelock"), "{}", replay.message);
    let _ = std::fs::remove_dir_all(&dir);
}

/// Failures that need no injected faults at all (an impossibly tight
/// watchdog) still emit a replayable reproducer — with no filter — and
/// the livelock diagnostic's blocked-processor dump lands in the error
/// message and the dump file.
#[test]
fn faultless_livelock_still_yields_a_replayable_reproducer() {
    let _guard = exclusive();
    let dir = scratch("faultless");
    let job = counter_job(
        4,
        4,
        FaultConfig {
            watchdog: 1,
            ..FaultConfig::default()
        },
    );
    let err = repro::with_repro_dir(Some(&dir), || {
        runner::clear_cache();
        runner::try_run_one(&job).expect_err("watchdog=1 must livelock")
    });
    assert!(err.message.contains("livelock"), "{err}");
    assert!(err.message.contains("[reproducer: "), "{err}");

    let stem = format!("{:016x}", job.seed());
    let rep = repro::load(&dir.join(format!("{stem}.repro"))).expect("reproducer emitted");
    assert_eq!(rep.filter, None, "no faults to filter: {rep:?}");
    let replay = repro::replay(&rep).expect("replay runs");
    assert!(replay.reproduced, "{}", replay.message);
    let _ = std::fs::remove_dir_all(&dir);
}

/// Emission is off by default: without a reproducer directory the
/// failure message carries no artifact references and nothing is
/// written anywhere.
#[test]
fn no_repro_dir_means_no_artifacts() {
    let _guard = exclusive();
    let job = counter_job(4, 4, doomed_faults());
    let err = repro::with_repro_dir(None, || {
        runner::clear_cache();
        runner::try_run_one(&job).expect_err("jittered job must livelock")
    });
    assert!(
        !err.message.contains("[reproducer"),
        "artifacts emitted without a directory: {err}"
    );
}
