//! Pins the `dsm-sync` crate-root export surface around the
//! Michael–Scott queue / MCS lock naming hazard.
//!
//! The crate exports two unrelated families whose names are one
//! letter apart: the MCS *lock* (`McsLock`, `McsQnode`, `McsAcquire`,
//! `McsRelease`, after Mellor-Crummey & Scott) and the Michael–Scott
//! *queue* (`MsQueue`, `MsEnqueue`, `MsDequeue`). A careless re-export
//! (`pub use lockfree::queue::*` next to `pub use mcs::*`, or renaming
//! the queue types to `Mcs*`) would shadow or collide silently. These
//! tests import every name from the crate root in one scope — a
//! collision is a compile error — and pin each root name to its
//! defining module so a future re-export shuffle cannot quietly swap
//! one family for the other.

use atomic_dsm::sync;
use std::any::TypeId;

/// Every root export of both families, imported into one scope.
/// Shadowing or collision between `Mcs*` and `Ms*` fails to compile.
#[allow(unused_imports)]
use atomic_dsm::sync::{
    BucketMap, HarrisList, LinkPrim, ListContains, ListInsert, ListRemove, MapContains, MapInsert,
    MapRemove, McsAcquire, McsLock, McsQnode, McsRelease, MsDequeue, MsEnqueue, MsQueue,
};

/// The root `Ms*` names are the lock-free queue types, not MCS lock
/// types under a shortened name.
#[test]
fn root_ms_names_are_the_queue_module_types() {
    assert_eq!(
        TypeId::of::<sync::MsQueue>(),
        TypeId::of::<sync::lockfree::queue::MsQueue>()
    );
    assert_eq!(
        TypeId::of::<sync::MsEnqueue>(),
        TypeId::of::<sync::lockfree::queue::MsEnqueue>()
    );
    assert_eq!(
        TypeId::of::<sync::MsDequeue>(),
        TypeId::of::<sync::lockfree::queue::MsDequeue>()
    );
}

/// The root `Mcs*` names are the lock types from `sync::mcs`.
#[test]
fn root_mcs_names_are_the_lock_module_types() {
    assert_eq!(
        TypeId::of::<sync::McsLock>(),
        TypeId::of::<sync::mcs::McsLock>()
    );
    assert_eq!(
        TypeId::of::<sync::McsAcquire>(),
        TypeId::of::<sync::mcs::McsAcquire>()
    );
    assert_eq!(
        TypeId::of::<sync::McsRelease>(),
        TypeId::of::<sync::mcs::McsRelease>()
    );
}

/// The two families are distinct types — nothing aliases across them.
#[test]
fn queue_and_lock_families_never_alias() {
    assert_ne!(TypeId::of::<sync::MsQueue>(), TypeId::of::<sync::McsLock>());
    assert_ne!(
        TypeId::of::<sync::MsEnqueue>(),
        TypeId::of::<sync::McsAcquire>()
    );
    assert_ne!(
        TypeId::of::<sync::MsDequeue>(),
        TypeId::of::<sync::McsRelease>()
    );
}

/// The set/map types and the link-primitive enum are re-exported at
/// the root and alias their defining modules.
#[test]
fn lockfree_set_exports_alias_their_modules() {
    assert_eq!(
        TypeId::of::<sync::HarrisList>(),
        TypeId::of::<sync::lockfree::list::HarrisList>()
    );
    assert_eq!(
        TypeId::of::<sync::BucketMap>(),
        TypeId::of::<sync::lockfree::map::BucketMap>()
    );
    assert_eq!(
        TypeId::of::<sync::LinkPrim>(),
        TypeId::of::<sync::lockfree::LinkPrim>()
    );
}
