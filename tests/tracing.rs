//! End-to-end tests for the observability layer: a traced machine run
//! must produce a valid, deterministic Perfetto trace with balanced
//! request→reply flows, the ring sink must round-trip, and a machine
//! built without tracing must carry no tracer at all.

use atomic_dsm::experiments::{BarSpec, CounterKind};
use atomic_dsm::machine::{Action, Machine, MachineBuilder, ProcCtx};
use atomic_dsm::protocol::{MemOp, PhiOp, SyncConfig, SyncPolicy};
use atomic_dsm::sim::{Addr, Cycle, MachineConfig};
use atomic_dsm::trace::{perfetto, Category, TraceSpec};
use atomic_dsm::workloads::{build_synthetic, SyntheticConfig};
use atomic_dsm::Primitive;
use std::path::PathBuf;

const LIMIT: Cycle = Cycle::new(10_000_000);

/// A fresh per-test scratch directory under the target dir, so trace
/// files never land in the repo checkout.
fn scratch(name: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("dsm-tracing-{}-{name}", std::process::id()));
    std::fs::create_dir_all(&dir).expect("create scratch dir");
    dir
}

/// Four processors fetch_and_add an uncached counter 100 times each —
/// the crate-docs quickstart, small but exercising every message class.
fn quickstart_machine(spec: Option<TraceSpec>) -> Machine {
    let counter = Addr::new(0x40);
    let mut b = MachineBuilder::new(MachineConfig::with_nodes(4));
    b.register_sync(
        counter,
        SyncConfig {
            policy: SyncPolicy::Unc,
            ..Default::default()
        },
    );
    for _ in 0..4 {
        let mut left = 100u32;
        b.add_program(move |ctx: &mut ProcCtx<'_>| {
            if ctx.last.is_some() {
                left -= 1;
            }
            if left == 0 {
                Action::Done
            } else {
                Action::Op(MemOp::FetchPhi {
                    addr: counter,
                    op: PhiOp::Add(1),
                })
            }
        });
    }
    if let Some(spec) = spec {
        b.with_trace(spec);
    }
    b.build()
}

/// A contended CAS counter, to exercise retry events.
fn contended_cas_machine(spec: TraceSpec) -> Machine {
    let bar = BarSpec::new(SyncPolicy::Inv, Primitive::Cas);
    let scfg = SyntheticConfig {
        kind: CounterKind::LockFree,
        choice: bar.prim_choice(),
        sync: bar.sync_config(),
        contention: 8,
        write_run: 1.0,
        rounds: 32,
    };
    let (mut machine, _layout) = build_synthetic(MachineConfig::with_nodes(8), &scfg);
    machine.attach_tracer(&spec);
    machine
}

#[test]
fn disabled_by_default() {
    let mut m = quickstart_machine(None);
    m.run(LIMIT).expect("run");
    assert!(m.tracer().is_none(), "no tracer unless requested");
    assert!(m.trace_files().is_empty(), "no files written");
}

#[test]
fn perfetto_trace_validates_and_flows_balance() {
    let dir = scratch("validate");
    let spec = TraceSpec {
        out: Some(dir.clone()),
        ring: Some(4096),
        ..TraceSpec::default()
    };
    let mut m = quickstart_machine(Some(spec));
    m.run(LIMIT).expect("run");
    assert_eq!(m.read_word(Addr::new(0x40)), 400, "workload unperturbed");

    let json = m.tracer().unwrap().perfetto_json().unwrap();
    let summary = perfetto::validate(&json).expect("trace validates");
    assert_eq!(summary.pids, 4, "one track per node");
    assert!(summary.slices > 0, "message + op slices present");
    assert!(summary.flow_starts > 0, "request flows recorded");
    assert_eq!(
        summary.flow_starts, summary.flow_finishes,
        "every network request flow terminates at its service slice"
    );

    // run() already flushed; files are content-addressed into `dir`.
    let files = m.trace_files().to_vec();
    assert_eq!(files.len(), 2, "one perfetto file, one ring file");
    for f in &files {
        let meta = std::fs::metadata(f).expect("trace file exists");
        assert!(meta.len() > 0, "{} is non-empty", f.display());
    }
    let json_file = files
        .iter()
        .find(|f| f.extension().is_some_and(|e| e == "json"))
        .expect("perfetto output present");
    let on_disk = std::fs::read_to_string(json_file).expect("read trace");
    perfetto::validate(&on_disk).expect("on-disk trace validates");
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn identical_runs_are_byte_identical() {
    let spec = || TraceSpec {
        out: Some(scratch("determinism")),
        ..TraceSpec::default()
    };
    let render = || {
        let mut m = quickstart_machine(Some(spec()));
        m.run(LIMIT).expect("run");
        (
            m.tracer().unwrap().perfetto_json().unwrap(),
            m.trace_files().to_vec(),
        )
    };
    let (a, files_a) = render();
    let (b, files_b) = render();
    assert_eq!(a, b, "trace bytes are deterministic");
    assert_eq!(files_a, files_b, "content-addressed names are stable");
    std::fs::remove_dir_all(scratch("determinism")).ok();
}

#[test]
fn ring_sink_round_trips() {
    let dir = scratch("ring");
    let spec = TraceSpec {
        perfetto: false,
        ring: Some(1024),
        ring_out: Some(dir.clone()),
        ..TraceSpec::default()
    };
    let mut m = quickstart_machine(Some(spec));
    m.run(LIMIT).expect("run");

    let ring = m.tracer().unwrap().ring().expect("ring sink attached");
    let records = ring.records();
    assert!(!records.is_empty(), "ring captured events");
    // Records are emission-ordered; Op records are stamped with their
    // issue time, so only same-kind streams are cycle-monotone. Message
    // sends are recorded at send time and must be oldest-first.
    let sends: Vec<_> = records
        .iter()
        .filter(|r| r.kind == atomic_dsm::trace::RecordKind::MsgSend as u8)
        .collect();
    assert!(!sends.is_empty(), "ring captured message sends");
    assert!(
        sends.windows(2).all(|w| w[0].ts <= w[1].ts),
        "message-send records are oldest-first in cycle order"
    );
    assert!(!ring.labels().is_empty(), "label dictionary populated");

    let files = m.trace_files().to_vec();
    assert_eq!(files.len(), 1, "ring file only");
    let bytes = std::fs::read(&files[0]).expect("read ring file");
    assert_eq!(&bytes[..8], b"DSMTRING", "ring file magic");
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn category_filter_drops_unwanted_events() {
    let dir = scratch("cats");
    let spec =
        TraceSpec::from_spec(&format!("perfetto:{},cat:msg", dir.display())).expect("valid spec");
    let mut m = quickstart_machine(Some(spec));
    assert!(m.tracer().unwrap().wants(Category::Msg));
    assert!(!m.tracer().unwrap().wants(Category::Op));
    m.run(LIMIT).expect("run");
    let json = m.tracer().unwrap().perfetto_json().unwrap();
    let summary = perfetto::validate(&json).expect("trace validates");
    assert!(summary.flow_starts > 0, "msg events kept");
    assert!(
        !json.contains("\"FetchPhi\""),
        "op slices filtered out by cat:msg"
    );
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn contended_cas_records_retries() {
    let dir = scratch("retries");
    let spec = TraceSpec {
        out: Some(dir.clone()),
        ..TraceSpec::default()
    };
    let mut m = contended_cas_machine(spec);
    m.run(Cycle::new(100_000_000)).expect("run");
    let json = m.tracer().unwrap().perfetto_json().unwrap();
    perfetto::validate(&json).expect("trace validates");
    assert!(
        json.contains("\"cas-fail\""),
        "contended CAS counter yields cas-fail retry instants"
    );
    let metrics = m.tracer().unwrap().metrics();
    let retries: u64 = metrics.iter().map(|n| n.retries).sum();
    assert!(retries > 0, "per-node retry counters accumulate");
    std::fs::remove_dir_all(&dir).ok();
}
