//! A minimal, dependency-free stand-in for the `criterion` crate.
//!
//! The workspace must build with no network access, so the Criterion
//! benches link against this tiny harness instead of the real crate. It
//! implements the API surface the benches use — [`Criterion`],
//! [`Bencher::iter`], [`criterion_group!`] and [`criterion_main!`] — and
//! reports mean/min/max wall-clock time per iteration to stdout. It does
//! no statistical analysis, warm-up scheduling or HTML reporting.

#![warn(missing_docs)]

use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// The benchmark driver: collects samples and prints a summary line.
#[derive(Debug, Clone)]
pub struct Criterion {
    sample_size: usize,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion { sample_size: 20 }
    }
}

impl Criterion {
    /// Sets the number of samples per benchmark.
    ///
    /// # Panics
    ///
    /// Panics if `n` is zero.
    pub fn sample_size(mut self, n: usize) -> Self {
        assert!(n > 0, "sample_size must be positive");
        self.sample_size = n;
        self
    }

    /// Runs one benchmark function and prints its timing summary.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, id: &str, mut f: F) -> &mut Self {
        let mut b = Bencher {
            samples: Vec::with_capacity(self.sample_size),
        };
        for _ in 0..self.sample_size {
            f(&mut b);
        }
        let times: Vec<Duration> = b.samples;
        let total: Duration = times.iter().sum();
        let mean = total / times.len().max(1) as u32;
        let min = times.iter().min().copied().unwrap_or_default();
        let max = times.iter().max().copied().unwrap_or_default();
        println!(
            "bench {id}: mean {mean:?}  min {min:?}  max {max:?}  ({} samples)",
            times.len()
        );
        self
    }
}

/// Passed to benchmark closures; times one routine.
#[derive(Debug)]
pub struct Bencher {
    samples: Vec<Duration>,
}

impl Bencher {
    /// Times one execution of `routine` and records the sample.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        let start = Instant::now();
        let out = routine();
        self.samples.push(start.elapsed());
        drop(black_box(out));
    }
}

/// Declares a group of benchmark functions, as in the real crate.
#[macro_export]
macro_rules! criterion_group {
    (name = $name:ident; config = $config:expr; targets = $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut c: $crate::Criterion = $config;
            $($target(&mut c);)+
        }
    };
    ($name:ident, $($target:path),+ $(,)?) => {
        $crate::criterion_group!(
            name = $name;
            config = $crate::Criterion::default();
            targets = $($target),+
        );
    };
}

/// Declares the benchmark `main` running the given groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_bench(c: &mut Criterion) {
        c.bench_function("test/add", |b| b.iter(|| black_box(2u64) + black_box(3u64)));
    }

    criterion_group! {
        name = benches;
        config = Criterion::default().sample_size(3);
        targets = sample_bench
    }

    #[test]
    fn group_runs() {
        benches();
    }

    #[test]
    fn bencher_records_each_iteration() {
        let mut c = Criterion::default().sample_size(5);
        let mut count = 0u32;
        c.bench_function("test/count", |b| {
            b.iter(|| count += 1);
        });
        assert_eq!(count, 5);
    }
}
