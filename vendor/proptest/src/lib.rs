//! A minimal, dependency-free stand-in for the `proptest` crate.
//!
//! The workspace must build and test with no network access, so instead
//! of pulling the real `proptest` from a registry we vendor this small
//! reimplementation of the API surface the tests actually use:
//!
//! * the [`proptest!`] macro (with an optional `#![proptest_config(..)]`
//!   header) generating `#[test]` functions that run a body over many
//!   randomly sampled inputs;
//! * the [`strategy::Strategy`] trait with integer-range, tuple,
//!   [`strategy::Just`], `prop_map`, [`prop_oneof!`],
//!   [`collection::vec`] and [`sample::select`] strategies;
//! * [`prop_assert!`] / [`prop_assert_eq!`];
//! * a deterministic [`test_runner::TestRunner`] with
//!   [`strategy::ValueTree`] sampling.
//!
//! Differences from the real crate: sampling is always deterministic
//! (fixed seed, so failures reproduce exactly), there is no shrinking,
//! and the default case count is 32.

#![warn(missing_docs)]

/// Strategy trait, combinators and value trees.
pub mod strategy {
    use crate::test_runner::{TestRng, TestRunner};
    use std::ops::{Range, RangeInclusive};

    /// A sampled value wrapper; the only [`ValueTree`] implementation
    /// (no shrinking).
    #[derive(Debug, Clone)]
    pub struct Sampled<T>(pub T);

    /// A tree of possible values; here just the sampled value itself.
    pub trait ValueTree {
        /// The value type.
        type Value;
        /// Returns the current (sampled) value.
        fn current(&self) -> Self::Value;
    }

    impl<T: Clone> ValueTree for Sampled<T> {
        type Value = T;
        fn current(&self) -> T {
            self.0.clone()
        }
    }

    /// Generates random values of an associated type.
    pub trait Strategy {
        /// The type of value this strategy generates.
        type Value;

        /// Samples one value.
        fn sample(&self, rng: &mut TestRng) -> Self::Value;

        /// Samples one value wrapped in a [`ValueTree`].
        ///
        /// # Errors
        ///
        /// Never fails in this implementation; the `Result` mirrors the
        /// real proptest signature.
        fn new_tree(&self, runner: &mut TestRunner) -> Result<Sampled<Self::Value>, String>
        where
            Self: Sized,
        {
            Ok(Sampled(self.sample(runner.rng())))
        }

        /// Maps generated values through `f`.
        fn prop_map<O, F: Fn(Self::Value) -> O>(self, f: F) -> Map<Self, F>
        where
            Self: Sized,
        {
            Map { inner: self, f }
        }
    }

    impl<S: Strategy + ?Sized> Strategy for Box<S> {
        type Value = S::Value;
        fn sample(&self, rng: &mut TestRng) -> Self::Value {
            (**self).sample(rng)
        }
    }

    impl<S: Strategy + ?Sized> Strategy for &S {
        type Value = S::Value;
        fn sample(&self, rng: &mut TestRng) -> Self::Value {
            (**self).sample(rng)
        }
    }

    /// Always produces a clone of the given value.
    #[derive(Debug, Clone)]
    pub struct Just<T: Clone>(pub T);

    impl<T: Clone> Strategy for Just<T> {
        type Value = T;
        fn sample(&self, _rng: &mut TestRng) -> T {
            self.0.clone()
        }
    }

    /// The strategy returned by [`Strategy::prop_map`].
    #[derive(Debug, Clone)]
    pub struct Map<S, F> {
        inner: S,
        f: F,
    }

    impl<S: Strategy, O, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
        type Value = O;
        fn sample(&self, rng: &mut TestRng) -> O {
            (self.f)(self.inner.sample(rng))
        }
    }

    /// Uniform choice between boxed alternative strategies; built by
    /// [`prop_oneof!`](crate::prop_oneof).
    pub struct Union<V> {
        arms: Vec<Box<dyn Strategy<Value = V>>>,
    }

    impl<V> Union<V> {
        /// Creates a union of the given alternatives.
        ///
        /// # Panics
        ///
        /// Panics if `arms` is empty.
        pub fn new(arms: Vec<Box<dyn Strategy<Value = V>>>) -> Self {
            assert!(!arms.is_empty(), "prop_oneof! needs at least one arm");
            Union { arms }
        }
    }

    impl<V> Strategy for Union<V> {
        type Value = V;
        fn sample(&self, rng: &mut TestRng) -> V {
            let idx = rng.below(self.arms.len() as u64) as usize;
            self.arms[idx].sample(rng)
        }
    }

    /// Boxes a strategy arm for [`Union`] (used by `prop_oneof!`).
    pub fn arm<S: Strategy + 'static>(s: S) -> Box<dyn Strategy<Value = S::Value>> {
        Box::new(s)
    }

    macro_rules! int_range_strategy {
        ($($t:ty),*) => {$(
            impl Strategy for Range<$t> {
                type Value = $t;
                fn sample(&self, rng: &mut TestRng) -> $t {
                    let span = (self.end as i128) - (self.start as i128);
                    assert!(span > 0, "empty range strategy");
                    (self.start as i128 + rng.below(span as u64) as i128) as $t
                }
            }
            impl Strategy for RangeInclusive<$t> {
                type Value = $t;
                fn sample(&self, rng: &mut TestRng) -> $t {
                    let span = (*self.end() as i128) - (*self.start() as i128) + 1;
                    assert!(span > 0, "empty range strategy");
                    (*self.start() as i128 + rng.below(span as u64) as i128) as $t
                }
            }
        )*};
    }
    int_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    macro_rules! tuple_strategy {
        ($(($($s:ident . $idx:tt),+))*) => {$(
            impl<$($s: Strategy),+> Strategy for ($($s,)+) {
                type Value = ($($s::Value,)+);
                fn sample(&self, rng: &mut TestRng) -> Self::Value {
                    ($(self.$idx.sample(rng),)+)
                }
            }
        )*};
    }
    tuple_strategy! {
        (A.0)
        (A.0, B.1)
        (A.0, B.1, C.2)
        (A.0, B.1, C.2, D.3)
        (A.0, B.1, C.2, D.3, E.4)
        (A.0, B.1, C.2, D.3, E.4, F.5)
    }
}

/// Strategies for collections.
pub mod collection {
    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;
    use std::ops::{Range, RangeInclusive};

    /// A half-open range of collection sizes (mirrors proptest's
    /// `SizeRange`, which is what makes `vec(s, 1..200)` infer `usize`).
    #[derive(Debug, Clone, Copy)]
    pub struct SizeRange {
        start: usize,
        end: usize,
    }

    impl From<Range<usize>> for SizeRange {
        fn from(r: Range<usize>) -> Self {
            SizeRange {
                start: r.start,
                end: r.end,
            }
        }
    }

    impl From<RangeInclusive<usize>> for SizeRange {
        fn from(r: RangeInclusive<usize>) -> Self {
            SizeRange {
                start: *r.start(),
                end: r.end() + 1,
            }
        }
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> Self {
            SizeRange {
                start: n,
                end: n + 1,
            }
        }
    }

    /// A strategy producing `Vec`s whose length is drawn from `size`
    /// and whose elements are drawn from `element`.
    pub struct VecStrategy<E> {
        element: E,
        size: SizeRange,
    }

    /// Vectors of values from `element` with lengths from `size`.
    ///
    /// # Panics
    ///
    /// Panics if `size` is an empty range.
    pub fn vec<E: Strategy>(element: E, size: impl Into<SizeRange>) -> VecStrategy<E> {
        let size = size.into();
        assert!(size.start < size.end, "empty size range");
        VecStrategy { element, size }
    }

    impl<E: Strategy> Strategy for VecStrategy<E> {
        type Value = Vec<E::Value>;
        fn sample(&self, rng: &mut TestRng) -> Vec<E::Value> {
            let len =
                self.size.start + rng.below((self.size.end - self.size.start) as u64) as usize;
            (0..len).map(|_| self.element.sample(rng)).collect()
        }
    }
}

/// Strategies that sample from explicit value lists.
pub mod sample {
    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;

    /// Uniformly selects one of the given values.
    #[derive(Debug, Clone)]
    pub struct Select<T: Clone>(Vec<T>);

    /// Uniform choice from a non-empty vector of values.
    ///
    /// # Panics
    ///
    /// Panics if `values` is empty.
    pub fn select<T: Clone>(values: Vec<T>) -> Select<T> {
        assert!(!values.is_empty(), "select() needs at least one value");
        Select(values)
    }

    impl<T: Clone> Strategy for Select<T> {
        type Value = T;
        fn sample(&self, rng: &mut TestRng) -> T {
            self.0[rng.below(self.0.len() as u64) as usize].clone()
        }
    }
}

/// `any::<T>()` support.
pub mod arbitrary {
    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;
    use std::marker::PhantomData;

    /// Types with a canonical "any value" strategy.
    pub trait Arbitrary {
        /// Samples an arbitrary value.
        fn arbitrary(rng: &mut TestRng) -> Self;
    }

    macro_rules! arbitrary_int {
        ($($t:ty),*) => {$(
            impl Arbitrary for $t {
                #[allow(clippy::cast_possible_truncation)]
                fn arbitrary(rng: &mut TestRng) -> $t {
                    rng.next_u64() as $t
                }
            }
        )*};
    }
    arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    impl Arbitrary for bool {
        fn arbitrary(rng: &mut TestRng) -> bool {
            rng.next_u64() & 1 == 1
        }
    }

    /// The strategy returned by [`any`].
    pub struct Any<T>(PhantomData<T>);

    /// A strategy producing arbitrary values of `T`.
    pub fn any<T: Arbitrary>() -> Any<T> {
        Any(PhantomData)
    }

    impl<T: Arbitrary> Strategy for Any<T> {
        type Value = T;
        fn sample(&self, rng: &mut TestRng) -> T {
            T::arbitrary(rng)
        }
    }
}

/// Deterministic test driver.
pub mod test_runner {
    /// SplitMix64: small, fast, deterministic.
    #[derive(Debug, Clone)]
    pub struct TestRng(u64);

    impl TestRng {
        /// Returns the next 64 random bits.
        pub fn next_u64(&mut self) -> u64 {
            self.0 = self.0.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = self.0;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        }

        /// Returns a uniform value in `0..bound`.
        ///
        /// # Panics
        ///
        /// Panics if `bound` is zero.
        pub fn below(&mut self, bound: u64) -> u64 {
            assert!(bound > 0, "below() bound must be positive");
            // Multiply-shift; bias is irrelevant for test-input sampling.
            ((self.next_u64() as u128 * bound as u128) >> 64) as u64
        }
    }

    /// Number of cases (and, in the real crate, much more).
    #[derive(Debug, Clone)]
    pub struct ProptestConfig {
        /// How many random cases each property runs.
        pub cases: u32,
    }

    impl ProptestConfig {
        /// A config running `cases` cases per property.
        pub fn with_cases(cases: u32) -> Self {
            ProptestConfig { cases }
        }
    }

    impl Default for ProptestConfig {
        fn default() -> Self {
            ProptestConfig { cases: 32 }
        }
    }

    /// A test-case failure (produced by `prop_assert!` or returned
    /// explicitly).
    #[derive(Debug)]
    pub enum TestCaseError {
        /// The property does not hold.
        Fail(String),
    }

    impl TestCaseError {
        /// A failure with the given message.
        pub fn fail(msg: impl Into<String>) -> Self {
            TestCaseError::Fail(msg.into())
        }
    }

    impl std::fmt::Display for TestCaseError {
        fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
            match self {
                TestCaseError::Fail(m) => write!(f, "{m}"),
            }
        }
    }

    /// The result type property bodies implicitly return.
    pub type TestCaseResult = Result<(), TestCaseError>;

    /// Drives strategies with a deterministic RNG.
    #[derive(Debug, Clone)]
    pub struct TestRunner {
        rng: TestRng,
    }

    impl TestRunner {
        /// A runner with a fixed, documented seed: every run samples the
        /// same sequence.
        pub fn deterministic() -> Self {
            TestRunner {
                rng: TestRng(0x0DD0_5EED_CAFE_F00D),
            }
        }

        /// The runner's RNG.
        pub fn rng(&mut self) -> &mut TestRng {
            &mut self.rng
        }
    }
}

/// The glob-import surface: `use proptest::prelude::*;`.
pub mod prelude {
    pub use crate::arbitrary::any;
    pub use crate::strategy::{Just, Strategy, ValueTree};
    pub use crate::test_runner::{ProptestConfig, TestCaseError, TestCaseResult, TestRunner};
    pub use crate::{prop_assert, prop_assert_eq, prop_oneof, proptest};

    /// The `prop::` path alias (`prop::sample::select`, ...).
    pub mod prop {
        pub use crate::collection;
        pub use crate::sample;
    }
}

/// Declares property tests: one or more `#[test] fn name(arg in strategy, ..) { body }`
/// items, each run over many sampled inputs.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::proptest!(@cfg ($cfg) $($rest)*);
    };
    (@cfg ($cfg:expr) $($(#[$meta:meta])* fn $name:ident($($arg:pat in $strat:expr),+ $(,)?) $body:block)*) => {
        $(
            $(#[$meta])*
            fn $name() {
                let cfg: $crate::test_runner::ProptestConfig = $cfg;
                let mut runner = $crate::test_runner::TestRunner::deterministic();
                for case in 0..cfg.cases {
                    let result: ::std::result::Result<(), $crate::test_runner::TestCaseError> =
                        (|| {
                            $(let $arg = $crate::strategy::Strategy::sample(&($strat), runner.rng());)+
                            $body
                            #[allow(unreachable_code)]
                            ::std::result::Result::Ok(())
                        })();
                    if let ::std::result::Result::Err(e) = result {
                        panic!("property failed at case {case}: {e}");
                    }
                }
            }
        )*
    };
    ($($rest:tt)*) => {
        $crate::proptest!(@cfg ($crate::test_runner::ProptestConfig::default()) $($rest)*);
    };
}

/// Uniform choice among several strategies producing the same type.
#[macro_export]
macro_rules! prop_oneof {
    ($($arm:expr),+ $(,)?) => {
        $crate::strategy::Union::new(vec![$($crate::strategy::arm($arm)),+])
    };
}

/// Like `assert!` but fails the property (with the sampled inputs
/// reported) instead of panicking directly.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, "assertion failed: {}", stringify!($cond));
    };
    ($cond:expr, $($fmt:tt)*) => {
        if !$cond {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::fail(
                format!($($fmt)*),
            ));
        }
    };
}

/// Like `assert_eq!` but fails the property instead of panicking.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(l == r, "assertion failed: `{:?}` == `{:?}`", l, r);
    }};
    ($left:expr, $right:expr, $($fmt:tt)*) => {{
        let (l, r) = (&$left, &$right);
        if !(l == r) {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::fail(
                format!("assertion failed: `{:?}` == `{:?}`: {}", l, r, format!($($fmt)*)),
            ));
        }
    }};
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    #[test]
    fn ranges_sample_in_bounds() {
        let mut runner = TestRunner::deterministic();
        for _ in 0..200 {
            let v = Strategy::sample(&(3u32..17), runner.rng());
            assert!((3..17).contains(&v));
            let w = Strategy::sample(&(0usize..=4), runner.rng());
            assert!(w <= 4);
            let s = Strategy::sample(&(-5i64..5), runner.rng());
            assert!((-5..5).contains(&s));
        }
    }

    #[test]
    fn sampling_is_deterministic() {
        let sample_all = || {
            let mut runner = TestRunner::deterministic();
            (0..32)
                .map(|_| Strategy::sample(&(0u64..1000), runner.rng()))
                .collect::<Vec<_>>()
        };
        assert_eq!(sample_all(), sample_all());
    }

    proptest! {
        #[test]
        fn macro_generates_working_tests(a in 0u32..10, b in any::<bool>()) {
            prop_assert!(a < 10);
            prop_assert_eq!(b, b);
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(5))]
        #[test]
        fn config_header_is_accepted(v in prop::collection::vec(0usize..3, 1..8)) {
            prop_assert!(!v.is_empty() && v.len() < 8);
        }
    }

    #[test]
    fn oneof_map_and_select() {
        let mut runner = TestRunner::deterministic();
        let s = prop_oneof![Just(1u32), (10u32..20).prop_map(|v| v * 2), Just(5u32)];
        for _ in 0..100 {
            let v = s.sample(runner.rng());
            assert!(v == 1 || v == 5 || (20..40).contains(&v));
        }
        let sel = prop::sample::select(vec!["a", "b"]);
        let tree = sel.new_tree(&mut runner).unwrap();
        let v = tree.current();
        assert!(v == "a" || v == "b");
    }
}
